//! Pluggable transports for the management plane.
//!
//! One protocol ([`qos_wire`]), three carriers:
//!
//! * **Simulator** — [`send_ctrl`]/[`decode_ctrl`] move encoded frames
//!   through `qos_sim` messages, charging the network the *real* encoded
//!   byte length of each control message (see [`WireMode`]).
//! * **In-proc channel** — [`ChannelTransport`] feeds a
//!   [`LiveHostManager`](crate::live::LiveHostManager) thread over a
//!   bounded crossbeam channel, as before, but carrying encoded frames.
//! * **Real sockets** — [`SocketTransport`] speaks the same frames over
//!   TCP or a Unix-domain socket, so the manager and its instrumented
//!   processes can be separate OS processes. It survives peer death with
//!   the PR-1 handshake/backoff idiom: doubling reconnect backoff, and a
//!   stored greeting (the registration frame) replayed after every
//!   reconnect so a restarted manager re-learns the process.
//!
//! The protocol logic behind the socket carrier — *when* to redial,
//! *what* to replay, *when* to flush, *what* to count — lives in the
//! sans-io [`qos_net::ClientConn`] state machine; [`SocketTransport`]
//! is the blocking driver around it. The socket primitives
//! ([`SockAddr`], [`SockStream`], [`SockListener`]), the jittered
//! [`Backoff`] envelope, and the [`FlushPolicy`]/[`ReconnectPolicy`]
//! knobs are re-exported from `qos-net`, where the epoll reactor driver
//! shares them.

use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use qos_net::ClientConn;
use qos_sim::{Ctx, Endpoint, Message, Port};
use qos_wire::messages::{BatchMsg, TelemetryBatchMsg, TelemetrySubscribeMsg};
use qos_wire::{FrameBuffer, WireBytes, WireError, WireMsg};

pub use qos_net::{Backoff, FlushPolicy, ReconnectPolicy, SockAddr, SockListener, SockStream};

use crate::messages::CTRL_MSG_BYTES;

// ---------------------------------------------------------------------
// Simulator backend
// ---------------------------------------------------------------------

/// How control messages are represented and charged inside the simulator.
///
/// `Typed` is the pre-wire-protocol behaviour (struct payloads, nominal
/// [`CTRL_MSG_BYTES`] size); `EncodedFixed` runs the full encode/decode
/// path while keeping the nominal size. The two must produce identical
/// traces — that equivalence is what certifies the codec refactor — and
/// `Measured` then swaps in the real encoded length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Typed struct payloads, nominal `CTRL_MSG_BYTES` network charge
    /// (the legacy path, kept for differential testing).
    Typed,
    /// Encoded frames on the wire, nominal `CTRL_MSG_BYTES` charge
    /// (isolates the codec from the byte-accounting change).
    EncodedFixed,
    /// Encoded frames charged their real encoded length (the default).
    Measured,
}

thread_local! {
    // Thread-local, not global: experiment harnesses run worlds on
    // parallel threads (`parallel_map`), and each world must pick its
    // mode without racing the others. Every scenario builds and runs its
    // world on one thread, so a thread-local is exactly world-scoped.
    static WIRE_MODE: std::cell::Cell<WireMode> = const { std::cell::Cell::new(WireMode::Measured) };
}

/// Set the control-plane wire mode for worlds run on this thread.
pub fn set_wire_mode(mode: WireMode) {
    WIRE_MODE.with(|m| m.set(mode));
}

/// The current thread's control-plane wire mode.
pub fn wire_mode() -> WireMode {
    WIRE_MODE.with(|m| m.get())
}

/// Send a management-plane message through the simulated network,
/// represented and charged according to the thread's [`WireMode`].
pub fn send_ctrl(ctx: &mut Ctx<'_>, dst: Endpoint, src_port: Port, msg: WireMsg) {
    match wire_mode() {
        WireMode::Typed => match msg {
            WireMsg::Violation(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::Register(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::AgentRequest(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::AgentReply(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::DomainAlert(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::StatsQuery(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::StatsReply(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::AdjustRequest(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::Adapt(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            WireMsg::RuleUpdate(m) => ctx.send(dst, src_port, CTRL_MSG_BYTES, m),
            // Live-mode-only kinds have no typed legacy form; carry the
            // frame (they never occur inside simulated worlds).
            other => {
                let b = WireBytes::encode(&other);
                ctx.send(dst, src_port, CTRL_MSG_BYTES, b);
            }
        },
        WireMode::EncodedFixed => {
            let b = WireBytes::encode(&msg);
            ctx.send(dst, src_port, CTRL_MSG_BYTES, b);
        }
        WireMode::Measured => {
            let b = WireBytes::encode(&msg);
            let n = b.len_bytes();
            ctx.send(dst, src_port, n, b);
        }
    }
}

/// Send several management-plane messages coalesced into one
/// [`WireMsg::Batch`] frame — one simulated hop and one manager wake-up
/// instead of N. In `Measured` mode the network is charged the real
/// batch frame length, which is where coalescing pays: N−1 frame
/// headers disappear from the wire. `Typed` mode has no legacy batch
/// form, so it falls back to per-message sends (the two modes still
/// deliver the same messages in the same order, which is what the
/// equivalence suite pins).
pub fn send_ctrl_batch(ctx: &mut Ctx<'_>, dst: Endpoint, src_port: Port, msgs: Vec<WireMsg>) {
    if msgs.is_empty() {
        return;
    }
    match wire_mode() {
        WireMode::Typed => {
            for m in msgs {
                send_ctrl(ctx, dst, src_port, m);
            }
        }
        WireMode::EncodedFixed | WireMode::Measured => {
            send_ctrl(ctx, dst, src_port, WireMsg::Batch(BatchMsg { msgs }));
        }
    }
}

/// Interpret a simulated message as a management-plane message.
///
/// `Ok(Some(..))` — a control message (decoded frame or legacy typed
/// struct). `Ok(None)` — not a control message (application payloads such
/// as video frames pass through untouched). `Err(..)` — the payload was a
/// wire frame but corrupt; the caller should count it, not panic.
pub fn decode_ctrl(msg: &Message) -> Result<Option<WireMsg>, WireError> {
    if let Some(b) = msg.payload.get::<WireBytes>() {
        return b.decode().map(Some);
    }
    macro_rules! typed {
        ($($ty:ident => $variant:ident),* $(,)?) => {
            $(if let Some(m) = msg.payload.get::<crate::messages::$ty>() {
                return Ok(Some(WireMsg::$variant(m.clone())));
            })*
        };
    }
    typed! {
        ViolationMsg => Violation,
        RegisterMsg => Register,
        AgentRequest => AgentRequest,
        AgentReply => AgentReply,
        DomainAlertMsg => DomainAlert,
        StatsQueryMsg => StatsQuery,
        StatsReplyMsg => StatsReply,
        AdjustRequestMsg => AdjustRequest,
        AdaptMsg => Adapt,
        RuleUpdateMsg => RuleUpdate,
    }
    Ok(None)
}

// ---------------------------------------------------------------------
// Live backends: what the manager thread consumes
// ---------------------------------------------------------------------

/// Where a live manager writes reply frames (sync acks) for a peer.
#[derive(Clone)]
pub enum ReplySink {
    /// In-proc peer: a bounded channel.
    Chan(Sender<Vec<u8>>),
    /// Socket peer (thread-per-peer driver): the connection's write
    /// half, shared with the acceptor's bookkeeping.
    Sock(Arc<Mutex<SockStream>>),
    /// Socket peer (epoll reactor driver): frames enter the peer's
    /// bounded, classed outbound queue and a reactor worker writes them
    /// on readiness.
    #[cfg(target_os = "linux")]
    Net(qos_net::PeerSender),
}

/// Outcome of a non-blocking delivery attempt on a [`ReplySink`] —
/// `Full` and `Gone` are different decisions for the sender: retry the
/// same frame later versus forget the peer entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkSend {
    /// Delivered (or handed to the OS send buffer).
    Sent,
    /// The peer's queue has no room right now; keep the frame and retry.
    Full,
    /// The peer is gone for good; drop the sink.
    Gone,
}

impl ReplySink {
    /// Best-effort frame delivery; a dead peer is the peer's problem.
    pub fn send(&self, frame: &[u8]) -> bool {
        match self {
            ReplySink::Chan(tx) => tx.try_send(frame.to_vec()).is_ok(),
            ReplySink::Sock(s) => s.lock().write_all(frame).is_ok(),
            // Control lane: a full queue is a drop here (sync acks are
            // re-requested by the peer's next barrier, never queued
            // indefinitely by the manager).
            #[cfg(target_os = "linux")]
            ReplySink::Net(p) => matches!(p.send_control(frame), qos_net::PeerSend::Sent),
        }
    }

    /// Non-blocking delivery with a typed outcome, for senders that keep
    /// per-peer queues (the manager's telemetry publisher). A blocking
    /// socket write never reports `Full` — the OS buffer absorbs it or
    /// the connection is dead.
    pub fn try_send_frame(&self, frame: &[u8]) -> SinkSend {
        match self {
            ReplySink::Chan(tx) => match tx.try_send(frame.to_vec()) {
                Ok(()) => SinkSend::Sent,
                Err(TrySendError::Full(_)) => SinkSend::Full,
                Err(TrySendError::Disconnected(_)) => SinkSend::Gone,
            },
            ReplySink::Sock(s) => {
                if s.lock().write_all(frame).is_ok() {
                    SinkSend::Sent
                } else {
                    SinkSend::Gone
                }
            }
            // Telemetry lane: the reactor's bounded queue absorbs the
            // batch (evicting oldest under pressure — lossy by the
            // same contract as the manager's subscriber queues).
            #[cfg(target_os = "linux")]
            ReplySink::Net(p) => match p.send_telemetry(frame) {
                qos_net::PeerSend::Sent => SinkSend::Sent,
                qos_net::PeerSend::Full => SinkSend::Full,
                qos_net::PeerSend::Gone => SinkSend::Gone,
            },
        }
    }
}

/// What arrives on a live manager's inbound queue. Reader threads split
/// the byte stream into raw frames; the *decode* happens centrally in the
/// manager thread so malformed frames are counted in one place.
pub enum Inbound {
    /// One complete frame (header validated, payload not yet decoded).
    Frame {
        /// The raw frame bytes.
        bytes: Vec<u8>,
        /// Where acks for this peer go, if the carrier supports replies.
        reply: Option<ReplySink>,
    },
    /// A connection's byte stream was corrupt beyond reframing (bad
    /// header); the connection was dropped.
    StreamCorrupt,
    /// Stop the manager thread. Only the owning handle sends this — a
    /// socket peer cannot shut the manager down.
    Shutdown,
}

/// A client-side carrier for management-plane frames. Implementations
/// must not block the instrumented process on a slow or dead manager:
/// `try_send` drops rather than waits.
pub trait WireTransport: Send {
    /// Best-effort frame delivery. `false` = dropped (queue full, peer
    /// down, connection refused) — the caller counts it and moves on.
    fn try_send(&mut self, frame: &[u8]) -> bool;

    /// Barrier: deliver a `SyncReq` and wait for the matching ack,
    /// bounded by `timeout`. `true` once everything sent before this call
    /// has been processed by the manager.
    fn sync(&mut self, timeout: Duration) -> bool;

    /// Push any buffered frames to the carrier now. Unbuffered carriers
    /// (the default) have nothing to do; a buffering carrier reports
    /// `false` if the buffered bytes had to be dropped.
    fn flush(&mut self) -> bool {
        true
    }

    /// Install the frame to replay after a reconnect (the registration
    /// greeting). Carriers without reconnect ignore it.
    fn set_greeting(&mut self, frame: Vec<u8>) {
        let _ = frame;
    }

    /// Successful reconnects after a lost connection. Carriers without
    /// reconnect report zero.
    fn reconnects(&self) -> u64 {
        0
    }
}

/// In-proc carrier: frames over a bounded crossbeam channel into the
/// manager thread (the original live-mode transport, now frame-typed).
pub struct ChannelTransport {
    tx: Sender<Inbound>,
    next_token: u64,
}

impl ChannelTransport {
    /// Wrap a manager inbound queue.
    pub fn new(tx: Sender<Inbound>) -> Self {
        ChannelTransport { tx, next_token: 1 }
    }
}

impl WireTransport for ChannelTransport {
    fn try_send(&mut self, frame: &[u8]) -> bool {
        self.tx
            .try_send(Inbound::Frame {
                bytes: frame.to_vec(),
                reply: None,
            })
            .is_ok()
    }

    fn sync(&mut self, timeout: Duration) -> bool {
        let token = self.next_token;
        self.next_token += 1;
        let (ack_tx, ack_rx) = bounded(1);
        let req = WireMsg::SyncReq { token }.encode_frame();
        if self
            .tx
            .send(Inbound::Frame {
                bytes: req,
                reply: Some(ReplySink::Chan(ack_tx)),
            })
            .is_err()
        {
            return false;
        }
        match ack_rx.recv_timeout(timeout) {
            Ok(frame) => matches!(
                WireMsg::decode_frame(&frame),
                Ok(WireMsg::SyncAck { token: t }) if t == token
            ),
            Err(_) => false,
        }
    }
}

// ---------------------------------------------------------------------
// Socket backend: the blocking driver over qos-net's ClientConn machine
// ---------------------------------------------------------------------

/// Builds a [`SocketTransport`]: the dial address plus the
/// [`ReconnectPolicy`] and optional [`FlushPolicy`] in one place,
/// replacing the scattered `with_*` setters.
///
/// ```no_run
/// use qos_manager::transport::{ReconnectPolicy, SocketTransport};
/// use qos_manager::SockAddr;
/// let t = SocketTransport::builder(SockAddr::Tcp("127.0.0.1:7401".into()))
///     .reconnect(ReconnectPolicy::seeded(7))
///     .connect();
/// ```
#[derive(Debug, Clone)]
pub struct SocketTransportBuilder {
    addr: SockAddr,
    reconnect: ReconnectPolicy,
    flush: Option<FlushPolicy>,
}

impl SocketTransportBuilder {
    /// Replace the reconnect/backoff configuration (default: 50 ms → 2 s
    /// doubling envelope, jitter seeded per process).
    pub fn reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Buffer writes and flush on the given size/deadline policy instead
    /// of one syscall per frame.
    pub fn flush(mut self, policy: FlushPolicy) -> Self {
        self.flush = Some(policy);
        self
    }

    fn build(self, stream: SockStream) -> SocketTransport {
        let mut conn = ClientConn::connected(&self.reconnect);
        conn.set_flush_policy(self.flush);
        SocketTransport {
            addr: self.addr,
            stream: Some(stream),
            conn,
        }
    }

    /// Connect now; error if the manager is unreachable.
    pub fn connect(self) -> io::Result<SocketTransport> {
        let stream = SockStream::connect(&self.addr)?;
        Ok(self.build(stream))
    }

    /// Connect, retrying with short sleeps until `deadline` elapses —
    /// for processes racing a manager that is still binding its socket.
    pub fn connect_retry(self, deadline: Duration) -> io::Result<SocketTransport> {
        let give_up = Instant::now() + deadline;
        loop {
            match SockStream::connect(&self.addr) {
                Ok(stream) => return Ok(self.build(stream)),
                Err(e) if Instant::now() >= give_up => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Socket carrier: the manager is another OS process. Failed sends drop
/// the connection and arm a doubling-backoff reconnect; the greeting
/// frame (registration) is replayed after every successful reconnect so
/// a restarted manager re-learns this process — the same
/// handshake/backoff shape the robustness PR gave in-sim registration.
///
/// With a [`FlushPolicy`] installed the transport buffers frames and
/// writes them in one syscall when the size or deadline trigger fires —
/// the socket-side twin of [`BatchBuilder`](qos_wire::BatchBuilder)
/// coalescing. Frames are only reported dropped at flush time (the
/// buffer itself never refuses a frame).
///
/// All of those decisions live in the sans-io [`ClientConn`] machine;
/// this type is the blocking driver: it owns the socket, performs the
/// writes the machine asks for, and reports outcomes back.
pub struct SocketTransport {
    addr: SockAddr,
    stream: Option<SockStream>,
    conn: ClientConn,
}

impl SocketTransport {
    /// Start building a transport for `addr` (reconnect and flush
    /// policies default as documented on [`SocketTransportBuilder`]).
    pub fn builder(addr: SockAddr) -> SocketTransportBuilder {
        SocketTransportBuilder {
            addr,
            reconnect: ReconnectPolicy::default(),
            flush: None,
        }
    }

    /// Connect now with default policies; error if the manager is
    /// unreachable. Shorthand for `builder(addr).connect()`.
    pub fn connect(addr: SockAddr) -> io::Result<SocketTransport> {
        SocketTransport::builder(addr).connect()
    }

    /// Connect with default policies, retrying until `deadline` elapses.
    /// Shorthand for `builder(addr).connect_retry(deadline)`.
    pub fn connect_retry(addr: SockAddr, deadline: Duration) -> io::Result<SocketTransport> {
        SocketTransport::builder(addr).connect_retry(deadline)
    }

    /// Buffer writes and flush on the given size/deadline policy instead
    /// of one syscall per frame.
    #[deprecated(note = "use SocketTransport::builder(addr).flush(policy)")]
    pub fn with_flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.conn.set_flush_policy(Some(policy));
        self
    }

    /// Re-seed the reconnect jitter (deterministic tests).
    #[deprecated(
        note = "use SocketTransport::builder(addr).reconnect(ReconnectPolicy::seeded(seed))"
    )]
    pub fn with_backoff_seed(self, seed: u64) -> Self {
        // Rebuild the machine with a pinned seed; only valid in builder
        // position (before any greeting or buffered traffic exists).
        let mut conn = ClientConn::connected(&ReconnectPolicy::seeded(seed));
        conn.set_flush_policy(self.conn.flush_policy());
        SocketTransport { conn, ..self }
    }

    /// The peer address.
    pub fn addr(&self) -> &SockAddr {
        &self.addr
    }

    /// Whether a connection is currently up.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Successful reconnects after a lost connection (the initial
    /// connect does not count).
    pub fn reconnect_count(&self) -> u64 {
        self.conn.reconnects()
    }

    /// Frames currently sitting in the write buffer.
    pub fn buffered_frames(&self) -> u64 {
        self.conn.buffered_frames()
    }

    /// Completed flushes (buffered mode only).
    pub fn flush_count(&self) -> u64 {
        self.conn.flushes()
    }

    /// Flushes forced by the deadline trigger rather than the size one.
    pub fn deadline_flushes(&self) -> u64 {
        self.conn.deadline_flushes()
    }

    /// Frames dropped because a flush failed (connection down and the
    /// buffer discarded).
    pub fn dropped_frames(&self) -> u64 {
        self.conn.dropped_frames()
    }

    /// Whether the deadline trigger has fired for the oldest buffered
    /// frame — callers with their own tick loop use this to decide when
    /// to [`SocketTransport::flush`] during send lulls.
    pub fn flush_due(&self) -> bool {
        self.conn.flush_due(Instant::now())
    }

    /// Write all buffered frames now. Returns `false` if they had to be
    /// dropped (the connection was down and stayed down); the buffer is
    /// empty afterwards either way, so a dead manager costs the reports,
    /// never the sensor loop.
    pub fn flush(&mut self) -> bool {
        if !self.conn.has_buffered() {
            return true;
        }
        if !self.ensure_connected() {
            self.conn.drop_buffered();
            return false;
        }
        let Some(batch) = self.conn.begin_flush(Instant::now()) else {
            return true;
        };
        let buf = batch.bytes();
        let ok = if buf.len() > 1 && qos_buggify::buggify!("sock.write.split_batch") {
            // Chaos: the kernel (or a preemption) splits the coalesced
            // write in two. Frames must survive — the peer's
            // FrameBuffer reassembles across write boundaries.
            let mid = buf.len() / 2;
            let (lo, hi) = (buf[..mid].to_vec(), buf[mid..].to_vec());
            self.write_frame(&lo) && self.write_frame(&hi)
        } else {
            let whole = buf.to_vec();
            self.write_frame(&whole)
        };
        self.conn.finish_flush(batch, ok);
        ok
    }

    fn disconnect(&mut self) {
        if let Some(s) = self.stream.take() {
            s.shutdown();
        }
        self.conn.on_disconnect(Instant::now());
    }

    fn ensure_connected(&mut self) -> bool {
        if self.stream.is_some() {
            return true;
        }
        let now = Instant::now();
        if !self.conn.connect_due(now) {
            return false;
        }
        match SockStream::connect(&self.addr) {
            Ok(s) => {
                self.stream = Some(s);
                if let Some(g) = self.conn.on_connected(Instant::now()) {
                    // Replayed registration: restores the manager's view
                    // of this process after either side restarted.
                    self.write_frame(&g);
                }
                true
            }
            Err(_) => {
                self.conn.on_connect_failed(now);
                false
            }
        }
    }

    fn write_frame(&mut self, frame: &[u8]) -> bool {
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        if frame.len() > 1 && qos_buggify::buggify!("sock.write.tear") {
            // Chaos: the process dies (or is preempted forever) halfway
            // through a write. The connection stays up, so the peer's
            // next read sees a misaligned stream — exactly the torn
            // frame a crash between two write() calls produces.
            let _ = stream.write_all(&frame[..frame.len() / 2]);
            return true;
        }
        if qos_buggify::buggify!("sock.write.corrupt") {
            // Chaos: the frame arrives bit-flipped (bad magic) — the
            // peer must fail it as a typed error and drop us, never
            // panic.
            let mut bad = frame.to_vec();
            bad[0] ^= 0xff;
            let _ = stream.write_all(&bad);
            return true;
        }
        if stream.write_all(frame).is_ok() {
            true
        } else {
            self.disconnect();
            false
        }
    }
}

impl WireTransport for SocketTransport {
    fn try_send(&mut self, frame: &[u8]) -> bool {
        if self.conn.flush_policy().is_none() {
            return self.ensure_connected() && self.write_frame(frame);
        }
        // Buffered mode: accepting into the buffer always succeeds;
        // drops are only discovered (and counted) at flush time.
        if self.conn.buffer_frame(frame, Instant::now()) {
            self.flush();
        }
        true
    }

    fn flush(&mut self) -> bool {
        SocketTransport::flush(self)
    }

    fn sync(&mut self, timeout: Duration) -> bool {
        // A barrier covers everything sent before it: push buffered
        // frames out first so the ack really means "processed".
        SocketTransport::flush(self);
        if !self.ensure_connected() {
            return false;
        }
        let token = self.conn.next_sync_token();
        let req = WireMsg::SyncReq { token }.encode_frame();
        if !self.write_frame(&req) {
            return false;
        }
        let Some(stream) = self.stream.as_ref() else {
            return false;
        };
        let Ok(mut reader) = stream.try_clone() else {
            return false;
        };
        let deadline = Instant::now() + timeout;
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        loop {
            loop {
                match fb.next() {
                    Ok(Some(WireMsg::SyncAck { token: t })) if t == token => return true,
                    Ok(Some(_)) => continue, // stale ack or push; skip
                    Ok(None) => break,
                    Err(_) => {
                        self.disconnect();
                        return false;
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if reader.set_read_timeout(Some(deadline - now)).is_err() {
                return false;
            }
            match reader.read(&mut chunk) {
                Ok(0) => {
                    self.disconnect();
                    return false;
                }
                Ok(n) => fb.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return false;
                }
                Err(_) => {
                    self.disconnect();
                    return false;
                }
            }
        }
    }

    fn set_greeting(&mut self, frame: Vec<u8>) {
        self.conn.set_greeting(frame);
    }

    fn reconnects(&self) -> u64 {
        self.conn.reconnects()
    }
}

// ---------------------------------------------------------------------
// Telemetry tap: the read side of the manager's live stream
// ---------------------------------------------------------------------

/// A subscriber's end of the manager's telemetry stream: dial the
/// manager, announce the subscription (`TelemetrySubscribe`), then pull
/// decoded [`TelemetryBatchMsg`]es as they are published. Used by
/// `qosctl tail` / `record`; deliberately pull-based and bounded so a
/// slow consumer backs up into the manager's drop-oldest queue instead
/// of into unbounded memory here.
pub struct TelemetryTap {
    stream: SockStream,
    fb: FrameBuffer,
}

impl TelemetryTap {
    /// Connect and subscribe. The manager starts publishing to this
    /// connection on its next tick.
    pub fn connect(
        addr: &SockAddr,
        subscriber: &str,
        want_events: bool,
        want_metrics: bool,
    ) -> io::Result<TelemetryTap> {
        let mut stream = SockStream::connect(addr)?;
        let sub = WireMsg::TelemetrySubscribe(TelemetrySubscribeMsg {
            subscriber: subscriber.to_string(),
            want_events,
            want_metrics,
        })
        .encode_frame();
        stream.write_all(&sub)?;
        Ok(TelemetryTap {
            stream,
            fb: FrameBuffer::new(),
        })
    }

    /// The next batch, waiting at most `timeout`. `Ok(None)` means
    /// nothing arrived in time (the stream is still healthy); `Err`
    /// means the manager closed the connection or the stream corrupted.
    pub fn next_batch(&mut self, timeout: Duration) -> io::Result<Option<TelemetryBatchMsg>> {
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 4096];
        loop {
            loop {
                match self.fb.next() {
                    Ok(Some(WireMsg::TelemetryBatch(b))) => return Ok(Some(b)),
                    // Acks and other push kinds may share the stream.
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => return Err(io::Error::other(format!("stream corrupt: {e}"))),
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.fb.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::AdaptMsg;

    #[test]
    fn channel_transport_delivers_frames() {
        let (tx, rx) = bounded(4);
        let mut t = ChannelTransport::new(tx);
        let frame = WireMsg::Bye.encode_frame();
        assert!(t.try_send(&frame));
        match rx.recv().unwrap() {
            Inbound::Frame { bytes, reply } => {
                assert!(reply.is_none());
                assert_eq!(WireMsg::decode_frame(&bytes).unwrap(), WireMsg::Bye);
            }
            _ => panic!("expected frame"),
        }
    }

    #[test]
    fn channel_sync_acks_through_reply_sink() {
        let (tx, rx) = bounded(4);
        let h = std::thread::spawn(move || {
            // Minimal manager loop: ack the sync.
            if let Ok(Inbound::Frame { bytes, reply }) = rx.recv() {
                if let Ok(WireMsg::SyncReq { token }) = WireMsg::decode_frame(&bytes) {
                    let ack = WireMsg::SyncAck { token }.encode_frame();
                    assert!(reply.unwrap().send(&ack));
                }
            }
        });
        let mut t = ChannelTransport::new(tx);
        assert!(t.sync(Duration::from_secs(5)));
        h.join().unwrap();
    }

    #[test]
    fn channel_sync_fails_when_manager_gone() {
        let (tx, rx) = bounded(4);
        drop(rx);
        let mut t = ChannelTransport::new(tx);
        assert!(!t.sync(Duration::from_millis(50)));
    }

    #[test]
    fn socket_transport_reconnects_with_greeting() {
        let dir = std::env::temp_dir().join(format!("qos-sock-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("reconnect.sock");
        let addr = SockAddr::Uds(path.clone());

        let listener = SockListener::bind(&addr).unwrap();
        let mut t = SocketTransport::connect(addr.clone()).unwrap();
        let greeting = WireMsg::Adapt(AdaptMsg {
            actuator: "a".into(),
            command: "greet".into(),
            value: 1.0,
        })
        .encode_frame();
        t.set_greeting(greeting.clone());

        // First connection: accept, then kill it server-side.
        let first = listener.accept().unwrap();
        first.shutdown();
        drop(first);

        // The next sends hit the dead connection, then reconnect (after
        // backoff) and replay the greeting.
        let frame = WireMsg::Bye.encode_frame();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !t.try_send(&frame) {
            assert!(Instant::now() < deadline, "reconnect never succeeded");
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut second = listener.accept().unwrap();
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 1024];
        let got_greeting = loop {
            let n = second.read(&mut chunk).unwrap();
            assert!(n > 0, "peer closed before greeting");
            fb.extend(&chunk[..n]);
            if let Some(msg) = fb.next().unwrap() {
                break msg;
            }
        };
        assert!(
            matches!(got_greeting, WireMsg::Adapt(ref m) if m.command == "greet"),
            "greeting must be replayed first after reconnect, got {got_greeting:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn buffered_transport_coalesces_and_flushes() {
        let dir = std::env::temp_dir().join(format!("qos-sock-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("buffered.sock");
        let addr = SockAddr::Uds(path.clone());

        let listener = SockListener::bind(&addr).unwrap();
        let mut t = SocketTransport::builder(addr)
            .flush(FlushPolicy {
                max_bytes: 1 << 20, // size trigger never fires here
                max_delay: Duration::from_secs(60),
            })
            .connect()
            .unwrap();
        let mut peer = listener.accept().unwrap();
        peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        for token in 0..4 {
            assert!(t.try_send(&WireMsg::SyncReq { token }.encode_frame()));
        }
        assert_eq!(t.buffered_frames(), 4, "frames must coalesce, not write");
        assert!(SocketTransport::flush(&mut t));
        assert_eq!(t.buffered_frames(), 0);
        assert_eq!(t.flush_count(), 1);
        assert_eq!(t.dropped_frames(), 0);

        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        let mut chunk = [0u8; 4096];
        while got.len() < 4 {
            let n = peer.read(&mut chunk).unwrap();
            assert!(n > 0, "peer closed early");
            fb.extend(&chunk[..n]);
            while let Some(msg) = fb.next().unwrap() {
                got.push(msg);
            }
        }
        let tokens: Vec<u64> = got
            .iter()
            .map(|m| match m {
                WireMsg::SyncReq { token } => *token,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(tokens, vec![0, 1, 2, 3], "order must be preserved");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn buffered_flush_counts_drops_when_manager_gone() {
        let dir = std::env::temp_dir().join(format!("qos-sock-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("buffered-drop.sock");
        let addr = SockAddr::Uds(path.clone());

        let listener = SockListener::bind(&addr).unwrap();
        let mut t = SocketTransport::builder(addr)
            .flush(FlushPolicy {
                max_bytes: 1 << 20,
                max_delay: Duration::from_secs(60),
            })
            .connect()
            .unwrap();
        let first = listener.accept().unwrap();
        first.shutdown();
        drop(first);
        drop(listener);
        let _ = std::fs::remove_file(&path);

        // Buffer still accepts; the loss is discovered at flush time.
        for token in 0..3 {
            assert!(t.try_send(&WireMsg::SyncReq { token }.encode_frame()));
        }
        // First flush may still slip into the dead socket's send buffer;
        // keep flushing fresh frames until the failure is observed.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut token = 3;
        while t.dropped_frames() == 0 {
            assert!(Instant::now() < deadline, "drop never observed");
            let _ = SocketTransport::flush(&mut t);
            assert!(t.buffered_frames() == 0, "flush must empty the buffer");
            t.try_send(&WireMsg::SyncReq { token }.encode_frame());
            token += 1;
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(t.dropped_frames() > 0);
    }

    #[test]
    fn socket_connect_refused_is_error_not_panic() {
        let addr = SockAddr::Uds(std::path::PathBuf::from("/nonexistent/qos-no-such.sock"));
        assert!(SocketTransport::connect(addr).is_err());
    }

    // The Backoff envelope's own tests moved with it into qos-net; what
    // this crate pins is that the builder threads the policy through to
    // the driver's reconnect schedule.
    #[test]
    fn builder_reconnect_policy_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("qos-sock-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("seeded.sock");
        let addr = SockAddr::Uds(path.clone());
        let listener = SockListener::bind(&addr).unwrap();
        let mut t = SocketTransport::builder(addr)
            .reconnect(ReconnectPolicy::seeded(7))
            .connect()
            .unwrap();
        let first = listener.accept().unwrap();
        first.shutdown();
        drop(first);
        drop(listener);
        let _ = std::fs::remove_file(&path);
        // Two failed sends: the first discovers the dead stream and arms
        // the seeded backoff window; inside the window no dial happens.
        let frame = WireMsg::Bye.encode_frame();
        while t.is_connected() {
            let _ = t.try_send(&frame);
        }
        assert!(!t.try_send(&frame), "listener is gone; dial must fail");
        assert_eq!(t.reconnect_count(), 0);
    }
}
