//! Live deployment: the instrumentation and management plane on real
//! threads with real clocks — the configuration used to reproduce the
//! paper's Section 7 overhead measurements (an instrumented process needs
//! ≈400 µs extra to initialise and register; one pass through the
//! instrumentation code when QoS is met costs ≈11 µs).
//!
//! The exact same `qos-instrument` components run here as inside the
//! simulation; only the clock and the transport differ (wall time and a
//! crossbeam channel instead of simulated time and simulated IPC).

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use qos_inference::prelude::*;
use qos_instrument::prelude::*;
use qos_repository::prelude::*;
use qos_telemetry::{Counter, Telemetry};

use crate::rules::{host_base_facts, host_rules_fair};

/// Capacity of the manager's message queue. Bounded so a violation storm
/// back-pressures into [`LiveProcess::reports_dropped`] instead of
/// growing the queue (and the manager's lag) without limit.
pub const LIVE_QUEUE_CAPACITY: usize = 1024;

/// Failure starting or reaching the live management plane.
#[derive(Debug)]
pub enum LiveError {
    /// The manager thread is not running (channel disconnected).
    ManagerUnavailable,
    /// The built-in rule base failed to parse.
    BadRules(String),
    /// The OS refused to spawn the manager thread.
    ThreadSpawn(std::io::Error),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::ManagerUnavailable => write!(f, "live host manager is not running"),
            LiveError::BadRules(e) => write!(f, "built-in rule base failed to parse: {e}"),
            LiveError::ThreadSpawn(e) => write!(f, "could not spawn manager thread: {e}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::ThreadSpawn(e) => Some(e),
            _ => None,
        }
    }
}

/// Wall-clock microseconds since an origin.
#[derive(Debug, Clone, Copy)]
pub struct LiveClock {
    t0: Instant,
}

impl LiveClock {
    /// Clock starting now.
    pub fn new() -> Self {
        LiveClock { t0: Instant::now() }
    }

    /// Microseconds since the clock started.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

impl Default for LiveClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Messages from instrumented processes to the live host manager.
#[derive(Debug)]
pub enum LiveMsg {
    /// A process registered (initialisation handshake).
    Register {
        /// Process identity.
        process: String,
    },
    /// A policy violation notification.
    Violation(ViolationReport),
    /// Barrier: the manager acks once everything queued before this
    /// message has been processed (lets tests and shutdown paths wait
    /// for quiescence without sleeping).
    Sync {
        /// Acked with a unit send after the queue ahead is drained.
        ack: Sender<()>,
    },
    /// Shut the manager thread down.
    Shutdown,
}

/// An instrumented process in live mode: sensors + coordinator + the
/// manager channel, as created by process initialisation.
pub struct LiveProcess {
    /// The process's sensors.
    pub sensors: SensorSet,
    /// The process's coordinator.
    pub coordinator: Coordinator,
    clock: LiveClock,
    tx: Sender<LiveMsg>,
    reports_sent: u64,
    reports_dropped: u64,
    /// Registry mirrors of the two counters above (noop until
    /// [`LiveProcess::set_telemetry`]). Uncontended relaxed atomics: the
    /// mirror adds nanoseconds to a path that already crossed a channel.
    sent_counter: Counter,
    dropped_counter: Counter,
}

impl LiveProcess {
    /// Full instrumented-process initialisation (the path measured by
    /// experiment E2): register with the Policy Agent, receive and load
    /// the applicable policies, configure sensor thresholds, and announce
    /// to the host manager. Fails (instead of panicking) when the manager
    /// is not running — the caller decides whether to run unmanaged.
    pub fn start(
        registration: &Registration,
        repo: &Repository,
        agent: &mut PolicyAgent,
        tx: Sender<LiveMsg>,
    ) -> Result<Self, LiveError> {
        let resolution = agent.register(repo, registration);
        let mut coordinator = Coordinator::new(registration.process.clone());
        for p in resolution.policies {
            coordinator.load_policy(p);
        }
        let sensors = SensorSet::video_standard();
        sensors.configure(coordinator.global_conditions());
        tx.send(LiveMsg::Register {
            process: registration.process.clone(),
        })
        .map_err(|_| LiveError::ManagerUnavailable)?;
        Ok(LiveProcess {
            sensors,
            coordinator,
            clock: LiveClock::new(),
            tx,
            reports_sent: 0,
            reports_dropped: 0,
            sent_counter: Counter::noop(),
            dropped_counter: Counter::noop(),
        })
    }

    /// Mirror the report counters into a telemetry registry as
    /// `live.reports_sent` / `live.reports_dropped`, labelled with the
    /// process identity. Call once after `start`; existing counts are
    /// carried over.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        let label = self.coordinator.process().to_string();
        self.sent_counter = t.counter("live.reports_sent", &label);
        self.dropped_counter = t.counter("live.reports_dropped", &label);
        self.sent_counter.add(self.reports_sent);
        self.dropped_counter.add(self.reports_dropped);
    }

    /// Best-effort violation delivery: a full queue (manager lagging) or
    /// a dead manager drops the report and counts it, rather than
    /// blocking or killing the instrumented process. Violations are
    /// re-detected on the next pass, so a drop costs latency, not
    /// correctness.
    fn report(&mut self, report: ViolationReport) {
        match self.tx.try_send(LiveMsg::Violation(report)) {
            Ok(()) => {
                self.reports_sent += 1;
                self.sent_counter.inc();
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.reports_dropped += 1;
                self.dropped_counter.inc();
            }
        }
    }

    /// One pass through the instrumentation after a frame is displayed
    /// (the path measured by experiment E3): fps + jitter probes, alarm
    /// routing, and — only on a violation edge — action execution and a
    /// notification to the host manager. Returns the number of reports
    /// sent (0 on the happy path).
    pub fn frame_pass(&mut self) -> usize {
        let now = self.clock.now_us();
        let mut generated = 0;
        let mut alarms = Vec::new();
        if let Some(f) = self.sensors.fps() {
            alarms.extend(f.frame_displayed(now));
        }
        if let Some(j) = self.sensors.jitter() {
            alarms.extend(j.frame_displayed(now));
        }
        for alarm in &alarms {
            for pix in self.coordinator.on_alarm(alarm) {
                if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now) {
                    self.report(report);
                    generated += 1;
                }
            }
        }
        generated
    }

    /// Sample the communication buffer (Example 5's probe).
    pub fn buffer_pass(&mut self, buffer_bytes: u64) -> usize {
        let now = self.clock.now_us();
        let mut generated = 0;
        if let Some(b) = self.sensors.buffer() {
            for alarm in b.sample(buffer_bytes as f64, now) {
                for pix in self.coordinator.on_alarm(&alarm) {
                    if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now)
                    {
                        self.report(report);
                        generated += 1;
                    }
                }
            }
        }
        generated
    }

    /// Reports delivered to the manager so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Reports dropped because the manager's queue was full or the
    /// manager was gone (backpressure counter).
    pub fn reports_dropped(&self) -> u64 {
        self.reports_dropped
    }
}

/// Counters exposed by the live host manager.
#[derive(Debug, Default)]
pub struct LiveManagerStats {
    /// Distinct processes registered (re-registration is idempotent).
    pub registrations: AtomicU64,
    /// Violations received.
    pub violations: AtomicU64,
    /// Rules fired across all violations.
    pub rules_fired: AtomicU64,
    /// Net CPU-boost level decided (sum of adjust minus relax steps) —
    /// stands in for priocntl in live mode, where we will not actually
    /// renice the benchmark process.
    pub boost_level: AtomicI64,
}

/// A QoS Host Manager on its own thread, fed by a crossbeam channel.
pub struct LiveHostManager {
    /// Shared counters.
    pub stats: Arc<LiveManagerStats>,
    handle: Option<std::thread::JoinHandle<()>>,
    tx: Sender<LiveMsg>,
}

impl LiveHostManager {
    /// Spawn the manager thread with the default host rules. The rule
    /// base is parsed before the thread starts, so a bad build fails
    /// here, in the caller, rather than panicking a detached thread.
    pub fn spawn() -> Result<Self, LiveError> {
        let rules = parse_program(&host_rules_fair()).map_err(|e| LiveError::BadRules(e.0))?;
        let base = parse_program(&host_base_facts()).map_err(|e| LiveError::BadRules(e.0))?;
        let (tx, rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = bounded(LIVE_QUEUE_CAPACITY);
        let stats = Arc::new(LiveManagerStats::default());
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("qos-host-manager".into())
            .spawn(move || {
                let mut engine = Engine::new();
                for r in rules.rules {
                    engine.add_rule(r);
                }
                for f in base.facts {
                    engine.assert_fact(f);
                }
                let mut registered: HashSet<String> = HashSet::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        LiveMsg::Register { process } => {
                            // At-least-once registration: only the first
                            // sighting of a process id counts.
                            if registered.insert(process) {
                                thread_stats.registrations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        LiveMsg::Sync { ack } => {
                            let _ = ack.send(());
                        }
                        LiveMsg::Violation(report) => {
                            thread_stats.violations.fetch_add(1, Ordering::Relaxed);
                            let fps = report.readings.first().map(|&(_, v)| v).unwrap_or(0.0);
                            let buffer = report.reading("buffer_size").unwrap_or(0.0);
                            engine.assert_fact(
                                Fact::new("violation")
                                    .with("pid", Value::str(&report.process))
                                    .with("fps", fps)
                                    .with("lo", 23.0)
                                    .with("hi", 27.0)
                                    .with("buffer", buffer)
                                    .with("weight", 1.0)
                                    .with("has-upstream", false),
                            );
                            let stats = engine.run(100);
                            thread_stats
                                .rules_fired
                                .fetch_add(stats.fired, Ordering::Relaxed);
                            for inv in engine.take_invocations() {
                                match inv.command.as_str() {
                                    "adjust-cpu" => {
                                        thread_stats.boost_level.fetch_add(10, Ordering::Relaxed);
                                    }
                                    "relax-cpu" => {
                                        thread_stats.boost_level.fetch_add(-5, Ordering::Relaxed);
                                    }
                                    _ => {}
                                }
                            }
                        }
                        LiveMsg::Shutdown => break,
                    }
                }
            })
            .map_err(LiveError::ThreadSpawn)?;
        Ok(LiveHostManager {
            stats,
            handle: Some(handle),
            tx,
        })
    }

    /// Channel endpoint for instrumented processes.
    pub fn sender(&self) -> Sender<LiveMsg> {
        self.tx.clone()
    }

    /// Wait until everything queued so far has been processed. Returns
    /// `false` if the manager thread is gone or takes more than five
    /// seconds (it never legitimately does).
    pub fn sync(&self) -> bool {
        let (ack_tx, ack_rx) = bounded(1);
        if self.tx.send(LiveMsg::Sync { ack: ack_tx }).is_err() {
            return false;
        }
        ack_rx.recv_timeout(Duration::from_secs(5)).is_ok()
    }

    /// Idempotent stop: the first call delivers Shutdown and joins; any
    /// repeat (including the Drop after an explicit `shutdown`) is a
    /// no-op because the handle is already gone.
    fn stop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = self.tx.send(LiveMsg::Shutdown);
            let _ = h.join();
        }
    }

    /// Stop the thread and wait for it.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for LiveHostManager {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Build the standard video repository + agent used by live tests and the
/// overhead benchmarks: the information model plus the paper's Example 1
/// policy.
pub fn standard_live_repo() -> (Repository, PolicyAgent) {
    let (model, _, _) = qos_policy::model::video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).expect("fresh repository");
    repo.store_policy(&StoredPolicy {
        name: "NotifyQoSViolation".into(),
        application: "VideoPlayback".into(),
        executable: "VideoApplication".into(),
        role: "*".into(),
        source: "oblig NotifyQoSViolation { \
                 subject (...)/VideoApplication/qosl_coordinator \
                 target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager \
                 on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25) \
                 do fps_sensor->read(out frame_rate); \
                    jitter_sensor->read(out jitter_rate); \
                    buffer_sensor->read(out buffer_size); \
                    (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size); }"
            .into(),
        enabled: true,
    })
    .expect("fresh repository");
    (repo, PolicyAgent::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registration() -> Registration {
        Registration {
            process: "live:p1".into(),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        }
    }

    #[test]
    fn live_init_registers_and_loads_policies() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender())
            .expect("manager running");
        assert_eq!(p.coordinator.policy_count(), 1);
        assert_eq!(p.coordinator.global_conditions().len(), 3);
        assert!(mgr.sync(), "manager drains its queue");
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        mgr.shutdown();
    }

    #[test]
    fn registration_is_idempotent() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        // The same process id registering repeatedly (at-least-once
        // delivery, or a restart-and-re-register) counts once.
        let _p1 = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender()).unwrap();
        let _p2 = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender()).unwrap();
        mgr.sender()
            .send(LiveMsg::Register {
                process: "live:p1".into(),
            })
            .unwrap();
        assert!(mgr.sync());
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        mgr.shutdown();
    }

    #[test]
    fn start_fails_cleanly_when_manager_is_gone() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let tx = mgr.sender();
        mgr.shutdown();
        let err = LiveProcess::start(&registration(), &repo, &mut agent, tx);
        assert!(matches!(err, Err(LiveError::ManagerUnavailable)));
    }

    #[test]
    fn happy_path_sends_no_reports() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender())
            .expect("manager running");
        // Prime the fps window at a healthy rate using manual timestamps
        // via the sensor directly (the live pass uses wall time, which is
        // effectively instantaneous here — the fps will look enormous,
        // exceeding the 27 upper bound, so pre-check with buffer only).
        for _ in 0..5 {
            assert_eq!(p.buffer_pass(100), 0, "healthy buffer, no reports");
        }
        assert_eq!(p.reports_sent(), 0);
        assert_eq!(p.reports_dropped(), 0);
        mgr.shutdown();
    }

    #[test]
    fn violation_reaches_manager_and_fires_rules() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender())
            .expect("manager running");
        // Drive the fps sensor below 23 with manual timestamps: frames
        // 200 ms apart -> 5 fps.
        let fps = p.sensors.fps().unwrap();
        let mut reports = 0;
        let mut now = 0u64;
        let mut alarms = Vec::new();
        for _ in 0..20 {
            now += 200_000;
            alarms.extend(fps.frame_displayed(now));
        }
        for a in &alarms {
            for pix in p.coordinator.on_alarm(a) {
                if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                    p.tx.send(LiveMsg::Violation(r)).unwrap();
                    reports += 1;
                }
            }
        }
        assert!(reports >= 1, "fps collapse must notify");
        assert!(mgr.sync(), "manager drains its queue");
        assert!(mgr.stats.violations.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
        mgr.shutdown();
    }

    #[test]
    fn dropped_reports_are_counted_not_fatal() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender())
            .expect("manager running");
        mgr.shutdown();
        // Manager gone: a violation pass must neither panic nor hang.
        let fps = p.sensors.fps().unwrap();
        let mut now = 0u64;
        let mut alarms = Vec::new();
        for _ in 0..20 {
            now += 200_000;
            alarms.extend(fps.frame_displayed(now));
        }
        let mut generated = 0;
        for a in &alarms {
            for pix in p.coordinator.on_alarm(a) {
                if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                    p.report(r);
                    generated += 1;
                }
            }
        }
        assert!(generated >= 1);
        assert_eq!(p.reports_sent(), 0);
        assert_eq!(p.reports_dropped(), generated as u64);
    }

    #[test]
    fn dropped_reports_mirror_into_registry() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender())
            .expect("manager running");
        let t = Telemetry::enabled();
        if !t.is_enabled() {
            // telemetry-off build: nothing to mirror, by design.
            mgr.shutdown();
            return;
        }
        p.set_telemetry(&t);
        mgr.shutdown();
        let fps = p.sensors.fps().unwrap();
        let mut now = 0u64;
        let mut alarms = Vec::new();
        for _ in 0..20 {
            now += 200_000;
            alarms.extend(fps.frame_displayed(now));
        }
        for a in &alarms {
            for pix in p.coordinator.on_alarm(a) {
                if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                    p.report(r);
                }
            }
        }
        assert!(p.reports_dropped() >= 1);
        assert_eq!(
            t.counter_value("live.reports_dropped", "live:p1"),
            p.reports_dropped()
        );
        assert_eq!(t.counter_value("live.reports_sent", "live:p1"), 0);
    }

    #[test]
    fn shutdown_is_idempotent_with_drop() {
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let tx = mgr.sender();
        // `shutdown` consumes self and Drop runs right after it — the
        // second stop() must be a no-op, not a hang or double-join.
        mgr.shutdown();
        assert!(
            tx.send(LiveMsg::Shutdown).is_err(),
            "thread gone, channel disconnected"
        );
    }
}
