//! Live deployment: the instrumentation and management plane on real
//! threads with real clocks — the configuration used to reproduce the
//! paper's Section 7 overhead measurements (an instrumented process needs
//! ≈400 µs extra to initialise and register; one pass through the
//! instrumentation code when QoS is met costs ≈11 µs).
//!
//! The exact same `qos-instrument` components run here as inside the
//! simulation; only the clock and the transport differ (wall time and a
//! crossbeam channel instead of simulated time and simulated IPC).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use qos_inference::prelude::*;
use qos_instrument::prelude::*;
use qos_repository::prelude::*;

use crate::rules::{host_base_facts, host_rules_fair};

/// Wall-clock microseconds since an origin.
#[derive(Debug, Clone, Copy)]
pub struct LiveClock {
    t0: Instant,
}

impl LiveClock {
    /// Clock starting now.
    pub fn new() -> Self {
        LiveClock { t0: Instant::now() }
    }

    /// Microseconds since the clock started.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

impl Default for LiveClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Messages from instrumented processes to the live host manager.
#[derive(Debug)]
pub enum LiveMsg {
    /// A process registered (initialisation handshake).
    Register {
        /// Process identity.
        process: String,
    },
    /// A policy violation notification.
    Violation(ViolationReport),
    /// Shut the manager thread down.
    Shutdown,
}

/// An instrumented process in live mode: sensors + coordinator + the
/// manager channel, as created by process initialisation.
pub struct LiveProcess {
    /// The process's sensors.
    pub sensors: SensorSet,
    /// The process's coordinator.
    pub coordinator: Coordinator,
    clock: LiveClock,
    tx: Sender<LiveMsg>,
    reports_sent: u64,
}

impl LiveProcess {
    /// Full instrumented-process initialisation (the path measured by
    /// experiment E2): register with the Policy Agent, receive and load
    /// the applicable policies, configure sensor thresholds, and announce
    /// to the host manager.
    pub fn start(
        registration: &Registration,
        repo: &Repository,
        agent: &mut PolicyAgent,
        tx: Sender<LiveMsg>,
    ) -> Self {
        let resolution = agent.register(repo, registration);
        let mut coordinator = Coordinator::new(registration.process.clone());
        for p in resolution.policies {
            coordinator.load_policy(p);
        }
        let sensors = SensorSet::video_standard();
        sensors.configure(coordinator.global_conditions());
        tx.send(LiveMsg::Register {
            process: registration.process.clone(),
        })
        .expect("manager alive during registration");
        LiveProcess {
            sensors,
            coordinator,
            clock: LiveClock::new(),
            tx,
            reports_sent: 0,
        }
    }

    /// One pass through the instrumentation after a frame is displayed
    /// (the path measured by experiment E3): fps + jitter probes, alarm
    /// routing, and — only on a violation edge — action execution and a
    /// notification to the host manager. Returns the number of reports
    /// sent (0 on the happy path).
    pub fn frame_pass(&mut self) -> usize {
        let now = self.clock.now_us();
        let mut sent = 0;
        let mut alarms = Vec::new();
        if let Some(f) = self.sensors.fps() {
            alarms.extend(f.frame_displayed(now));
        }
        if let Some(j) = self.sensors.jitter() {
            alarms.extend(j.frame_displayed(now));
        }
        for alarm in &alarms {
            for pix in self.coordinator.on_alarm(alarm) {
                if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now) {
                    let _ = self.tx.send(LiveMsg::Violation(report));
                    sent += 1;
                }
            }
        }
        self.reports_sent += sent as u64;
        sent
    }

    /// Sample the communication buffer (Example 5's probe).
    pub fn buffer_pass(&mut self, buffer_bytes: u64) -> usize {
        let now = self.clock.now_us();
        let mut sent = 0;
        if let Some(b) = self.sensors.buffer() {
            for alarm in b.sample(buffer_bytes as f64, now) {
                for pix in self.coordinator.on_alarm(&alarm) {
                    if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now)
                    {
                        let _ = self.tx.send(LiveMsg::Violation(report));
                        sent += 1;
                    }
                }
            }
        }
        self.reports_sent += sent as u64;
        sent
    }

    /// Reports sent so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }
}

/// Counters exposed by the live host manager.
#[derive(Debug, Default)]
pub struct LiveManagerStats {
    /// Registrations received.
    pub registrations: AtomicU64,
    /// Violations received.
    pub violations: AtomicU64,
    /// Rules fired across all violations.
    pub rules_fired: AtomicU64,
    /// Net CPU-boost level decided (sum of adjust minus relax steps) —
    /// stands in for priocntl in live mode, where we will not actually
    /// renice the benchmark process.
    pub boost_level: AtomicI64,
}

/// A QoS Host Manager on its own thread, fed by a crossbeam channel.
pub struct LiveHostManager {
    /// Shared counters.
    pub stats: Arc<LiveManagerStats>,
    handle: Option<std::thread::JoinHandle<()>>,
    tx: Sender<LiveMsg>,
}

impl LiveHostManager {
    /// Spawn the manager thread with the default host rules.
    pub fn spawn() -> Self {
        let (tx, rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
        let stats = Arc::new(LiveManagerStats::default());
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("qos-host-manager".into())
            .spawn(move || {
                let mut engine = Engine::new();
                let prog = parse_program(&host_rules_fair()).expect("built-in rules parse");
                for r in prog.rules {
                    engine.add_rule(r);
                }
                for f in parse_program(&host_base_facts())
                    .expect("built-in facts parse")
                    .facts
                {
                    engine.assert_fact(f);
                }
                while let Ok(msg) = rx.recv() {
                    match msg {
                        LiveMsg::Register { .. } => {
                            thread_stats.registrations.fetch_add(1, Ordering::Relaxed);
                        }
                        LiveMsg::Violation(report) => {
                            thread_stats.violations.fetch_add(1, Ordering::Relaxed);
                            let fps = report.readings.first().map(|&(_, v)| v).unwrap_or(0.0);
                            let buffer = report.reading("buffer_size").unwrap_or(0.0);
                            engine.assert_fact(
                                Fact::new("violation")
                                    .with("pid", Value::str(&report.process))
                                    .with("fps", fps)
                                    .with("lo", 23.0)
                                    .with("hi", 27.0)
                                    .with("buffer", buffer)
                                    .with("weight", 1.0)
                                    .with("has-upstream", false),
                            );
                            let stats = engine.run(100);
                            thread_stats
                                .rules_fired
                                .fetch_add(stats.fired, Ordering::Relaxed);
                            for inv in engine.take_invocations() {
                                match inv.command.as_str() {
                                    "adjust-cpu" => {
                                        thread_stats.boost_level.fetch_add(10, Ordering::Relaxed);
                                    }
                                    "relax-cpu" => {
                                        thread_stats.boost_level.fetch_add(-5, Ordering::Relaxed);
                                    }
                                    _ => {}
                                }
                            }
                        }
                        LiveMsg::Shutdown => break,
                    }
                }
            })
            .expect("spawn manager thread");
        LiveHostManager {
            stats,
            handle: Some(handle),
            tx,
        }
    }

    /// Channel endpoint for instrumented processes.
    pub fn sender(&self) -> Sender<LiveMsg> {
        self.tx.clone()
    }

    /// Stop the thread and wait for it.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(LiveMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LiveHostManager {
    fn drop(&mut self) {
        let _ = self.tx.send(LiveMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Build the standard video repository + agent used by live tests and the
/// overhead benchmarks: the information model plus the paper's Example 1
/// policy.
pub fn standard_live_repo() -> (Repository, PolicyAgent) {
    let (model, _, _) = qos_policy::model::video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).expect("fresh repository");
    repo.store_policy(&StoredPolicy {
        name: "NotifyQoSViolation".into(),
        application: "VideoPlayback".into(),
        executable: "VideoApplication".into(),
        role: "*".into(),
        source: "oblig NotifyQoSViolation { \
                 subject (...)/VideoApplication/qosl_coordinator \
                 target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager \
                 on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25) \
                 do fps_sensor->read(out frame_rate); \
                    jitter_sensor->read(out jitter_rate); \
                    buffer_sensor->read(out buffer_size); \
                    (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size); }"
            .into(),
        enabled: true,
    })
    .expect("fresh repository");
    (repo, PolicyAgent::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn registration() -> Registration {
        Registration {
            process: "live:p1".into(),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        }
    }

    #[test]
    fn live_init_registers_and_loads_policies() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn();
        let p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender());
        assert_eq!(p.coordinator.policy_count(), 1);
        assert_eq!(p.coordinator.global_conditions().len(), 3);
        // Give the manager thread a moment to drain.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        mgr.shutdown();
    }

    #[test]
    fn happy_path_sends_no_reports() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender());
        // Prime the fps window at a healthy rate using manual timestamps
        // via the sensor directly (the live pass uses wall time, which is
        // effectively instantaneous here — the fps will look enormous,
        // exceeding the 27 upper bound, so pre-check with buffer only).
        for _ in 0..5 {
            assert_eq!(p.buffer_pass(100), 0, "healthy buffer, no reports");
        }
        assert_eq!(p.reports_sent(), 0);
        mgr.shutdown();
    }

    #[test]
    fn violation_reaches_manager_and_fires_rules() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.sender());
        // Drive the fps sensor below 23 with manual timestamps: frames
        // 200 ms apart -> 5 fps.
        let fps = p.sensors.fps().unwrap();
        let mut reports = 0;
        let mut now = 0u64;
        let mut alarms = Vec::new();
        for _ in 0..20 {
            now += 200_000;
            alarms.extend(fps.frame_displayed(now));
        }
        for a in &alarms {
            for pix in p.coordinator.on_alarm(a) {
                if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                    p.tx.send(LiveMsg::Violation(r)).unwrap();
                    reports += 1;
                }
            }
        }
        assert!(reports >= 1, "fps collapse must notify");
        // Wait for the manager thread.
        for _ in 0..100 {
            if mgr.stats.violations.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(mgr.stats.violations.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
        mgr.shutdown();
    }
}
