//! Live deployment: the instrumentation and management plane on real
//! threads with real clocks — the configuration used to reproduce the
//! paper's Section 7 overhead measurements (an instrumented process needs
//! ≈400 µs extra to initialise and register; one pass through the
//! instrumentation code when QoS is met costs ≈11 µs).
//!
//! The exact same `qos-instrument` components run here as inside the
//! simulation; only the clock and the carrier differ. All live traffic is
//! `qos_wire` frames over a [`WireTransport`]: the in-proc channel
//! backend keeps everything in one address space, and the socket backend
//! (TCP or Unix-domain) puts the manager and its instrumented processes
//! in separate OS processes. Frames are decoded centrally in the manager
//! thread, so a malformed frame is a counted statistic
//! ([`LiveManagerStats::decode_errors`], mirrored to telemetry as
//! `live.decode_errors`), never a panic.
//!
//! Socket peers are served by one of two interchangeable [`Driver`]s
//! over the same `qos-net` protocol machines: [`Driver::Threads`] (one
//! blocking reader thread per peer — portable, the pre-reactor shape)
//! or [`Driver::Reactor`] (the hand-rolled epoll reactor: every peer
//! multiplexed onto a small worker pool, the C10k configuration; Linux
//! only). Both feed the identical [`ManagerCore`](self) inbound queue,
//! so rule firing traces are driver-independent. Construction goes
//! through [`LiveHostManager::builder`]:
//!
//! ```no_run
//! use qos_manager::live::{Driver, ListenSpec, LiveHostManager};
//! use qos_manager::SockAddr;
//! let mgr = LiveHostManager::builder()
//!     .listen(ListenSpec::Sock(SockAddr::Tcp("127.0.0.1:0".into())))
//!     .driver(Driver::Reactor)
//!     .workers(4)
//!     .spawn()
//!     .expect("spawn manager");
//! ```

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use qos_inference::prelude::*;
use qos_instrument::prelude::*;
use qos_net::PeerReader;
#[cfg(target_os = "linux")]
use qos_net::{EventSink, NetStats, OutQueueConfig, PeerSender, ReactorConfig, ReactorHandle};
use qos_repository::prelude::*;
use qos_telemetry::{Counter, Histogram, Stage, Telemetry, TraceEvent};
use qos_wire::messages::{
    LiveRegisterMsg, LiveViolationMsg, TelemetryBatchMsg, TelemetrySubscribeMsg,
};
use qos_wire::{BatchBuilder, WireMsg, WireMsgRef};

use crate::rules::{host_base_facts, host_rules_fair};
use crate::transport::{
    ChannelTransport, FlushPolicy, Inbound, ReplySink, SinkSend, SockAddr, SockListener,
    WireTransport,
};

/// Capacity of the manager's message queue. Bounded so a violation storm
/// back-pressures into [`LiveProcess::reports_dropped`] instead of
/// growing the queue (and the manager's lag) without limit.
pub const LIVE_QUEUE_CAPACITY: usize = 1024;

/// How long [`LiveHostManager::sync`] and transport syncs wait for the
/// manager to drain (it never legitimately takes longer).
pub const SYNC_TIMEOUT: Duration = Duration::from_secs(5);

/// How often the manager flushes staged events to telemetry subscribers
/// (also the idle tick of the manager loop).
pub const TELEMETRY_PUBLISH_INTERVAL: Duration = Duration::from_millis(100);

/// Minimum spacing of metrics snapshots in the published stream —
/// snapshots cost a full registry walk, so they ride a slower cadence
/// than event batches.
pub const TELEMETRY_METRICS_INTERVAL: Duration = Duration::from_millis(500);

/// Per-subscriber pending-batch budget. A subscriber that stops reading
/// loses its *oldest* batches first (`live.telemetry_dropped` counts
/// them); the manager's memory stays bounded either way.
pub const SUBSCRIBER_QUEUE_CAPACITY: usize = 64;

/// Staged-event threshold that forces a publish before the interval
/// elapses, bounding batch size under a violation storm.
const BATCH_MAX_EVENTS: usize = 256;

/// High bit marking lifecycle correlation ids minted by the manager (for
/// reports that arrive with corr 0), keeping them disjoint from
/// process-minted ids when both appear in one merged stream.
const MGR_CORR_BIT: u64 = 1 << 63;

/// Failure starting or reaching the live management plane.
#[derive(Debug)]
pub enum LiveError {
    /// The manager is not reachable (queue disconnected, socket refused).
    ManagerUnavailable,
    /// The built-in rule base failed to parse.
    BadRules(String),
    /// The OS refused to spawn the manager thread.
    ThreadSpawn(std::io::Error),
    /// The OS refused the listening socket.
    Listen(std::io::Error),
    /// [`Driver::Reactor`] was requested on a platform without epoll
    /// (the reactor is Linux-only; use [`Driver::Threads`] elsewhere).
    ReactorUnsupported,
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::ManagerUnavailable => write!(f, "live host manager is not reachable"),
            LiveError::BadRules(e) => write!(f, "built-in rule base failed to parse: {e}"),
            LiveError::ThreadSpawn(e) => write!(f, "could not spawn manager thread: {e}"),
            LiveError::Listen(e) => write!(f, "could not bind manager socket: {e}"),
            LiveError::ReactorUnsupported => {
                write!(f, "the epoll reactor driver is only available on Linux")
            }
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::ThreadSpawn(e) | LiveError::Listen(e) => Some(e),
            _ => None,
        }
    }
}

/// Wall-clock microseconds since an origin.
#[derive(Debug, Clone, Copy)]
pub struct LiveClock {
    t0: Instant,
}

impl LiveClock {
    /// Clock starting now.
    pub fn new() -> Self {
        LiveClock { t0: Instant::now() }
    }

    /// Microseconds since the clock started.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

impl Default for LiveClock {
    fn default() -> Self {
        Self::new()
    }
}

/// When a batching [`LiveProcess`] flushes its coalesced reports:
/// whichever of the two triggers fires first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportBatchPolicy {
    /// Flush once this many reports are coalesced.
    pub max_msgs: usize,
    /// Flush once the oldest coalesced report has waited this long. The
    /// deadline is checked on the next report or instrumentation pass
    /// (the process owns no timer thread); callers with long send lulls
    /// use [`LiveProcess::poll_flush`].
    pub max_delay: Duration,
}

impl Default for ReportBatchPolicy {
    fn default() -> Self {
        ReportBatchPolicy {
            max_msgs: 16,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Coalescing state of a batching [`LiveProcess`].
struct ReportBatch {
    builder: BatchBuilder,
    policy: ReportBatchPolicy,
    oldest: Option<Instant>,
    /// Reusable frame buffer: the flush path allocates nothing in
    /// steady state.
    frame_buf: Vec<u8>,
}

/// An instrumented process in live mode: sensors + coordinator + a
/// transport to the host manager, as created by process initialisation.
pub struct LiveProcess {
    /// The process's sensors.
    pub sensors: SensorSet,
    /// The process's coordinator.
    pub coordinator: Coordinator,
    clock: LiveClock,
    transport: Box<dyn WireTransport>,
    batch: Option<ReportBatch>,
    reports_sent: u64,
    reports_dropped: u64,
    flush_deadline_hits: u64,
    /// Registry mirrors of the two counters above (noop until
    /// [`LiveProcess::set_telemetry`]). Uncontended relaxed atomics: the
    /// mirror adds nanoseconds to a path that already crossed a channel.
    sent_counter: Counter,
    dropped_counter: Counter,
    reconnect_counter: Counter,
    deadline_counter: Counter,
    reconnects_mirrored: u64,
}

impl LiveProcess {
    /// Full instrumented-process initialisation (the path measured by
    /// experiment E2): register with the Policy Agent, receive and load
    /// the applicable policies, configure sensor thresholds, and announce
    /// to the host manager over `transport`. The registration frame is
    /// installed as the transport's greeting, so a socket transport
    /// re-announces after every reconnect. Fails (instead of panicking)
    /// when the manager is not reachable — the caller decides whether to
    /// run unmanaged.
    pub fn start(
        registration: &Registration,
        repo: &Repository,
        agent: &mut PolicyAgent,
        mut transport: Box<dyn WireTransport>,
    ) -> Result<Self, LiveError> {
        let resolution = agent.register(repo, registration);
        let mut coordinator = Coordinator::new(registration.process.clone());
        for p in resolution.policies {
            coordinator.load_policy(p);
        }
        let sensors = SensorSet::video_standard();
        sensors.configure(coordinator.global_conditions());
        let hello = WireMsg::LiveRegister(LiveRegisterMsg {
            process: registration.process.clone(),
        })
        .encode_frame();
        transport.set_greeting(hello.clone());
        if !transport.try_send(&hello) {
            return Err(LiveError::ManagerUnavailable);
        }
        Ok(LiveProcess {
            sensors,
            coordinator,
            clock: LiveClock::new(),
            transport,
            batch: None,
            reports_sent: 0,
            reports_dropped: 0,
            flush_deadline_hits: 0,
            sent_counter: Counter::noop(),
            dropped_counter: Counter::noop(),
            reconnect_counter: Counter::noop(),
            deadline_counter: Counter::noop(),
            reconnects_mirrored: 0,
        })
    }

    /// Coalesce violation reports into batch frames: up to
    /// `policy.max_msgs` reports travel as one [`WireMsg::Batch`] frame
    /// and one transport send. Off by default (one frame per report, the
    /// original behaviour); under a violation storm batching trades up
    /// to `policy.max_delay` of added report latency for an N-fold cut
    /// in sends and manager wake-ups.
    pub fn enable_report_batching(&mut self, policy: ReportBatchPolicy) {
        self.batch = Some(ReportBatch {
            builder: BatchBuilder::new(),
            policy,
            oldest: None,
            frame_buf: Vec::new(),
        });
    }

    /// Mirror the report counters into a telemetry registry as
    /// `live.reports_sent` / `live.reports_dropped`, labelled with the
    /// process identity. Call once after `start`; existing counts are
    /// carried over.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        let label = self.coordinator.process().to_string();
        self.sent_counter = t.counter("live.reports_sent", &label);
        self.dropped_counter = t.counter("live.reports_dropped", &label);
        self.reconnect_counter = t.counter("live.reconnects", &label);
        self.deadline_counter = t.counter("live.flush.deadline_hits", &label);
        self.sent_counter.add(self.reports_sent);
        self.dropped_counter.add(self.reports_dropped);
        self.deadline_counter.add(self.flush_deadline_hits);
        self.reconnects_mirrored = 0;
        self.mirror_reconnects();
    }

    /// Push transport reconnects accumulated since the last mirror into
    /// the `live.reconnects` counter. Called from the send paths; cheap
    /// (two u64 reads) when nothing changed.
    fn mirror_reconnects(&mut self) {
        let now = self.transport.reconnects();
        if now > self.reconnects_mirrored {
            self.reconnect_counter.add(now - self.reconnects_mirrored);
            self.reconnects_mirrored = now;
        }
    }

    /// Best-effort violation delivery: a full queue (manager lagging) or
    /// a dead manager drops the report and counts it, rather than
    /// blocking or killing the instrumented process. Violations are
    /// re-detected on the next pass, so a drop costs latency, not
    /// correctness.
    pub fn report(&mut self, report: ViolationReport) {
        let msg = WireMsg::LiveViolation(report.to_wire());
        if let Some(b) = self.batch.as_mut() {
            if b.builder.is_empty() {
                b.oldest = Some(Instant::now());
            }
            b.builder.push(&msg);
            let full = b.builder.len() >= b.policy.max_msgs;
            let due = b.oldest.is_some_and(|t| t.elapsed() >= b.policy.max_delay);
            if full || due {
                self.flush_inner(due && !full);
            }
        } else {
            let frame = msg.encode_frame();
            if self.transport.try_send(&frame) {
                self.reports_sent += 1;
                self.sent_counter.inc();
            } else {
                self.reports_dropped += 1;
                self.dropped_counter.inc();
            }
        }
        self.mirror_reconnects();
    }

    /// Push coalesced reports to the transport now as one batch frame.
    /// No-op when batching is off or nothing is pending.
    pub fn flush_reports(&mut self) {
        self.flush_inner(false);
    }

    /// Flush coalesced reports whose deadline has passed — for callers
    /// with their own tick loop and long send lulls (the instrumentation
    /// passes and [`LiveProcess::sync`] already check).
    pub fn poll_flush(&mut self) {
        let due = self.batch.as_ref().is_some_and(|b| {
            !b.builder.is_empty() && b.oldest.is_some_and(|t| t.elapsed() >= b.policy.max_delay)
        });
        if due {
            self.flush_inner(true);
        }
    }

    fn flush_inner(&mut self, deadline_hit: bool) {
        let Some(b) = self.batch.as_mut() else {
            return;
        };
        if b.builder.is_empty() {
            return;
        }
        let n = b.builder.len() as u64;
        b.frame_buf.clear();
        b.builder.append_frame_to(&mut b.frame_buf);
        b.oldest = None;
        if deadline_hit {
            self.flush_deadline_hits += 1;
            self.deadline_counter.inc();
        }
        // The whole batch stands or falls with its one frame — the same
        // all-or-nothing the wire format promises on the decode side.
        if self.transport.try_send(&b.frame_buf) {
            self.reports_sent += n;
            self.sent_counter.add(n);
        } else {
            self.reports_dropped += n;
            self.dropped_counter.add(n);
        }
    }

    /// Reports coalesced but not yet flushed (zero with batching off).
    pub fn pending_reports(&self) -> usize {
        self.batch.as_ref().map_or(0, |b| b.builder.len())
    }

    /// Batch flushes forced by the deadline trigger rather than the
    /// size one (mirrored as `live.flush.deadline_hits`).
    pub fn flush_deadline_hits(&self) -> u64 {
        self.flush_deadline_hits
    }

    /// One pass through the instrumentation after a frame is displayed
    /// (the path measured by experiment E3): fps + jitter probes, alarm
    /// routing, and — only on a violation edge — action execution and a
    /// notification to the host manager. Returns the number of reports
    /// sent (0 on the happy path).
    pub fn frame_pass(&mut self) -> usize {
        let now = self.clock.now_us();
        let mut generated = 0;
        let mut alarms = Vec::new();
        if let Some(f) = self.sensors.fps() {
            alarms.extend(f.frame_displayed(now));
        }
        if let Some(j) = self.sensors.jitter() {
            alarms.extend(j.frame_displayed(now));
        }
        for alarm in &alarms {
            for pix in self.coordinator.on_alarm(alarm) {
                if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now) {
                    self.report(report);
                    generated += 1;
                }
            }
        }
        self.poll_flush();
        generated
    }

    /// Sample the communication buffer (Example 5's probe).
    pub fn buffer_pass(&mut self, buffer_bytes: u64) -> usize {
        let now = self.clock.now_us();
        let mut generated = 0;
        if let Some(b) = self.sensors.buffer() {
            for alarm in b.sample(buffer_bytes as f64, now) {
                for pix in self.coordinator.on_alarm(&alarm) {
                    if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now)
                    {
                        self.report(report);
                        generated += 1;
                    }
                }
            }
        }
        self.poll_flush();
        generated
    }

    /// Barrier through this process's own transport: `true` once the
    /// manager has processed everything this process sent before the
    /// call.
    pub fn sync(&mut self) -> bool {
        // The barrier covers everything reported before it: flush any
        // coalesced reports first so the ack really means "processed".
        self.flush_reports();
        let ok = self.transport.sync(SYNC_TIMEOUT);
        self.mirror_reconnects();
        ok
    }

    /// Successful transport reconnects after a lost connection (zero for
    /// the in-proc channel carrier).
    pub fn reconnects(&self) -> u64 {
        self.transport.reconnects()
    }

    /// Reports delivered to the manager so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Reports dropped because the manager's queue was full or the
    /// manager was gone (backpressure counter).
    pub fn reports_dropped(&self) -> u64 {
        self.reports_dropped
    }
}

/// Counters exposed by the live host manager.
#[derive(Debug, Default)]
pub struct LiveManagerStats {
    /// Distinct processes registered (re-registration is idempotent).
    pub registrations: AtomicU64,
    /// Violations received.
    pub violations: AtomicU64,
    /// Rules fired across all violations.
    pub rules_fired: AtomicU64,
    /// Net CPU-boost level decided (sum of adjust minus relax steps) —
    /// stands in for priocntl in live mode, where we will not actually
    /// renice the benchmark process.
    pub boost_level: AtomicI64,
    /// Frames received (any kind, before decode).
    pub frames: AtomicU64,
    /// Batch frames received (each carrying N coalesced messages).
    /// Mirrored as `wire.batch.frames`; the per-frame message counts
    /// land in the `wire.batch.msgs_per_frame` histogram.
    pub batch_frames: AtomicU64,
    /// Total frame bytes received.
    pub wire_bytes: AtomicU64,
    /// Frames that failed to decode, plus connections dropped for
    /// unreframeable streams. Mirrored to telemetry as
    /// `live.decode_errors`.
    pub decode_errors: AtomicU64,
    /// Telemetry subscribers currently attached (gone peers are pruned
    /// on the next publish that notices them).
    pub subscribers: AtomicU64,
    /// Telemetry batches queued to subscribers.
    pub telemetry_batches: AtomicU64,
    /// Telemetry batches lost to backpressure (drop-oldest on a slow
    /// subscriber) or chaos. Mirrored as `live.telemetry_dropped`.
    pub telemetry_dropped: AtomicU64,
    /// Publish ticks that were skipped outright because no subscriber
    /// was attached — the manager encoded nothing and allocated nothing.
    /// Mirrored as `live.telemetry.skipped_flushes`.
    pub skipped_flushes: AtomicU64,
}

/// Where a [`LiveHostManager`] accepts peers.
#[derive(Debug, Clone, Default)]
pub enum ListenSpec {
    /// In-proc only: peers connect with [`LiveHostManager::connect`].
    #[default]
    InProc,
    /// Also accept socket peers (TCP or Unix-domain) on this address.
    /// In-proc connects still work.
    Sock(SockAddr),
}

/// Which machinery serves socket peers of a [`LiveHostManager`]. Both
/// drivers run the same `qos-net` protocol machines and feed the same
/// manager queue, so rule firing is driver-independent; they differ only
/// in how peer I/O is multiplexed onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Driver {
    /// One blocking reader thread per accepted peer. Portable, simple,
    /// and fine up to a few hundred peers; the pre-reactor shape.
    #[default]
    Threads,
    /// The hand-rolled epoll reactor: every peer multiplexed onto a
    /// small worker pool with bounded per-peer write queues. Holds
    /// thousands of peers on ≤ 4 threads. Linux only — spawning with
    /// this driver elsewhere fails with [`LiveError::ReactorUnsupported`].
    Reactor,
}

/// Builder for a [`LiveHostManager`] — the one construction path for
/// every live-mode configuration (in-proc, thread-per-peer sockets, or
/// the epoll reactor). Obtained from [`LiveHostManager::builder`].
#[derive(Debug, Clone, Default)]
pub struct LiveBuilder {
    listen: ListenSpec,
    driver: Driver,
    workers: usize,
    telemetry: Option<Telemetry>,
    report_batch: Option<ReportBatchPolicy>,
    flush: Option<FlushPolicy>,
}

impl LiveBuilder {
    /// Where the manager accepts peers (default: in-proc only).
    pub fn listen(mut self, spec: ListenSpec) -> Self {
        self.listen = spec;
        self
    }

    /// How socket peers are served (default: [`Driver::Threads`]).
    /// Ignored for [`ListenSpec::InProc`], where there is no socket I/O
    /// to drive.
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Worker threads for [`Driver::Reactor`] (default 4, the C10k
    /// budget; clamped to ≥ 1). Meaningless for the threads driver.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Telemetry registry for the manager's own counters (mirrors
    /// `live.frames` / `live.wire_bytes` / `live.decode_errors` /
    /// `live.telemetry_dropped`, labelled `host-manager`, plus the
    /// reactor's `net.*` series under [`Driver::Reactor`]; lifecycle
    /// events land in the registry's event buffer and any attached
    /// flight recorder).
    pub fn telemetry(mut self, t: &Telemetry) -> Self {
        self.telemetry = Some(t.clone());
        self
    }

    /// Retune the manager's publish cadence from a report-batch shape:
    /// subscriber batches flush every `max_delay`, metrics snapshots at
    /// 5× that, and a staged-event pile of `max_msgs` forces an early
    /// cut. Default: the `TELEMETRY_*_INTERVAL` constants.
    pub fn report_batch(mut self, policy: ReportBatchPolicy) -> Self {
        self.report_batch = Some(policy);
        self
    }

    /// Bound each reactor peer's outbound queue from a flush shape: the
    /// queue holds roughly 16 flush batches (`16 × max_bytes`) before
    /// back-pressuring. Default: [`qos_net::OutQueueConfig::default`].
    pub fn flush(mut self, policy: FlushPolicy) -> Self {
        self.flush = Some(policy);
        self
    }

    /// Spawn the manager thread (and acceptor or reactor, if listening).
    /// The rule base is parsed before any thread starts, so a bad build
    /// fails here, in the caller, rather than panicking a detached
    /// thread.
    pub fn spawn(self) -> Result<LiveHostManager, LiveError> {
        let rules = parse_program(&host_rules_fair()).map_err(|e| LiveError::BadRules(e.0))?;
        let base = parse_program(&host_base_facts()).map_err(|e| LiveError::BadRules(e.0))?;
        let (tx, rx): (Sender<Inbound>, Receiver<Inbound>) = bounded(LIVE_QUEUE_CAPACITY);
        let stats = Arc::new(LiveManagerStats::default());

        let core_cfg = match self.report_batch {
            None => CoreConfig::default(),
            Some(p) => CoreConfig {
                publish: p.max_delay,
                metrics: p.max_delay * 5,
                batch_max_events: p.max_msgs.max(1),
            },
        };
        let thread_stats = Arc::clone(&stats);
        let thread_telemetry = self.telemetry.clone().unwrap_or_default();
        // Buggify state is thread-local; carry the spawner's config into
        // the manager thread so chaos runs fault the live plane too.
        let chaos = qos_buggify::config();
        let handle = std::thread::Builder::new()
            .name("qos-host-manager".into())
            .spawn(move || {
                if let Some(cfg) = chaos {
                    qos_buggify::adopt(cfg);
                }
                ManagerCore::new(thread_stats, thread_telemetry, rules, base, core_cfg).run(rx)
            })
            .map_err(LiveError::ThreadSpawn)?;

        let stop_accept = Arc::new(AtomicBool::new(false));
        #[cfg(target_os = "linux")]
        let mut reactor = None;
        let (acceptor, bound) = match self.listen {
            ListenSpec::InProc => (None, None),
            ListenSpec::Sock(addr) => {
                let listener = SockListener::bind(&addr).map_err(LiveError::Listen)?;
                let bound = listener.local_addr().map_err(LiveError::Listen)?;
                listener.set_nonblocking(true).map_err(LiveError::Listen)?;
                match self.driver {
                    Driver::Threads => {
                        let tx2 = tx.clone();
                        let stop2 = Arc::clone(&stop_accept);
                        let acceptor = std::thread::Builder::new()
                            .name("qos-hm-accept".into())
                            .spawn(move || accept_loop(listener, tx2, stop2))
                            .map_err(LiveError::ThreadSpawn)?;
                        (Some(acceptor), Some(bound))
                    }
                    #[cfg(target_os = "linux")]
                    Driver::Reactor => {
                        let mut out = OutQueueConfig::default();
                        if let Some(f) = self.flush {
                            out.max_bytes = f.max_bytes.saturating_mul(16).max(out.max_bytes);
                        }
                        let cfg = ReactorConfig {
                            workers: self.workers.max(1),
                            out,
                            telemetry: self.telemetry.clone(),
                            ..ReactorConfig::default()
                        };
                        let sink = Arc::new(MgrSink { tx: tx.clone() });
                        let r =
                            ReactorHandle::spawn(listener, sink, cfg).map_err(LiveError::Listen)?;
                        reactor = Some(r);
                        (None, Some(bound))
                    }
                    #[cfg(not(target_os = "linux"))]
                    Driver::Reactor => return Err(LiveError::ReactorUnsupported),
                }
            }
        };

        Ok(LiveHostManager {
            stats,
            handle: Some(handle),
            tx,
            acceptor,
            stop_accept,
            bound,
            #[cfg(target_os = "linux")]
            reactor,
        })
    }
}

/// A QoS Host Manager on its own thread, fed by an inbound frame queue.
/// Peers attach over the in-proc channel ([`LiveHostManager::connect`])
/// or, when built with [`ListenSpec::Sock`], over a real socket from
/// another OS process — served by whichever [`Driver`] the builder
/// picked.
pub struct LiveHostManager {
    /// Shared counters.
    pub stats: Arc<LiveManagerStats>,
    handle: Option<std::thread::JoinHandle<()>>,
    tx: Sender<Inbound>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    stop_accept: Arc<AtomicBool>,
    bound: Option<SockAddr>,
    #[cfg(target_os = "linux")]
    reactor: Option<ReactorHandle>,
}

impl LiveHostManager {
    /// Start building a manager: pick a listen spec, a [`Driver`], and
    /// optional telemetry/cadence knobs, then [`LiveBuilder::spawn`].
    pub fn builder() -> LiveBuilder {
        LiveBuilder {
            workers: 4,
            ..LiveBuilder::default()
        }
    }

    /// Spawn the manager thread with the default host rules, in-proc
    /// only.
    #[deprecated(since = "0.1.0", note = "use LiveHostManager::builder().spawn()")]
    pub fn spawn() -> Result<Self, LiveError> {
        Self::builder().spawn()
    }

    /// Spawn with an explicit listen spec and optional telemetry
    /// registry.
    #[deprecated(
        since = "0.1.0",
        note = "use LiveHostManager::builder().listen(spec).telemetry(t).spawn()"
    )]
    pub fn spawn_with(spec: ListenSpec, telemetry: Option<&Telemetry>) -> Result<Self, LiveError> {
        let mut b = Self::builder().listen(spec);
        if let Some(t) = telemetry {
            b = b.telemetry(t);
        }
        b.spawn()
    }

    /// The reactor's shared `net.*` counters, when this manager runs
    /// [`Driver::Reactor`] (`None` for in-proc or thread-driver
    /// managers).
    #[cfg(target_os = "linux")]
    pub fn net_stats(&self) -> Option<Arc<NetStats>> {
        self.reactor.as_ref().map(|r| r.stats())
    }

    /// An in-proc transport into this manager, for [`LiveProcess::start`]
    /// (and anything else that wants to inject frames).
    pub fn connect(&self) -> Box<dyn WireTransport> {
        Box::new(ChannelTransport::new(self.tx.clone()))
    }

    /// Subscribe to this manager's telemetry stream in-proc: encoded
    /// `TelemetryBatch` frames arrive on the returned channel (decode
    /// with [`WireMsg::decode_frame`]). A receiver that stops draining
    /// backs up into the manager's bounded drop-oldest queue —
    /// `live.telemetry_dropped` counts what it missed — and a dropped
    /// receiver is pruned on the next publish.
    pub fn subscribe(
        &self,
        subscriber: &str,
        want_events: bool,
        want_metrics: bool,
    ) -> Receiver<Vec<u8>> {
        let (btx, brx) = bounded(SUBSCRIBER_QUEUE_CAPACITY);
        let frame = WireMsg::TelemetrySubscribe(TelemetrySubscribeMsg {
            subscriber: subscriber.to_string(),
            want_events,
            want_metrics,
        })
        .encode_frame();
        let _ = self.tx.send(Inbound::Frame {
            bytes: frame,
            reply: Some(ReplySink::Chan(btx)),
        });
        brx
    }

    /// The socket address peers should dial, if listening (resolves TCP
    /// port 0 to the real port).
    pub fn local_addr(&self) -> Option<SockAddr> {
        self.bound.clone()
    }

    /// Wait until everything queued so far has been processed. Returns
    /// `false` if the manager thread is gone or takes more than
    /// [`SYNC_TIMEOUT`] (it never legitimately does).
    pub fn sync(&self) -> bool {
        ChannelTransport::new(self.tx.clone()).sync(SYNC_TIMEOUT)
    }

    /// Idempotent stop: the first call delivers Shutdown and joins; any
    /// repeat (including the Drop after an explicit `shutdown`) is a
    /// no-op because the handle is already gone.
    fn stop(&mut self) {
        self.stop_accept.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The reactor goes down before the manager thread: a worker
        // blocked on the manager's full inbound queue only drains while
        // the manager still consumes.
        #[cfg(target_os = "linux")]
        if let Some(r) = self.reactor.take() {
            r.shutdown();
        }
        if let Some(h) = self.handle.take() {
            let _ = self.tx.send(Inbound::Shutdown);
            let _ = h.join();
        }
        if let Some(SockAddr::Uds(p)) = self.bound.take() {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Stop the thread and wait for it.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for LiveHostManager {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One attached telemetry subscriber: its sink, its filter, and its
/// bounded queue of encoded batches awaiting delivery.
struct Subscriber {
    sink: ReplySink,
    want_events: bool,
    want_metrics: bool,
    pending: VecDeque<Vec<u8>>,
    seq: u64,
    gone: bool,
}

/// Queue a batch on a subscriber, dropping its *oldest* pending batch
/// when the budget is exceeded. Returns `true` when something was
/// dropped — the caller counts it; the subscriber sees a gap in `seq`.
fn enqueue_batch(sub: &mut Subscriber, frame: Vec<u8>) -> bool {
    let dropped = sub.pending.len() >= SUBSCRIBER_QUEUE_CAPACITY;
    if dropped {
        sub.pending.pop_front();
    }
    sub.pending.push_back(frame);
    dropped
}

/// Publish-cadence knobs of the manager loop, derived by the builder
/// from its defaults or a [`ReportBatchPolicy`] override.
#[derive(Debug, Clone, Copy)]
struct CoreConfig {
    /// Subscriber-batch publish interval (also the idle tick).
    publish: Duration,
    /// Minimum spacing of metrics snapshots.
    metrics: Duration,
    /// Staged-event count that forces an early publish.
    batch_max_events: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            publish: TELEMETRY_PUBLISH_INTERVAL,
            metrics: TELEMETRY_METRICS_INTERVAL,
            batch_max_events: BATCH_MAX_EVENTS,
        }
    }
}

/// The manager thread's state: decode frames centrally (so malformed
/// input is one counted statistic), run the rule engine on violations,
/// ack syncs, and publish lifecycle events + metrics snapshots to
/// telemetry subscribers on a fixed cadence.
struct ManagerCore {
    stats: Arc<LiveManagerStats>,
    telemetry: Telemetry,
    cfg: CoreConfig,
    clock: LiveClock,
    frames_c: Counter,
    batch_frames_c: Counter,
    batch_hist: Histogram,
    bytes_c: Counter,
    decode_c: Counter,
    tdropped_c: Counter,
    skipped_c: Counter,
    engine: Engine,
    registered: HashSet<String>,
    subs: Vec<Subscriber>,
    staged: Vec<TraceEvent>,
    next_corr: u64,
    last_publish: Instant,
    last_metrics: Option<Instant>,
}

impl ManagerCore {
    fn new(
        stats: Arc<LiveManagerStats>,
        telemetry: Telemetry,
        rules: qos_inference::clips::Program,
        base: qos_inference::clips::Program,
        cfg: CoreConfig,
    ) -> Self {
        let mut engine = Engine::new();
        for r in rules.rules {
            engine.add_rule(r);
        }
        for f in base.facts {
            engine.assert_fact(f);
        }
        let frames_c = telemetry.counter("live.frames", "host-manager");
        let batch_frames_c = telemetry.counter("wire.batch.frames", "host-manager");
        let batch_hist = telemetry.histogram("wire.batch.msgs_per_frame", "host-manager");
        let bytes_c = telemetry.counter("live.wire_bytes", "host-manager");
        let decode_c = telemetry.counter("live.decode_errors", "host-manager");
        let tdropped_c = telemetry.counter("live.telemetry_dropped", "host-manager");
        let skipped_c = telemetry.counter("live.telemetry.skipped_flushes", "host-manager");
        ManagerCore {
            stats,
            telemetry,
            cfg,
            clock: LiveClock::new(),
            frames_c,
            batch_frames_c,
            batch_hist,
            bytes_c,
            decode_c,
            tdropped_c,
            skipped_c,
            engine,
            registered: HashSet::new(),
            subs: Vec::new(),
            staged: Vec::new(),
            next_corr: 0,
            last_publish: Instant::now(),
            last_metrics: None,
        }
    }

    /// The manager loop. The receive timeout doubles as the publish
    /// tick: with traffic, `pump` runs after every message (publish
    /// still gated on the interval); idle, it runs every interval.
    fn run(mut self, rx: Receiver<Inbound>) {
        loop {
            match rx.recv_timeout(self.cfg.publish) {
                Ok(Inbound::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Ok(Inbound::StreamCorrupt) => {
                    self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.decode_c.inc();
                }
                Ok(Inbound::Frame { bytes, reply }) => self.handle_frame(bytes, reply),
                Err(RecvTimeoutError::Timeout) => {}
            }
            self.pump();
        }
    }

    fn handle_frame(&mut self, bytes: Vec<u8>, reply: Option<ReplySink>) {
        self.stats.frames.fetch_add(1, Ordering::Relaxed);
        self.stats
            .wire_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.frames_c.inc();
        self.bytes_c.add(bytes.len() as u64);
        // The borrowed surface validates the frame without allocating;
        // only messages that are actually handled get materialised.
        match WireMsgRef::decode_frame(&bytes) {
            Err(_) => {
                self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                self.decode_c.inc();
            }
            Ok(WireMsgRef::Batch(batch)) => {
                self.stats.batch_frames.fetch_add(1, Ordering::Relaxed);
                self.batch_frames_c.inc();
                self.batch_hist.record(batch.len() as u64);
                for m in &batch {
                    let msg = m.to_owned_msg();
                    // Chaos: redeliver a coalesced message, as a
                    // retrying peer's resent batch would.
                    if qos_buggify::buggify!("live.mgr.dup_frame") {
                        self.handle_msg(msg.clone(), None);
                    }
                    self.handle_msg(msg, reply.clone());
                }
            }
            Ok(view) => {
                let msg = view.to_owned_msg();
                // Chaos: redeliver the frame to the handler, as a
                // retrying peer would. Registration must stay
                // idempotent and sync acks harmless under this.
                if qos_buggify::buggify!("live.mgr.dup_frame") {
                    self.handle_msg(msg.clone(), None);
                }
                self.handle_msg(msg, reply)
            }
        }
    }

    /// Record a lifecycle event in the manager's own telemetry (event
    /// buffer + attached recorder) and stage it for subscribers.
    fn emit(&mut self, ev: TraceEvent) {
        if self.subs.is_empty() {
            self.telemetry.event(|| ev);
        } else {
            self.telemetry.event(|| ev.clone());
            self.staged.push(ev);
        }
    }

    /// A correlation id for a report that arrived without one (the
    /// common case: the process side ran without telemetry). The high
    /// bit keeps manager-minted ids disjoint from process-minted ones.
    fn mint_corr(&mut self) -> u64 {
        self.next_corr += 1;
        MGR_CORR_BIT | self.next_corr
    }

    fn handle_msg(&mut self, msg: WireMsg, reply: Option<ReplySink>) {
        match msg {
            // At-least-once registration (retries, reconnect greetings):
            // only the first sighting of a process id counts.
            WireMsg::LiveRegister(LiveRegisterMsg { process })
                if self.registered.insert(process.clone()) =>
            {
                self.stats.registrations.fetch_add(1, Ordering::Relaxed);
                self.telemetry.counter("live.registered", &process).inc();
                let at_us = self.clock.now_us();
                self.emit(TraceEvent {
                    at_us,
                    corr: 0,
                    stage: Stage::Mark,
                    component: process,
                    name: "live-register".into(),
                    fields: Vec::new(),
                });
            }
            WireMsg::LiveViolation(report) => {
                self.stats.violations.fetch_add(1, Ordering::Relaxed);
                let LiveViolationMsg {
                    policy,
                    process,
                    corr,
                    readings,
                    ..
                } = report;
                // Timestamps are the *manager's* clock throughout: the
                // reporting process's clock has a different origin, so
                // its `at_us` would scramble per-stage latencies.
                let corr = if corr != 0 { corr } else { self.mint_corr() };
                let now = self.clock.now_us();
                self.emit(TraceEvent {
                    at_us: now,
                    corr,
                    stage: Stage::Detect,
                    component: process.clone(),
                    name: policy.clone(),
                    fields: readings.clone(),
                });
                self.emit(TraceEvent {
                    at_us: now,
                    corr,
                    stage: Stage::Report,
                    component: process.clone(),
                    name: policy.clone(),
                    fields: Vec::new(),
                });
                let fps = readings.first().map(|&(_, v)| v).unwrap_or(0.0);
                let buffer = readings
                    .iter()
                    .find(|(a, _)| a == "buffer_size")
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                self.engine.assert_fact(
                    Fact::new("violation")
                        .with("pid", Value::str(&process))
                        .with("fps", fps)
                        .with("lo", 23.0)
                        .with("hi", 27.0)
                        .with("buffer", buffer)
                        .with("weight", 1.0)
                        .with("has-upstream", false),
                );
                let run = self.engine.run(100);
                self.stats
                    .rules_fired
                    .fetch_add(run.fired, Ordering::Relaxed);
                self.emit(TraceEvent {
                    at_us: self.clock.now_us(),
                    corr,
                    stage: Stage::Diagnose,
                    component: "host-manager".into(),
                    name: policy.clone(),
                    fields: vec![("fired".into(), run.fired as f64)],
                });
                for inv in self.engine.take_invocations() {
                    let step: i64 = match inv.command.as_str() {
                        "adjust-cpu" => 10,
                        "relax-cpu" => -5,
                        _ => 0,
                    };
                    if step != 0 {
                        self.stats.boost_level.fetch_add(step, Ordering::Relaxed);
                    }
                    self.emit(TraceEvent {
                        at_us: self.clock.now_us(),
                        corr,
                        stage: Stage::Adapt,
                        component: "host-manager".into(),
                        name: inv.command,
                        fields: vec![("step".into(), step as f64)],
                    });
                }
            }
            WireMsg::TelemetrySubscribe(sub) => {
                // A subscription needs a way back to the peer; the
                // chaos-duplicated redelivery arrives with no sink and
                // is ignored, keeping subscription effectively
                // idempotent under at-least-once delivery.
                if let Some(sink) = reply {
                    let at_us = self.clock.now_us();
                    let name = sub.subscriber;
                    self.telemetry.event(|| TraceEvent {
                        at_us,
                        corr: 0,
                        stage: Stage::Mark,
                        component: name,
                        name: "telemetry-subscribe".into(),
                        fields: Vec::new(),
                    });
                    self.subs.push(Subscriber {
                        sink,
                        want_events: sub.want_events,
                        want_metrics: sub.want_metrics,
                        pending: VecDeque::new(),
                        seq: 0,
                        gone: false,
                    });
                    self.stats
                        .subscribers
                        .store(self.subs.len() as u64, Ordering::Relaxed);
                    // Snapshot promptly for the newcomer instead of
                    // waiting out the metrics cadence.
                    self.last_metrics = None;
                }
            }
            WireMsg::SyncReq { token } => {
                // Everything queued before this frame has been handled by
                // now (single consumer, FIFO queue): ack it.
                if let Some(sink) = reply {
                    let ack = WireMsg::SyncAck { token }.encode_frame();
                    let _ = sink.send(&ack);
                }
            }
            // Batches are normally unpacked (and counted) in
            // handle_frame; one arriving here is still unpacked so the
            // coalesced messages are never silently lost.
            WireMsg::Batch(b) => {
                for m in b.msgs {
                    self.handle_msg(m, reply.clone());
                }
            }
            // A polite goodbye needs no action; anything else the sim
            // plane speaks is not meaningful to the live manager and is
            // ignored (forward compatibility: new peers may send kinds
            // we act on later).
            _ => {}
        }
    }

    /// Deliver what's deliverable and, when the cadence (or a full
    /// staging buffer) says so, cut a new batch for every subscriber.
    fn pump(&mut self) {
        self.flush_subs();
        if self.subs.is_empty() {
            // Nobody listening: staging anything would only grow a
            // buffer no one drains, and encoding a batch would be pure
            // allocation churn. Count the publish tick we skipped so
            // `qosctl tail`-shaped workloads are observable as cheap.
            self.staged.clear();
            if self.last_publish.elapsed() >= self.cfg.publish {
                self.last_publish = Instant::now();
                self.stats.skipped_flushes.fetch_add(1, Ordering::Relaxed);
                self.skipped_c.inc();
            }
            return;
        }
        let interval_due = self.last_publish.elapsed() >= self.cfg.publish;
        let metrics_stale = match self.last_metrics {
            None => true,
            Some(t) => t.elapsed() >= self.cfg.metrics,
        };
        let metrics_due = metrics_stale && self.subs.iter().any(|s| s.want_metrics);
        let force = self.staged.len() >= self.cfg.batch_max_events;
        if !(force || (interval_due && (!self.staged.is_empty() || metrics_due))) {
            return;
        }
        self.last_publish = Instant::now();
        let events = std::mem::take(&mut self.staged);
        let metrics = if metrics_due {
            self.last_metrics = Some(Instant::now());
            Some((self.clock.now_us(), self.telemetry.snapshot()))
        } else {
            None
        };
        for sub in &mut self.subs {
            let evs: Vec<TraceEvent> = if sub.want_events {
                events.clone()
            } else {
                Vec::new()
            };
            let met = if sub.want_metrics {
                metrics.clone()
            } else {
                None
            };
            if evs.is_empty() && met.is_none() {
                continue;
            }
            sub.seq += 1;
            let frame = WireMsg::TelemetryBatch(TelemetryBatchMsg {
                seq: sub.seq,
                source: "host-manager".into(),
                events: evs,
                metrics: met,
            })
            .encode_frame();
            // Chaos: the publisher loses a whole batch — subscribers
            // must survive seq gaps, and the loss must be counted.
            let chaos_drop = qos_buggify::buggify!("live.telemetry.drop_batch");
            let dropped = if chaos_drop {
                true
            } else {
                let overflowed = enqueue_batch(sub, frame);
                self.stats.telemetry_batches.fetch_add(1, Ordering::Relaxed);
                overflowed
            };
            if dropped {
                self.stats.telemetry_dropped.fetch_add(1, Ordering::Relaxed);
                self.tdropped_c.inc();
            }
        }
        self.flush_subs();
    }

    /// Drain each subscriber's pending queue as far as its sink allows;
    /// forget peers whose sink is gone for good.
    fn flush_subs(&mut self) {
        let mut lost = false;
        for sub in &mut self.subs {
            while let Some(front) = sub.pending.front() {
                match sub.sink.try_send_frame(front) {
                    SinkSend::Sent => {
                        sub.pending.pop_front();
                    }
                    SinkSend::Full => break,
                    SinkSend::Gone => {
                        sub.gone = true;
                        lost = true;
                        break;
                    }
                }
            }
        }
        if lost {
            self.subs.retain(|s| !s.gone);
            self.stats
                .subscribers
                .store(self.subs.len() as u64, Ordering::Relaxed);
        }
    }
}

/// The reactor's delivery target: every complete frame from every peer
/// lands on the manager's inbound queue, tagged with a [`PeerSender`]
/// reply sink so sync acks and telemetry batches ride back through the
/// reactor's bounded write queues. The blocking `send` is deliberate —
/// a full manager queue back-pressures the reactor worker (and through
/// it the peer's socket) instead of dropping frames.
#[cfg(target_os = "linux")]
struct MgrSink {
    tx: Sender<Inbound>,
}

#[cfg(target_os = "linux")]
impl EventSink for MgrSink {
    fn on_frame(&self, bytes: Vec<u8>, peer: &PeerSender) -> bool {
        self.tx
            .send(Inbound::Frame {
                bytes,
                reply: Some(ReplySink::Net(peer.clone())),
            })
            .is_ok()
    }

    fn on_corrupt(&self) {
        let _ = self.tx.send(Inbound::StreamCorrupt);
    }
}

/// Accept loop for socket mode: non-blocking accept + stop-flag poll, so
/// shutdown never hangs in `accept(2)`. Each connection gets a reader
/// thread that reframes the byte stream and forwards raw frames to the
/// manager queue; replies (sync acks) go back over the same connection.
fn accept_loop(listener: SockListener, tx: Sender<Inbound>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let tx = tx.clone();
                let conn = std::thread::Builder::new()
                    .name("qos-hm-conn".into())
                    .spawn(move || {
                        conn_loop(stream, tx);
                    });
                // A failed thread spawn drops the connection; the peer's
                // reconnect machinery will try again.
                drop(conn);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Per-connection reader: split the stream into header-validated raw
/// frames (no payload decode here — that is the manager thread's job, so
/// decode errors are counted in one place). Exits when the peer closes,
/// the stream corrupts, or the manager is gone.
fn conn_loop(stream: crate::transport::SockStream, tx: Sender<Inbound>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(parking_lot::Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    // The same sans-io reassembly machine the reactor driver runs — the
    // thread driver is just a different pump around it.
    let mut pr = PeerReader::new();
    let mut chunk = [0u8; 4096];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) | Err(_) => return, // peer gone
            Ok(n) => pr.on_bytes(&chunk[..n]),
        }
        loop {
            match pr.next_frame() {
                Ok(Some(bytes)) => {
                    if tx
                        .send(Inbound::Frame {
                            bytes,
                            reply: Some(ReplySink::Sock(Arc::clone(&writer))),
                        })
                        .is_err()
                    {
                        return; // manager gone
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Unreframeable stream: there is no way to find the
                    // next frame boundary after a corrupt header. Count
                    // and drop the connection; the peer reconnects.
                    let _ = tx.send(Inbound::StreamCorrupt);
                    reader.shutdown();
                    return;
                }
            }
        }
    }
}

/// Build the standard video repository + agent used by live tests and the
/// overhead benchmarks: the information model plus the paper's Example 1
/// policy.
pub fn standard_live_repo() -> (Repository, PolicyAgent) {
    let (model, _, _) = qos_policy::model::video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).expect("fresh repository");
    repo.store_policy(&StoredPolicy {
        name: "NotifyQoSViolation".into(),
        application: "VideoPlayback".into(),
        executable: "VideoApplication".into(),
        role: "*".into(),
        source: "oblig NotifyQoSViolation { \
                 subject (...)/VideoApplication/qosl_coordinator \
                 target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager \
                 on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25) \
                 do fps_sensor->read(out frame_rate); \
                    jitter_sensor->read(out jitter_rate); \
                    buffer_sensor->read(out buffer_size); \
                    (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size); }"
            .into(),
        enabled: true,
    })
    .expect("fresh repository");
    (repo, PolicyAgent::new())
}

/// Everything a live-mode embedder needs, in one import: the manager
/// builder and its knobs, the process-side instrumentation entry point,
/// the transport surface (socket, channel, tap), and the wire-level
/// policies that shape batching, flushing, and reconnects.
///
/// ```no_run
/// use qos_manager::live::prelude::*;
/// let mgr = LiveHostManager::builder()
///     .listen(ListenSpec::Sock(SockAddr::Tcp("127.0.0.1:0".into())))
///     .driver(Driver::Reactor)
///     .spawn()
///     .expect("spawn manager");
/// let transport = SocketTransport::builder(mgr.local_addr().unwrap())
///     .flush(FlushPolicy::default())
///     .reconnect(ReconnectPolicy::default())
///     .connect()
///     .expect("dial manager");
/// # drop(transport);
/// ```
pub mod prelude {
    pub use super::{
        standard_live_repo, Driver, ListenSpec, LiveBuilder, LiveClock, LiveError, LiveHostManager,
        LiveManagerStats, LiveProcess, ReportBatchPolicy, SUBSCRIBER_QUEUE_CAPACITY, SYNC_TIMEOUT,
        TELEMETRY_METRICS_INTERVAL, TELEMETRY_PUBLISH_INTERVAL,
    };
    pub use crate::transport::{
        ChannelTransport, FlushPolicy, ReconnectPolicy, SockAddr, SocketTransport,
        SocketTransportBuilder, TelemetryTap, WireTransport,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{SocketTransport, TelemetryTap};

    fn registration() -> Registration {
        Registration {
            process: "live:p1".into(),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        }
    }

    fn force_violation_reports(p: &mut LiveProcess) -> usize {
        // Drive the fps sensor below 23 with manual timestamps: frames
        // 200 ms apart -> 5 fps.
        let fps = p.sensors.fps().unwrap();
        let mut now = 0u64;
        let mut alarms = Vec::new();
        for _ in 0..20 {
            now += 200_000;
            alarms.extend(fps.frame_displayed(now));
        }
        let mut generated = 0;
        for a in &alarms {
            for pix in p.coordinator.on_alarm(a) {
                if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                    p.report(r);
                    generated += 1;
                }
            }
        }
        generated
    }

    fn temp_sock(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        dir.join(format!("qos-live-{}-{name}.sock", std::process::id()))
    }

    #[test]
    fn live_init_registers_and_loads_policies() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        assert_eq!(p.coordinator.policy_count(), 1);
        assert_eq!(p.coordinator.global_conditions().len(), 3);
        assert!(mgr.sync(), "manager drains its queue");
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        assert!(mgr.stats.frames.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.wire_bytes.load(Ordering::Relaxed) > 0);
        mgr.shutdown();
    }

    #[test]
    fn registration_is_idempotent() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        // The same process id registering repeatedly (at-least-once
        // delivery, or a restart-and-re-register) counts once.
        let _p1 = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect()).unwrap();
        let _p2 = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect()).unwrap();
        let hello = WireMsg::LiveRegister(LiveRegisterMsg {
            process: "live:p1".into(),
        })
        .encode_frame();
        assert!(mgr.connect().try_send(&hello));
        assert!(mgr.sync());
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        mgr.shutdown();
    }

    #[test]
    fn start_fails_cleanly_when_manager_is_gone() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let t = mgr.connect();
        mgr.shutdown();
        let err = LiveProcess::start(&registration(), &repo, &mut agent, t);
        assert!(matches!(err, Err(LiveError::ManagerUnavailable)));
    }

    #[test]
    fn happy_path_sends_no_reports() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        // Prime the fps window at a healthy rate using manual timestamps
        // via the sensor directly (the live pass uses wall time, which is
        // effectively instantaneous here — the fps will look enormous,
        // exceeding the 27 upper bound, so pre-check with buffer only).
        for _ in 0..5 {
            assert_eq!(p.buffer_pass(100), 0, "healthy buffer, no reports");
        }
        assert_eq!(p.reports_sent(), 0);
        assert_eq!(p.reports_dropped(), 0);
        mgr.shutdown();
    }

    #[test]
    fn violation_reaches_manager_and_fires_rules() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        let reports = force_violation_reports(&mut p);
        assert!(reports >= 1, "fps collapse must notify");
        assert!(mgr.sync(), "manager drains its queue");
        assert!(mgr.stats.violations.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
        mgr.shutdown();
    }

    #[test]
    fn batched_reports_coalesce_and_reach_manager_once() {
        let (repo, mut agent) = standard_live_repo();
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::builder().telemetry(&t).spawn().unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        p.enable_report_batching(ReportBatchPolicy {
            max_msgs: 64, // size trigger never fires in this test
            max_delay: Duration::from_secs(60),
        });
        let generated = force_violation_reports(&mut p) as u64;
        assert!(generated >= 1);
        assert_eq!(
            p.pending_reports() as u64,
            generated,
            "reports must coalesce, not send eagerly"
        );
        assert_eq!(p.reports_sent(), 0);
        // sync() flushes the coalesced batch before the barrier.
        assert!(p.sync());
        assert_eq!(p.pending_reports(), 0);
        assert_eq!(p.reports_sent(), generated);
        assert_eq!(mgr.stats.violations.load(Ordering::Relaxed), generated);
        assert_eq!(mgr.stats.batch_frames.load(Ordering::Relaxed), 1);
        if t.is_enabled() {
            assert_eq!(t.counter_value("wire.batch.frames", "host-manager"), 1);
        }
        mgr.shutdown();
    }

    #[test]
    fn batch_deadline_flush_is_counted() {
        let (repo, mut agent) = standard_live_repo();
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        if t.is_enabled() {
            p.set_telemetry(&t);
        }
        p.enable_report_batching(ReportBatchPolicy {
            max_msgs: 1024,
            max_delay: Duration::from_millis(1),
        });
        let generated = force_violation_reports(&mut p) as u64;
        assert!(generated >= 1);
        std::thread::sleep(Duration::from_millis(5));
        p.poll_flush();
        assert_eq!(p.pending_reports(), 0, "deadline must flush");
        assert_eq!(p.flush_deadline_hits(), 1);
        assert_eq!(p.reports_sent(), generated);
        if t.is_enabled() {
            assert_eq!(t.counter_value("live.flush.deadline_hits", "live:p1"), 1);
        }
        assert!(mgr.sync());
        assert_eq!(mgr.stats.violations.load(Ordering::Relaxed), generated);
        mgr.shutdown();
    }

    #[test]
    fn dropped_reports_are_counted_not_fatal() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        mgr.shutdown();
        // Manager gone: a violation pass must neither panic nor hang.
        let generated = force_violation_reports(&mut p);
        assert!(generated >= 1);
        assert_eq!(p.reports_sent(), 0);
        assert_eq!(p.reports_dropped(), generated as u64);
    }

    #[test]
    fn dropped_reports_mirror_into_registry() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        let t = Telemetry::enabled();
        if !t.is_enabled() {
            // telemetry-off build: nothing to mirror, by design.
            mgr.shutdown();
            return;
        }
        p.set_telemetry(&t);
        mgr.shutdown();
        let generated = force_violation_reports(&mut p);
        assert!(generated >= 1);
        assert!(p.reports_dropped() >= 1);
        assert_eq!(
            t.counter_value("live.reports_dropped", "live:p1"),
            p.reports_dropped()
        );
        assert_eq!(t.counter_value("live.reports_sent", "live:p1"), 0);
    }

    #[test]
    fn shutdown_is_idempotent_with_drop() {
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let mut t = mgr.connect();
        // `shutdown` consumes self and Drop runs right after it — the
        // second stop() must be a no-op, not a hang or double-join.
        mgr.shutdown();
        assert!(
            !t.try_send(&WireMsg::Bye.encode_frame()),
            "thread gone, channel disconnected"
        );
    }

    #[test]
    fn malformed_frames_count_as_decode_errors_not_panics() {
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::builder().telemetry(&t).spawn().unwrap();
        // A frame whose header is valid but whose body is garbage for
        // its kind: mangle a real frame's payload.
        let mut frame = WireMsg::LiveRegister(LiveRegisterMsg {
            process: "x".into(),
        })
        .encode_frame();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        frame[8] = 0xff; // string length now nonsense
        assert!(mgr.connect().try_send(&frame));
        assert!(mgr.sync());
        assert_eq!(mgr.stats.decode_errors.load(Ordering::Relaxed), 1);
        if t.is_enabled() {
            assert_eq!(t.counter_value("live.decode_errors", "host-manager"), 1);
        }
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 0);
        mgr.shutdown();
    }

    #[test]
    fn socket_mode_round_trip_over_uds() {
        let path = temp_sock("roundtrip");
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
            .spawn()
            .expect("spawn socket manager");
        let addr = mgr.local_addr().expect("bound");

        let (repo, mut agent) = standard_live_repo();
        let sock = SocketTransport::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, Box::new(sock))
            .expect("manager reachable over UDS");
        let reports = force_violation_reports(&mut p);
        assert!(reports >= 1);
        assert!(p.sync(), "socket sync barrier");
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        assert!(mgr.stats.violations.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
        mgr.shutdown();
        assert!(!path.exists(), "socket file cleaned up on shutdown");
    }

    #[test]
    fn socket_mode_works_over_tcp_too() {
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Tcp("127.0.0.1:0".into())))
            .spawn()
            .expect("spawn tcp manager");
        let addr = mgr.local_addr().expect("bound");
        assert!(matches!(addr, SockAddr::Tcp(ref a) if !a.ends_with(":0")));

        let (repo, mut agent) = standard_live_repo();
        let sock = SocketTransport::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, Box::new(sock))
            .expect("manager reachable over TCP");
        assert!(p.sync());
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        mgr.shutdown();
    }

    #[test]
    fn subscriber_streams_lifecycle_events_and_metrics() {
        let (repo, mut agent) = standard_live_repo();
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::builder().telemetry(&t).spawn().unwrap();
        let rx = mgr.subscribe("test-tap", true, true);
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        assert!(force_violation_reports(&mut p) >= 1);
        assert!(mgr.sync());

        let want = [Stage::Detect, Stage::Report, Stage::Diagnose, Stage::Adapt];
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut events = Vec::new();
        let mut saw_metrics = false;
        let mut last_seq = 0;
        while Instant::now() < deadline {
            if let Ok(frame) = rx.recv_timeout(Duration::from_millis(200)) {
                let msg = WireMsg::decode_frame(&frame).expect("well-formed batch");
                let WireMsg::TelemetryBatch(b) = msg else {
                    panic!("subscriber channel carries only batches");
                };
                assert!(b.seq > last_seq, "per-subscriber seq must increase");
                last_seq = b.seq;
                assert_eq!(b.source, "host-manager");
                saw_metrics |= b.metrics.is_some();
                events.extend(b.events);
            }
            let all = want.iter().all(|s| events.iter().any(|e| e.stage == *s));
            if all && saw_metrics {
                break;
            }
        }
        for s in want {
            assert!(
                events.iter().any(|e| e.stage == s),
                "stream never carried stage {s:?}"
            );
        }
        assert!(saw_metrics, "stream never carried a metrics snapshot");
        // The stages of one violation share a manager-minted corr (the
        // process side ran without telemetry, so reports carried 0).
        let corr = events
            .iter()
            .find(|e| e.stage == Stage::Detect)
            .unwrap()
            .corr;
        assert_ne!(corr, 0);
        assert!(events
            .iter()
            .any(|e| e.stage == Stage::Adapt && e.corr == corr));
        assert!(mgr.stats.telemetry_batches.load(Ordering::Relaxed) >= 1);
        if t.is_enabled() {
            // The manager's own telemetry saw the same lifecycle stages.
            let local = t.events();
            for s in want {
                assert!(local.iter().any(|e| e.stage == s));
            }
        }
        mgr.shutdown();
    }

    #[test]
    fn departed_subscriber_is_pruned() {
        let mgr = LiveHostManager::builder().spawn().expect("spawn manager");
        let rx = mgr.subscribe("short-lived", true, true);
        assert!(mgr.sync());
        assert_eq!(mgr.stats.subscribers.load(Ordering::Relaxed), 1);
        drop(rx);
        // The next metrics publish hits the dead channel and prunes it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while mgr.stats.subscribers.load(Ordering::Relaxed) != 0 {
            assert!(Instant::now() < deadline, "dead subscriber never pruned");
            std::thread::sleep(Duration::from_millis(20));
        }
        mgr.shutdown();
    }

    #[test]
    fn backpressure_drops_oldest_batch() {
        // Unit-level: the drop-oldest queue itself (driving >128 real
        // batches through the publish cadence would take minutes).
        let (btx, _brx) = bounded(1);
        let mut sub = Subscriber {
            sink: ReplySink::Chan(btx),
            want_events: true,
            want_metrics: false,
            pending: VecDeque::new(),
            seq: 0,
            gone: false,
        };
        for i in 0..SUBSCRIBER_QUEUE_CAPACITY {
            assert!(
                !enqueue_batch(&mut sub, vec![i as u8]),
                "budget not yet hit"
            );
        }
        assert!(enqueue_batch(&mut sub, vec![0xff]), "overflow must drop");
        assert_eq!(sub.pending.len(), SUBSCRIBER_QUEUE_CAPACITY);
        assert_eq!(
            sub.pending.front().map(|f| f[0]),
            Some(1),
            "the oldest batch goes first"
        );
        assert_eq!(sub.pending.back().map(|f| f[0]), Some(0xff));
    }

    #[test]
    fn socket_tap_streams_over_uds() {
        let path = temp_sock("tap");
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
            .telemetry(&t)
            .spawn()
            .expect("spawn socket manager");
        let addr = mgr.local_addr().expect("bound");
        let mut tap = TelemetryTap::connect(&addr, "test-tap", true, true).expect("tap connects");

        let (repo, mut agent) = standard_live_repo();
        let sock = SocketTransport::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, Box::new(sock))
            .expect("manager reachable over UDS");
        assert!(force_violation_reports(&mut p) >= 1);
        assert!(p.sync());

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got_detect = false;
        let mut got_metrics = false;
        while !(got_detect && got_metrics) && Instant::now() < deadline {
            if let Some(b) = tap
                .next_batch(Duration::from_millis(250))
                .expect("stream stays healthy")
            {
                got_detect |= b.events.iter().any(|e| e.stage == Stage::Detect);
                got_metrics |= b.metrics.is_some();
            }
        }
        assert!(got_detect, "tap never saw the Detect stage");
        assert!(got_metrics, "tap never saw a metrics snapshot");
        mgr.shutdown();
    }

    #[test]
    fn socket_garbage_drops_connection_and_counts() {
        use std::io::Write;
        let path = temp_sock("garbage");
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
            .spawn()
            .expect("spawn socket manager");
        let addr = mgr.local_addr().expect("bound");
        let mut raw = crate::transport::SockStream::connect(&addr).unwrap();
        raw.write_all(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4])
            .unwrap();
        // The reader drops the connection on the unreframeable stream and
        // reports it; poll the counter rather than sleeping a fixed time.
        let deadline = Instant::now() + Duration::from_secs(5);
        while mgr.stats.decode_errors.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "corruption never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        mgr.shutdown();
    }

    #[test]
    fn zero_subscriber_publish_is_skipped_and_counted() {
        let (repo, mut agent) = standard_live_repo();
        let t = Telemetry::enabled();
        // A tight publish cadence so the skip ticks accumulate fast.
        let mgr = LiveHostManager::builder()
            .telemetry(&t)
            .report_batch(ReportBatchPolicy {
                max_msgs: 256,
                max_delay: Duration::from_millis(10),
            })
            .spawn()
            .unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        assert!(force_violation_reports(&mut p) >= 1);
        assert!(mgr.sync());
        // With zero subscribers attached, publish ticks must skip (no
        // batch encoded, nothing queued) and the skips must be counted.
        let deadline = Instant::now() + Duration::from_secs(5);
        while mgr.stats.skipped_flushes.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "skipped flush never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            mgr.stats.telemetry_batches.load(Ordering::Relaxed),
            0,
            "no subscriber, so no batch may ever be encoded or queued"
        );
        if t.is_enabled() {
            assert!(
                t.counter_value("live.telemetry.skipped_flushes", "host-manager") >= 1,
                "skip counter must mirror into the registry"
            );
        }
        mgr.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_spawn_shims_still_work() {
        // The pre-builder constructors stay behaviourally identical: both
        // shims route through the builder with default knobs.
        let mgr = LiveHostManager::spawn().expect("spawn shim");
        assert!(mgr.sync());
        mgr.shutdown();
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::spawn_with(ListenSpec::InProc, Some(&t)).expect("spawn_with");
        assert!(mgr.sync());
        mgr.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reactor_round_trip_over_uds() {
        let path = temp_sock("reactor-rt");
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
            .driver(Driver::Reactor)
            .workers(2)
            .spawn()
            .expect("spawn reactor manager");
        let addr = mgr.local_addr().expect("bound");

        let (repo, mut agent) = standard_live_repo();
        let sock = SocketTransport::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, Box::new(sock))
            .expect("manager reachable through the reactor");
        let reports = force_violation_reports(&mut p);
        assert!(reports >= 1);
        assert!(p.sync(), "sync barrier through the reactor");
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        assert!(mgr.stats.violations.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
        let net = mgr.net_stats().expect("reactor manager exposes net stats");
        assert!(net.accepted.load(Ordering::Relaxed) >= 1);
        assert!(net.frames_in.load(Ordering::Relaxed) >= reports as u64);
        mgr.shutdown();
        assert!(!path.exists(), "socket file cleaned up on shutdown");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reactor_serves_telemetry_tap() {
        let path = temp_sock("reactor-tap");
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
            .driver(Driver::Reactor)
            .workers(2)
            .telemetry(&t)
            .spawn()
            .expect("spawn reactor manager");
        let addr = mgr.local_addr().expect("bound");
        let mut tap = TelemetryTap::connect(&addr, "reactor-tap", true, true).expect("tap dials");

        let (repo, mut agent) = standard_live_repo();
        let sock = SocketTransport::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, Box::new(sock))
            .expect("manager reachable through the reactor");
        assert!(force_violation_reports(&mut p) >= 1);
        assert!(p.sync());

        // Batches ride back through the reactor's telemetry write lane.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got_detect = false;
        while !got_detect && Instant::now() < deadline {
            if let Some(b) = tap
                .next_batch(Duration::from_millis(250))
                .expect("stream stays healthy")
            {
                got_detect |= b.events.iter().any(|e| e.stage == Stage::Detect);
            }
        }
        assert!(got_detect, "tap never saw the Detect stage via the reactor");
        mgr.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reactor_counts_corrupt_streams() {
        use std::io::Write;
        let path = temp_sock("reactor-garbage");
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
            .driver(Driver::Reactor)
            .spawn()
            .expect("spawn reactor manager");
        let addr = mgr.local_addr().expect("bound");
        let mut raw = crate::transport::SockStream::connect(&addr).unwrap();
        raw.write_all(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4])
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while mgr.stats.decode_errors.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "corruption never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        mgr.shutdown();
    }
}
