//! Live deployment: the instrumentation and management plane on real
//! threads with real clocks — the configuration used to reproduce the
//! paper's Section 7 overhead measurements (an instrumented process needs
//! ≈400 µs extra to initialise and register; one pass through the
//! instrumentation code when QoS is met costs ≈11 µs).
//!
//! The exact same `qos-instrument` components run here as inside the
//! simulation; only the clock and the carrier differ. All live traffic is
//! `qos_wire` frames over a [`WireTransport`]: the in-proc channel
//! backend keeps everything in one address space, and the socket backend
//! (TCP or Unix-domain) puts the manager and its instrumented processes
//! in separate OS processes. Frames are decoded centrally in the manager
//! thread, so a malformed frame is a counted statistic
//! ([`LiveManagerStats::decode_errors`], mirrored to telemetry as
//! `live.decode_errors`), never a panic.

use std::collections::HashSet;
use std::fmt;
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use qos_inference::prelude::*;
use qos_instrument::prelude::*;
use qos_repository::prelude::*;
use qos_telemetry::{Counter, Telemetry};
use qos_wire::messages::{LiveRegisterMsg, LiveViolationMsg};
use qos_wire::{FrameBuffer, WireMsg};

use crate::rules::{host_base_facts, host_rules_fair};
use crate::transport::{
    ChannelTransport, Inbound, ReplySink, SockAddr, SockListener, WireTransport,
};

/// Capacity of the manager's message queue. Bounded so a violation storm
/// back-pressures into [`LiveProcess::reports_dropped`] instead of
/// growing the queue (and the manager's lag) without limit.
pub const LIVE_QUEUE_CAPACITY: usize = 1024;

/// How long [`LiveHostManager::sync`] and transport syncs wait for the
/// manager to drain (it never legitimately takes longer).
pub const SYNC_TIMEOUT: Duration = Duration::from_secs(5);

/// Failure starting or reaching the live management plane.
#[derive(Debug)]
pub enum LiveError {
    /// The manager is not reachable (queue disconnected, socket refused).
    ManagerUnavailable,
    /// The built-in rule base failed to parse.
    BadRules(String),
    /// The OS refused to spawn the manager thread.
    ThreadSpawn(std::io::Error),
    /// The OS refused the listening socket.
    Listen(std::io::Error),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::ManagerUnavailable => write!(f, "live host manager is not reachable"),
            LiveError::BadRules(e) => write!(f, "built-in rule base failed to parse: {e}"),
            LiveError::ThreadSpawn(e) => write!(f, "could not spawn manager thread: {e}"),
            LiveError::Listen(e) => write!(f, "could not bind manager socket: {e}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::ThreadSpawn(e) | LiveError::Listen(e) => Some(e),
            _ => None,
        }
    }
}

/// Wall-clock microseconds since an origin.
#[derive(Debug, Clone, Copy)]
pub struct LiveClock {
    t0: Instant,
}

impl LiveClock {
    /// Clock starting now.
    pub fn new() -> Self {
        LiveClock { t0: Instant::now() }
    }

    /// Microseconds since the clock started.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

impl Default for LiveClock {
    fn default() -> Self {
        Self::new()
    }
}

/// An instrumented process in live mode: sensors + coordinator + a
/// transport to the host manager, as created by process initialisation.
pub struct LiveProcess {
    /// The process's sensors.
    pub sensors: SensorSet,
    /// The process's coordinator.
    pub coordinator: Coordinator,
    clock: LiveClock,
    transport: Box<dyn WireTransport>,
    reports_sent: u64,
    reports_dropped: u64,
    /// Registry mirrors of the two counters above (noop until
    /// [`LiveProcess::set_telemetry`]). Uncontended relaxed atomics: the
    /// mirror adds nanoseconds to a path that already crossed a channel.
    sent_counter: Counter,
    dropped_counter: Counter,
    reconnect_counter: Counter,
    reconnects_mirrored: u64,
}

impl LiveProcess {
    /// Full instrumented-process initialisation (the path measured by
    /// experiment E2): register with the Policy Agent, receive and load
    /// the applicable policies, configure sensor thresholds, and announce
    /// to the host manager over `transport`. The registration frame is
    /// installed as the transport's greeting, so a socket transport
    /// re-announces after every reconnect. Fails (instead of panicking)
    /// when the manager is not reachable — the caller decides whether to
    /// run unmanaged.
    pub fn start(
        registration: &Registration,
        repo: &Repository,
        agent: &mut PolicyAgent,
        mut transport: Box<dyn WireTransport>,
    ) -> Result<Self, LiveError> {
        let resolution = agent.register(repo, registration);
        let mut coordinator = Coordinator::new(registration.process.clone());
        for p in resolution.policies {
            coordinator.load_policy(p);
        }
        let sensors = SensorSet::video_standard();
        sensors.configure(coordinator.global_conditions());
        let hello = WireMsg::LiveRegister(LiveRegisterMsg {
            process: registration.process.clone(),
        })
        .encode_frame();
        transport.set_greeting(hello.clone());
        if !transport.try_send(&hello) {
            return Err(LiveError::ManagerUnavailable);
        }
        Ok(LiveProcess {
            sensors,
            coordinator,
            clock: LiveClock::new(),
            transport,
            reports_sent: 0,
            reports_dropped: 0,
            sent_counter: Counter::noop(),
            dropped_counter: Counter::noop(),
            reconnect_counter: Counter::noop(),
            reconnects_mirrored: 0,
        })
    }

    /// Mirror the report counters into a telemetry registry as
    /// `live.reports_sent` / `live.reports_dropped`, labelled with the
    /// process identity. Call once after `start`; existing counts are
    /// carried over.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        let label = self.coordinator.process().to_string();
        self.sent_counter = t.counter("live.reports_sent", &label);
        self.dropped_counter = t.counter("live.reports_dropped", &label);
        self.reconnect_counter = t.counter("live.reconnects", &label);
        self.sent_counter.add(self.reports_sent);
        self.dropped_counter.add(self.reports_dropped);
        self.reconnects_mirrored = 0;
        self.mirror_reconnects();
    }

    /// Push transport reconnects accumulated since the last mirror into
    /// the `live.reconnects` counter. Called from the send paths; cheap
    /// (two u64 reads) when nothing changed.
    fn mirror_reconnects(&mut self) {
        let now = self.transport.reconnects();
        if now > self.reconnects_mirrored {
            self.reconnect_counter.add(now - self.reconnects_mirrored);
            self.reconnects_mirrored = now;
        }
    }

    /// Best-effort violation delivery: a full queue (manager lagging) or
    /// a dead manager drops the report and counts it, rather than
    /// blocking or killing the instrumented process. Violations are
    /// re-detected on the next pass, so a drop costs latency, not
    /// correctness.
    pub fn report(&mut self, report: ViolationReport) {
        let frame = WireMsg::LiveViolation(report.to_wire()).encode_frame();
        if self.transport.try_send(&frame) {
            self.reports_sent += 1;
            self.sent_counter.inc();
        } else {
            self.reports_dropped += 1;
            self.dropped_counter.inc();
        }
        self.mirror_reconnects();
    }

    /// One pass through the instrumentation after a frame is displayed
    /// (the path measured by experiment E3): fps + jitter probes, alarm
    /// routing, and — only on a violation edge — action execution and a
    /// notification to the host manager. Returns the number of reports
    /// sent (0 on the happy path).
    pub fn frame_pass(&mut self) -> usize {
        let now = self.clock.now_us();
        let mut generated = 0;
        let mut alarms = Vec::new();
        if let Some(f) = self.sensors.fps() {
            alarms.extend(f.frame_displayed(now));
        }
        if let Some(j) = self.sensors.jitter() {
            alarms.extend(j.frame_displayed(now));
        }
        for alarm in &alarms {
            for pix in self.coordinator.on_alarm(alarm) {
                if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now) {
                    self.report(report);
                    generated += 1;
                }
            }
        }
        generated
    }

    /// Sample the communication buffer (Example 5's probe).
    pub fn buffer_pass(&mut self, buffer_bytes: u64) -> usize {
        let now = self.clock.now_us();
        let mut generated = 0;
        if let Some(b) = self.sensors.buffer() {
            for alarm in b.sample(buffer_bytes as f64, now) {
                for pix in self.coordinator.on_alarm(&alarm) {
                    if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now)
                    {
                        self.report(report);
                        generated += 1;
                    }
                }
            }
        }
        generated
    }

    /// Barrier through this process's own transport: `true` once the
    /// manager has processed everything this process sent before the
    /// call.
    pub fn sync(&mut self) -> bool {
        let ok = self.transport.sync(SYNC_TIMEOUT);
        self.mirror_reconnects();
        ok
    }

    /// Successful transport reconnects after a lost connection (zero for
    /// the in-proc channel carrier).
    pub fn reconnects(&self) -> u64 {
        self.transport.reconnects()
    }

    /// Reports delivered to the manager so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Reports dropped because the manager's queue was full or the
    /// manager was gone (backpressure counter).
    pub fn reports_dropped(&self) -> u64 {
        self.reports_dropped
    }
}

/// Counters exposed by the live host manager.
#[derive(Debug, Default)]
pub struct LiveManagerStats {
    /// Distinct processes registered (re-registration is idempotent).
    pub registrations: AtomicU64,
    /// Violations received.
    pub violations: AtomicU64,
    /// Rules fired across all violations.
    pub rules_fired: AtomicU64,
    /// Net CPU-boost level decided (sum of adjust minus relax steps) —
    /// stands in for priocntl in live mode, where we will not actually
    /// renice the benchmark process.
    pub boost_level: AtomicI64,
    /// Frames received (any kind, before decode).
    pub frames: AtomicU64,
    /// Total frame bytes received.
    pub wire_bytes: AtomicU64,
    /// Frames that failed to decode, plus connections dropped for
    /// unreframeable streams. Mirrored to telemetry as
    /// `live.decode_errors`.
    pub decode_errors: AtomicU64,
}

/// Where a [`LiveHostManager`] accepts peers.
#[derive(Debug, Clone)]
pub enum ListenSpec {
    /// In-proc only: peers connect with [`LiveHostManager::connect`].
    InProc,
    /// Also accept socket peers (TCP or Unix-domain) on this address.
    /// In-proc connects still work.
    Sock(SockAddr),
}

/// A QoS Host Manager on its own thread, fed by an inbound frame queue.
/// Peers attach over the in-proc channel ([`LiveHostManager::connect`])
/// or, when spawned with [`ListenSpec::Sock`], over a real socket from
/// another OS process.
pub struct LiveHostManager {
    /// Shared counters.
    pub stats: Arc<LiveManagerStats>,
    handle: Option<std::thread::JoinHandle<()>>,
    tx: Sender<Inbound>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    stop_accept: Arc<AtomicBool>,
    bound: Option<SockAddr>,
}

impl LiveHostManager {
    /// Spawn the manager thread with the default host rules, in-proc
    /// only. The rule base is parsed before the thread starts, so a bad
    /// build fails here, in the caller, rather than panicking a detached
    /// thread.
    pub fn spawn() -> Result<Self, LiveError> {
        Self::spawn_with(ListenSpec::InProc, None)
    }

    /// Spawn with an explicit listen spec and optional telemetry registry
    /// (mirrors `live.frames` / `live.wire_bytes` / `live.decode_errors`,
    /// labelled `host-manager`).
    pub fn spawn_with(spec: ListenSpec, telemetry: Option<&Telemetry>) -> Result<Self, LiveError> {
        let rules = parse_program(&host_rules_fair()).map_err(|e| LiveError::BadRules(e.0))?;
        let base = parse_program(&host_base_facts()).map_err(|e| LiveError::BadRules(e.0))?;
        let (tx, rx): (Sender<Inbound>, Receiver<Inbound>) = bounded(LIVE_QUEUE_CAPACITY);
        let stats = Arc::new(LiveManagerStats::default());

        let (frames_c, bytes_c, decode_c) = match telemetry {
            Some(t) => (
                t.counter("live.frames", "host-manager"),
                t.counter("live.wire_bytes", "host-manager"),
                t.counter("live.decode_errors", "host-manager"),
            ),
            None => (Counter::noop(), Counter::noop(), Counter::noop()),
        };

        let thread_stats = Arc::clone(&stats);
        // Buggify state is thread-local; carry the spawner's config into
        // the manager thread so chaos runs fault the live plane too.
        let chaos = qos_buggify::config();
        let handle = std::thread::Builder::new()
            .name("qos-host-manager".into())
            .spawn(move || {
                if let Some(cfg) = chaos {
                    qos_buggify::adopt(cfg);
                }
                manager_loop(rx, thread_stats, frames_c, bytes_c, decode_c, rules, base)
            })
            .map_err(LiveError::ThreadSpawn)?;

        let stop_accept = Arc::new(AtomicBool::new(false));
        let (acceptor, bound) = match spec {
            ListenSpec::InProc => (None, None),
            ListenSpec::Sock(addr) => {
                let listener = SockListener::bind(&addr).map_err(LiveError::Listen)?;
                let bound = listener.local_addr().map_err(LiveError::Listen)?;
                listener.set_nonblocking(true).map_err(LiveError::Listen)?;
                let tx2 = tx.clone();
                let stop2 = Arc::clone(&stop_accept);
                let acceptor = std::thread::Builder::new()
                    .name("qos-hm-accept".into())
                    .spawn(move || accept_loop(listener, tx2, stop2))
                    .map_err(LiveError::ThreadSpawn)?;
                (Some(acceptor), Some(bound))
            }
        };

        Ok(LiveHostManager {
            stats,
            handle: Some(handle),
            tx,
            acceptor,
            stop_accept,
            bound,
        })
    }

    /// An in-proc transport into this manager, for [`LiveProcess::start`]
    /// (and anything else that wants to inject frames).
    pub fn connect(&self) -> Box<dyn WireTransport> {
        Box::new(ChannelTransport::new(self.tx.clone()))
    }

    /// The socket address peers should dial, if listening (resolves TCP
    /// port 0 to the real port).
    pub fn local_addr(&self) -> Option<SockAddr> {
        self.bound.clone()
    }

    /// Wait until everything queued so far has been processed. Returns
    /// `false` if the manager thread is gone or takes more than
    /// [`SYNC_TIMEOUT`] (it never legitimately does).
    pub fn sync(&self) -> bool {
        ChannelTransport::new(self.tx.clone()).sync(SYNC_TIMEOUT)
    }

    /// Idempotent stop: the first call delivers Shutdown and joins; any
    /// repeat (including the Drop after an explicit `shutdown`) is a
    /// no-op because the handle is already gone.
    fn stop(&mut self) {
        self.stop_accept.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(h) = self.handle.take() {
            let _ = self.tx.send(Inbound::Shutdown);
            let _ = h.join();
        }
        if let Some(SockAddr::Uds(p)) = self.bound.take() {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Stop the thread and wait for it.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for LiveHostManager {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The manager thread: decode frames centrally (so malformed input is
/// one counted statistic), run the rule engine on violations, ack syncs.
#[allow(clippy::too_many_arguments)]
fn manager_loop(
    rx: Receiver<Inbound>,
    stats: Arc<LiveManagerStats>,
    frames_c: Counter,
    bytes_c: Counter,
    decode_c: Counter,
    rules: qos_inference::clips::Program,
    base: qos_inference::clips::Program,
) {
    let mut engine = Engine::new();
    for r in rules.rules {
        engine.add_rule(r);
    }
    for f in base.facts {
        engine.assert_fact(f);
    }
    let mut registered: HashSet<String> = HashSet::new();
    while let Ok(inbound) = rx.recv() {
        match inbound {
            Inbound::Shutdown => break,
            Inbound::StreamCorrupt => {
                stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                decode_c.inc();
            }
            Inbound::Frame { bytes, reply } => {
                stats.frames.fetch_add(1, Ordering::Relaxed);
                stats
                    .wire_bytes
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                frames_c.inc();
                bytes_c.add(bytes.len() as u64);
                match WireMsg::decode_frame(&bytes) {
                    Err(_) => {
                        stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        decode_c.inc();
                    }
                    Ok(msg) => {
                        // Chaos: redeliver the frame to the handler, as a
                        // retrying peer would. Registration must stay
                        // idempotent and sync acks harmless under this.
                        if qos_buggify::buggify!("live.mgr.dup_frame") {
                            if let Ok(dup) = WireMsg::decode_frame(&bytes) {
                                handle_msg(dup, None, &stats, &mut engine, &mut registered);
                            }
                        }
                        handle_msg(msg, reply, &stats, &mut engine, &mut registered)
                    }
                }
            }
        }
    }
}

fn handle_msg(
    msg: WireMsg,
    reply: Option<ReplySink>,
    stats: &LiveManagerStats,
    engine: &mut Engine,
    registered: &mut HashSet<String>,
) {
    match msg {
        WireMsg::LiveRegister(LiveRegisterMsg { process }) => {
            // At-least-once registration (retries, reconnect greetings):
            // only the first sighting of a process id counts. (Not a
            // match guard: `insert` needs the owned string.)
            #[allow(clippy::collapsible_match)]
            if registered.insert(process) {
                stats.registrations.fetch_add(1, Ordering::Relaxed);
            }
        }
        WireMsg::LiveViolation(report) => {
            stats.violations.fetch_add(1, Ordering::Relaxed);
            let LiveViolationMsg {
                process, readings, ..
            } = report;
            let fps = readings.first().map(|&(_, v)| v).unwrap_or(0.0);
            let buffer = readings
                .iter()
                .find(|(a, _)| a == "buffer_size")
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            engine.assert_fact(
                Fact::new("violation")
                    .with("pid", Value::str(&process))
                    .with("fps", fps)
                    .with("lo", 23.0)
                    .with("hi", 27.0)
                    .with("buffer", buffer)
                    .with("weight", 1.0)
                    .with("has-upstream", false),
            );
            let run = engine.run(100);
            stats.rules_fired.fetch_add(run.fired, Ordering::Relaxed);
            for inv in engine.take_invocations() {
                match inv.command.as_str() {
                    "adjust-cpu" => {
                        stats.boost_level.fetch_add(10, Ordering::Relaxed);
                    }
                    "relax-cpu" => {
                        stats.boost_level.fetch_add(-5, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        }
        WireMsg::SyncReq { token } => {
            // Everything queued before this frame has been handled by
            // now (single consumer, FIFO queue): ack it.
            if let Some(sink) = reply {
                let ack = WireMsg::SyncAck { token }.encode_frame();
                let _ = sink.send(&ack);
            }
        }
        // A polite goodbye needs no action; anything else the sim plane
        // speaks is not meaningful to the live manager and is ignored
        // (forward compatibility: new peers may send kinds we act on
        // later).
        _ => {}
    }
}

/// Accept loop for socket mode: non-blocking accept + stop-flag poll, so
/// shutdown never hangs in `accept(2)`. Each connection gets a reader
/// thread that reframes the byte stream and forwards raw frames to the
/// manager queue; replies (sync acks) go back over the same connection.
fn accept_loop(listener: SockListener, tx: Sender<Inbound>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let tx = tx.clone();
                let conn = std::thread::Builder::new()
                    .name("qos-hm-conn".into())
                    .spawn(move || {
                        conn_loop(stream, tx);
                    });
                // A failed thread spawn drops the connection; the peer's
                // reconnect machinery will try again.
                drop(conn);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Per-connection reader: split the stream into header-validated raw
/// frames (no payload decode here — that is the manager thread's job, so
/// decode errors are counted in one place). Exits when the peer closes,
/// the stream corrupts, or the manager is gone.
fn conn_loop(stream: crate::transport::SockStream, tx: Sender<Inbound>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(parking_lot::Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) | Err(_) => return, // peer gone
            Ok(n) => fb.extend(&chunk[..n]),
        }
        loop {
            match fb.next_raw() {
                Ok(Some(bytes)) => {
                    if tx
                        .send(Inbound::Frame {
                            bytes,
                            reply: Some(ReplySink::Sock(Arc::clone(&writer))),
                        })
                        .is_err()
                    {
                        return; // manager gone
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Unreframeable stream: there is no way to find the
                    // next frame boundary after a corrupt header. Count
                    // and drop the connection; the peer reconnects.
                    let _ = tx.send(Inbound::StreamCorrupt);
                    reader.shutdown();
                    return;
                }
            }
        }
    }
}

/// Build the standard video repository + agent used by live tests and the
/// overhead benchmarks: the information model plus the paper's Example 1
/// policy.
pub fn standard_live_repo() -> (Repository, PolicyAgent) {
    let (model, _, _) = qos_policy::model::video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).expect("fresh repository");
    repo.store_policy(&StoredPolicy {
        name: "NotifyQoSViolation".into(),
        application: "VideoPlayback".into(),
        executable: "VideoApplication".into(),
        role: "*".into(),
        source: "oblig NotifyQoSViolation { \
                 subject (...)/VideoApplication/qosl_coordinator \
                 target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager \
                 on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25) \
                 do fps_sensor->read(out frame_rate); \
                    jitter_sensor->read(out jitter_rate); \
                    buffer_sensor->read(out buffer_size); \
                    (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size); }"
            .into(),
        enabled: true,
    })
    .expect("fresh repository");
    (repo, PolicyAgent::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SocketTransport;

    fn registration() -> Registration {
        Registration {
            process: "live:p1".into(),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        }
    }

    fn force_violation_reports(p: &mut LiveProcess) -> usize {
        // Drive the fps sensor below 23 with manual timestamps: frames
        // 200 ms apart -> 5 fps.
        let fps = p.sensors.fps().unwrap();
        let mut now = 0u64;
        let mut alarms = Vec::new();
        for _ in 0..20 {
            now += 200_000;
            alarms.extend(fps.frame_displayed(now));
        }
        let mut generated = 0;
        for a in &alarms {
            for pix in p.coordinator.on_alarm(a) {
                if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                    p.report(r);
                    generated += 1;
                }
            }
        }
        generated
    }

    fn temp_sock(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        dir.join(format!("qos-live-{}-{name}.sock", std::process::id()))
    }

    #[test]
    fn live_init_registers_and_loads_policies() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        assert_eq!(p.coordinator.policy_count(), 1);
        assert_eq!(p.coordinator.global_conditions().len(), 3);
        assert!(mgr.sync(), "manager drains its queue");
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        assert!(mgr.stats.frames.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.wire_bytes.load(Ordering::Relaxed) > 0);
        mgr.shutdown();
    }

    #[test]
    fn registration_is_idempotent() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        // The same process id registering repeatedly (at-least-once
        // delivery, or a restart-and-re-register) counts once.
        let _p1 = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect()).unwrap();
        let _p2 = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect()).unwrap();
        let hello = WireMsg::LiveRegister(LiveRegisterMsg {
            process: "live:p1".into(),
        })
        .encode_frame();
        assert!(mgr.connect().try_send(&hello));
        assert!(mgr.sync());
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        mgr.shutdown();
    }

    #[test]
    fn start_fails_cleanly_when_manager_is_gone() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let t = mgr.connect();
        mgr.shutdown();
        let err = LiveProcess::start(&registration(), &repo, &mut agent, t);
        assert!(matches!(err, Err(LiveError::ManagerUnavailable)));
    }

    #[test]
    fn happy_path_sends_no_reports() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        // Prime the fps window at a healthy rate using manual timestamps
        // via the sensor directly (the live pass uses wall time, which is
        // effectively instantaneous here — the fps will look enormous,
        // exceeding the 27 upper bound, so pre-check with buffer only).
        for _ in 0..5 {
            assert_eq!(p.buffer_pass(100), 0, "healthy buffer, no reports");
        }
        assert_eq!(p.reports_sent(), 0);
        assert_eq!(p.reports_dropped(), 0);
        mgr.shutdown();
    }

    #[test]
    fn violation_reaches_manager_and_fires_rules() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        let reports = force_violation_reports(&mut p);
        assert!(reports >= 1, "fps collapse must notify");
        assert!(mgr.sync(), "manager drains its queue");
        assert!(mgr.stats.violations.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
        mgr.shutdown();
    }

    #[test]
    fn dropped_reports_are_counted_not_fatal() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        mgr.shutdown();
        // Manager gone: a violation pass must neither panic nor hang.
        let generated = force_violation_reports(&mut p);
        assert!(generated >= 1);
        assert_eq!(p.reports_sent(), 0);
        assert_eq!(p.reports_dropped(), generated as u64);
    }

    #[test]
    fn dropped_reports_mirror_into_registry() {
        let (repo, mut agent) = standard_live_repo();
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, mgr.connect())
            .expect("manager running");
        let t = Telemetry::enabled();
        if !t.is_enabled() {
            // telemetry-off build: nothing to mirror, by design.
            mgr.shutdown();
            return;
        }
        p.set_telemetry(&t);
        mgr.shutdown();
        let generated = force_violation_reports(&mut p);
        assert!(generated >= 1);
        assert!(p.reports_dropped() >= 1);
        assert_eq!(
            t.counter_value("live.reports_dropped", "live:p1"),
            p.reports_dropped()
        );
        assert_eq!(t.counter_value("live.reports_sent", "live:p1"), 0);
    }

    #[test]
    fn shutdown_is_idempotent_with_drop() {
        let mgr = LiveHostManager::spawn().expect("spawn manager");
        let mut t = mgr.connect();
        // `shutdown` consumes self and Drop runs right after it — the
        // second stop() must be a no-op, not a hang or double-join.
        mgr.shutdown();
        assert!(
            !t.try_send(&WireMsg::Bye.encode_frame()),
            "thread gone, channel disconnected"
        );
    }

    #[test]
    fn malformed_frames_count_as_decode_errors_not_panics() {
        let t = Telemetry::enabled();
        let mgr = LiveHostManager::spawn_with(ListenSpec::InProc, Some(&t)).unwrap();
        // A frame whose header is valid but whose body is garbage for
        // its kind: mangle a real frame's payload.
        let mut frame = WireMsg::LiveRegister(LiveRegisterMsg {
            process: "x".into(),
        })
        .encode_frame();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        frame[8] = 0xff; // string length now nonsense
        assert!(mgr.connect().try_send(&frame));
        assert!(mgr.sync());
        assert_eq!(mgr.stats.decode_errors.load(Ordering::Relaxed), 1);
        if t.is_enabled() {
            assert_eq!(t.counter_value("live.decode_errors", "host-manager"), 1);
        }
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 0);
        mgr.shutdown();
    }

    #[test]
    fn socket_mode_round_trip_over_uds() {
        let path = temp_sock("roundtrip");
        let mgr = LiveHostManager::spawn_with(ListenSpec::Sock(SockAddr::Uds(path.clone())), None)
            .expect("spawn socket manager");
        let addr = mgr.local_addr().expect("bound");

        let (repo, mut agent) = standard_live_repo();
        let sock = SocketTransport::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, Box::new(sock))
            .expect("manager reachable over UDS");
        let reports = force_violation_reports(&mut p);
        assert!(reports >= 1);
        assert!(p.sync(), "socket sync barrier");
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        assert!(mgr.stats.violations.load(Ordering::Relaxed) >= 1);
        assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
        mgr.shutdown();
        assert!(!path.exists(), "socket file cleaned up on shutdown");
    }

    #[test]
    fn socket_mode_works_over_tcp_too() {
        let mgr = LiveHostManager::spawn_with(
            ListenSpec::Sock(SockAddr::Tcp("127.0.0.1:0".into())),
            None,
        )
        .expect("spawn tcp manager");
        let addr = mgr.local_addr().expect("bound");
        assert!(matches!(addr, SockAddr::Tcp(ref a) if !a.ends_with(":0")));

        let (repo, mut agent) = standard_live_repo();
        let sock = SocketTransport::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let mut p = LiveProcess::start(&registration(), &repo, &mut agent, Box::new(sock))
            .expect("manager reachable over TCP");
        assert!(p.sync());
        assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
        mgr.shutdown();
    }

    #[test]
    fn socket_garbage_drops_connection_and_counts() {
        use std::io::Write;
        let path = temp_sock("garbage");
        let mgr = LiveHostManager::spawn_with(ListenSpec::Sock(SockAddr::Uds(path.clone())), None)
            .expect("spawn socket manager");
        let addr = mgr.local_addr().expect("bound");
        let mut raw = crate::transport::SockStream::connect(&addr).unwrap();
        raw.write_all(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4])
            .unwrap();
        // The reader drops the connection on the unreframeable stream and
        // reports it; poll the counter rather than sleeping a fixed time.
        let deadline = Instant::now() + Duration::from_secs(5);
        while mgr.stats.decode_errors.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "corruption never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        mgr.shutdown();
    }
}
