//! The QoS Domain Manager (Section 5.3): assigned a collection of hosts,
//! it locates the source of problems spanning multiple hosts. On an alert
//! from a client-side host manager it queries the server-side host
//! manager for CPU load and memory usage; its rules then discriminate a
//! server CPU problem (boost the server process), a server memory
//! problem (grow its resident set), or — by elimination — a network
//! problem (reroute traffic around the congested switch).

use std::collections::HashMap;

use qos_inference::prelude::*;
use qos_sim::prelude::*;
use qos_telemetry::{Stage, Telemetry};
use qos_wire::messages::{DiscDomainRegisterMsg, DiscRoutesMsg};

use crate::host::{pid_from_str, pid_to_string};
use crate::messages::{
    AdjustRequestMsg, DomainAlertMsg, StatsQueryMsg, StatsReplyMsg, WireMsg, DOMAIN_MANAGER_PORT,
    MANAGER_PROCESSING_COST, STATS_QUERY_DEADLINE,
};
use crate::rules::{domain_base_facts, domain_rules};
use crate::transport::{decode_ctrl, send_ctrl};

/// Timer tags at or above this value carry a stats-query correlation id
/// (`tag - TAG_QUERY_BASE`); tags below are free for other uses.
const TAG_QUERY_BASE: u64 = 1 << 32;

/// Timer tag for the periodic federation (re-)registration.
const TAG_FED_REGISTER: u64 = 1;

/// How often a federated domain manager re-registers with the discovery
/// server. Registration is idempotent, so this doubles as loss recovery
/// (a dropped register or route push heals within a period) and as the
/// federation's liveness heartbeat.
const FED_REGISTER_PERIOD: Dur = Dur::from_secs(1);

/// Why a cross-domain alert could not be forwarded. Surfaced (counted
/// in [`DomainStats::unroutable_alerts`], kept in
/// [`DomainStats::route_errors`], mirrored as `dm.unroutable_alerts`)
/// instead of silently dropping the alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No route covers the upstream host: it is not in this domain's
    /// shard, no peer or discovered route names it, and there is no
    /// parent domain to escalate to.
    NoRoute {
        /// The upstream host nobody covers.
        host: HostId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoRoute { host } => {
                write!(f, "no route covers upstream host h{}", host.0)
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A corrective action the domain manager decided on (kept for
/// experiment inspection).
#[derive(Debug, Clone, PartialEq)]
pub enum DomainAction {
    /// Server-side CPU boost sent to a host manager.
    BoostServer {
        /// The starved server process.
        pid: Pid,
    },
    /// Server-side resident-set boost.
    BoostServerMemory {
        /// The thrashing server process.
        pid: Pid,
    },
    /// Traffic rerouted between two hosts.
    Reroute {
        /// Client side.
        a: HostId,
        /// Server side.
        b: HostId,
    },
}

/// Counters and the action log, for experiments.
#[derive(Debug, Clone, Default)]
pub struct DomainStats {
    /// Alerts received from host managers.
    pub alerts: u64,
    /// Stats queries issued.
    pub queries: u64,
    /// Alerts forwarded to a peer domain manager (the problem's upstream
    /// lies outside this domain — the Section 9 "Interconnecting QoS
    /// Domain Managers" case).
    pub forwarded: u64,
    /// Stats queries that hit their deadline with no reply (diagnosed
    /// from partial information instead).
    pub query_timeouts: u64,
    /// Stats replies that arrived after their deadline had already fired
    /// (or were duplicates); dropped without re-running diagnosis.
    pub late_replies: u64,
    /// Cross-domain alerts no route covered (mirrored as
    /// `dm.unroutable_alerts`). Each one is a [`RouteError`] in
    /// [`DomainStats::route_errors`].
    pub unroutable_alerts: u64,
    /// The typed errors behind [`DomainStats::unroutable_alerts`].
    pub route_errors: Vec<RouteError>,
    /// Actions decided (in order).
    pub actions: Vec<DomainAction>,
}

/// Federation state for a domain manager that participates in
/// discovery: its identity in the domain tree plus the routing tables
/// the discovery server pushes.
struct FederationState {
    /// This domain's id.
    domain: DomainId,
    /// Parent domain (None = federation root).
    parent: Option<DomainId>,
    /// The discovery server's endpoint.
    server: Endpoint,
    /// Discovered routes for hosts *below* this domain but outside its
    /// own shard: upstream host → covering domain manager.
    routes: HashMap<HostId, Endpoint>,
    /// The parent domain manager's endpoint, learned from the domains
    /// table of the last route push.
    parent_ep: Option<Endpoint>,
    /// Version of the last applied route push (stale pushes are
    /// ignored — they can arrive reordered under chaos).
    version: u64,
}

/// The domain manager process.
pub struct QosDomainManager {
    engine: Engine,
    /// Host-manager endpoints per host in this domain.
    host_managers: HashMap<HostId, Endpoint>,
    /// Alternate routes installed when a path is diagnosed congested:
    /// `(a, b)` → hop sequence.
    backup_routes: HashMap<(HostId, HostId), Vec<HopId>>,
    /// Peer domain managers responsible for hosts outside this domain.
    /// The paper leaves the inter-domain topology open ("hierarchical or
    /// ... more arbitrary"); peers here form a flat federation keyed by
    /// the host they cover.
    peers: HashMap<HostId, Endpoint>,
    /// Federation membership, when this manager discovers its shard and
    /// routes instead of being hand-wired.
    federation: Option<FederationState>,
    next_correlation: u64,
    /// Pending alerts by correlation id.
    pending: HashMap<u64, DomainAlertMsg>,
    /// Counters and decisions.
    pub stats: DomainStats,
    /// Telemetry handle (inert by default): Diagnose/Adapt stage events
    /// plus `dm.*` registry mirrors of [`DomainStats`].
    telemetry: Telemetry,
    /// Counter values already mirrored into the registry: alerts,
    /// queries, forwarded, query_timeouts, late_replies, unroutable,
    /// actions.
    mirrored: [u64; 7],
}

impl QosDomainManager {
    /// A domain manager over the given host-manager endpoints.
    pub fn new(host_managers: HashMap<HostId, Endpoint>) -> Self {
        let mut engine = Engine::new();
        let prog = parse_program(domain_rules()).expect("built-in rules parse");
        for r in prog.rules {
            engine.add_rule(r);
        }
        for f in parse_program(domain_base_facts())
            .expect("built-in facts parse")
            .facts
        {
            engine.assert_fact(f);
        }
        QosDomainManager {
            engine,
            host_managers,
            backup_routes: HashMap::new(),
            peers: HashMap::new(),
            federation: None,
            next_correlation: 0,
            pending: HashMap::new(),
            stats: DomainStats::default(),
            telemetry: Telemetry::disabled(),
            mirrored: [0; 7],
        }
    }

    /// Join the federation as domain `domain` (child of `parent`; `None`
    /// makes this the root). The manager registers with the discovery
    /// server at `server` on start and keeps re-registering every
    /// [`FED_REGISTER_PERIOD`]; its shard membership and cross-domain
    /// routes then come entirely from the server's route pushes —
    /// nothing is hand-wired.
    pub fn with_federation(
        mut self,
        domain: DomainId,
        parent: Option<DomainId>,
        server: Endpoint,
    ) -> Self {
        self.federation = Some(FederationState {
            domain,
            parent,
            server,
            routes: HashMap::new(),
            parent_ep: None,
            version: 0,
        });
        self
    }

    /// This manager's domain id, when federated.
    pub fn domain_id(&self) -> Option<DomainId> {
        self.federation.as_ref().map(|f| f.domain)
    }

    /// Hosts currently in this manager's shard.
    pub fn shard_size(&self) -> usize {
        self.host_managers.len()
    }

    /// Number of discovered cross-domain routes (hosts in descendant
    /// domains reachable via their covering manager).
    pub fn route_count(&self) -> usize {
        self.federation.as_ref().map_or(0, |f| f.routes.len())
    }

    /// Where an alert for an upstream host outside this shard would be
    /// forwarded: hand-wired peers first (back-compat), then
    /// discovery-learned routes, then the parent domain. The typed
    /// error names the host nobody covers.
    pub fn forward_route(&self, host: HostId) -> Result<Endpoint, RouteError> {
        if let Some(&peer) = self.peers.get(&host) {
            return Ok(peer);
        }
        if let Some(fed) = &self.federation {
            if let Some(&via) = fed.routes.get(&host) {
                return Ok(via);
            }
            if let Some(parent) = fed.parent_ep {
                return Ok(parent);
            }
        }
        Err(RouteError::NoRoute { host })
    }

    /// Apply a route push from the discovery server: entries for this
    /// domain's own shard become the host-manager registry; entries for
    /// descendant domains become forwarding routes; the domains table
    /// names the parent's endpoint. Stale (older-version) pushes are
    /// discarded.
    fn on_routes(&mut self, routes: DiscRoutesMsg) {
        let Some(fed) = self.federation.as_mut() else {
            return;
        };
        if routes.domain != fed.domain || routes.version < fed.version {
            return;
        }
        fed.version = routes.version;
        fed.parent_ep = fed.parent.and_then(|p| {
            routes
                .domains
                .iter()
                .find(|d| d.domain == p)
                .map(|d| d.manager)
        });
        self.host_managers.clear();
        fed.routes.clear();
        for h in &routes.hosts {
            if h.domain == fed.domain {
                self.host_managers.insert(h.host, h.via);
            } else {
                fed.routes.insert(h.host, h.via);
            }
        }
        if self.telemetry.is_enabled() {
            let label = fed.domain.to_string();
            self.telemetry
                .gauge("dm.shard.hosts", &label)
                .set(self.host_managers.len() as f64);
            self.telemetry
                .gauge("dm.routes", &label)
                .set(fed.routes.len() as f64);
        }
    }

    /// (Re-)register this domain with the discovery server.
    fn fed_register(&self, ctx: &mut Ctx<'_>) {
        let Some(fed) = &self.federation else {
            return;
        };
        send_ctrl(
            ctx,
            fed.server,
            DOMAIN_MANAGER_PORT,
            WireMsg::DiscDomainRegister(DiscDomainRegisterMsg {
                domain: fed.domain,
                manager: Endpoint::new(ctx.host_id(), DOMAIN_MANAGER_PORT),
                parent: fed.parent,
            }),
        );
    }

    /// Attach a telemetry handle; the manager emits Diagnose/Adapt stage
    /// events for correlated alerts and mirrors its counters into the
    /// registry under `dm.*`.
    pub fn with_telemetry(mut self, t: &Telemetry) -> Self {
        self.telemetry = t.clone();
        self
    }

    /// Mirror [`DomainStats`] into the registry as `dm.*` counters,
    /// adding only what changed since the last mirror.
    fn mirror_stats(&mut self, host: HostId) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let label = format!("h{}", host.0);
        let cur = [
            self.stats.alerts,
            self.stats.queries,
            self.stats.forwarded,
            self.stats.query_timeouts,
            self.stats.late_replies,
            self.stats.unroutable_alerts,
            self.stats.actions.len() as u64,
        ];
        const FAMILIES: [&str; 7] = [
            "dm.alerts",
            "dm.queries",
            "dm.forwarded",
            "dm.query_timeouts",
            "dm.late_replies",
            "dm.unroutable_alerts",
            "dm.actions",
        ];
        for i in 0..7 {
            if cur[i] > self.mirrored[i] {
                self.telemetry
                    .counter(FAMILIES[i], &label)
                    .add(cur[i] - self.mirrored[i]);
            }
        }
        self.mirrored = cur;
    }

    /// Register an alternate path to install when `a↔b` is congested.
    pub fn add_backup_route(&mut self, a: HostId, b: HostId, hops: Vec<HopId>) {
        self.backup_routes.insert(route_key(a, b), hops);
    }

    /// Register the peer domain manager responsible for a host outside
    /// this domain. Alerts whose upstream lies there are forwarded to the
    /// peer, which owns the server-side diagnosis.
    pub fn add_peer(&mut self, host: HostId, peer: Endpoint) {
        self.peers.insert(host, peer);
    }

    /// Replace/extend the rule base at run time.
    pub fn load_rules(&mut self, text: &str) -> bool {
        match parse_program(text) {
            Ok(p) => {
                for r in p.rules {
                    self.engine.add_rule(r);
                }
                for f in p.facts {
                    self.engine.assert_fact(f);
                }
                true
            }
            Err(_) => false,
        }
    }

    fn on_alert(&mut self, ctx: &mut Ctx<'_>, alert: DomainAlertMsg) {
        self.stats.alerts += 1;
        // Cross-domain: the upstream host is not in our shard — hand the
        // alert to whoever covers it (hand-wired peer, discovered route,
        // or the parent domain). An upstream nobody covers is a typed,
        // counted error, never a silent drop.
        if !self.host_managers.contains_key(&alert.upstream.host) {
            match self.forward_route(alert.upstream.host) {
                Ok(dst) => {
                    self.stats.forwarded += 1;
                    send_ctrl(ctx, dst, DOMAIN_MANAGER_PORT, WireMsg::DomainAlert(alert));
                }
                Err(e) => {
                    self.stats.unroutable_alerts += 1;
                    self.stats.route_errors.push(e);
                }
            }
            return;
        }
        let corr = self.next_correlation;
        self.next_correlation += 1;
        self.engine.assert_fact(
            Fact::new("alert")
                .with("corr", corr as i64)
                .with("client", Value::str(pid_to_string(alert.client)))
                .with("client-host", alert.from_host.0 as i64)
                .with("server", Value::str(pid_to_string(alert.upstream.pid)))
                .with("server-host", alert.upstream.host.0 as i64)
                .with("fps", alert.observed),
        );
        // Ask the server-side host manager for its statistics, with a
        // deadline: a lost query or reply must not leave the alert parked
        // in `pending` forever.
        if let Some(&hm) = self.host_managers.get(&alert.upstream.host) {
            self.stats.queries += 1;
            send_ctrl(
                ctx,
                hm,
                DOMAIN_MANAGER_PORT,
                WireMsg::StatsQuery(StatsQueryMsg {
                    reply_to: Endpoint::new(ctx.host_id(), DOMAIN_MANAGER_PORT),
                    correlation: corr,
                }),
            );
        }
        ctx.set_timer(STATS_QUERY_DEADLINE, TAG_QUERY_BASE + corr);
        self.pending.insert(corr, alert);
    }

    fn on_stats(&mut self, ctx: &mut Ctx<'_>, reply: StatsReplyMsg) {
        // Chaos: lose the reply on arrival — the deadline timer must
        // still diagnose from what we have (stats-timeout path).
        if qos_buggify::buggify!("dm.stats_reply.drop") {
            return;
        }
        // Late (the deadline already diagnosed without it) or duplicate
        // replies must not re-run diagnosis against a retracted alert.
        let Some(alert) = self.pending.remove(&reply.correlation) else {
            self.stats.late_replies += 1;
            return;
        };
        self.engine.assert_fact(
            Fact::new("server-stats")
                .with("corr", reply.correlation as i64)
                .with("load", reply.load_avg)
                .with("mem", reply.mem_utilization),
        );
        let run = self.engine.run(200);
        if self.telemetry.is_enabled() {
            self.telemetry.stage(
                ctx.now().as_micros(),
                alert.corr,
                Stage::Diagnose,
                &format!("dm:h{}", ctx.host_id().0),
                &pid_to_string(alert.client),
                || {
                    vec![
                        ("fired".into(), run.fired as f64),
                        ("load".into(), reply.load_avg),
                        ("mem".into(), reply.mem_utilization),
                    ]
                },
            );
        }
        let invocations = self.engine.take_invocations();
        for inv in invocations {
            self.dispatch(ctx, &inv, alert.corr);
        }
    }

    /// The stats query hit its deadline: the server-side host manager is
    /// unreachable, which from here is indistinguishable from a network
    /// partition on the path — diagnose from what we have. A
    /// `stats-timeout` fact joins the alert in working memory and the
    /// rule base (see `stats-timeout-reroute`) decides the action.
    fn on_query_timeout(&mut self, ctx: &mut Ctx<'_>, corr: u64) {
        let Some(alert) = self.pending.remove(&corr) else {
            return; // reply arrived in time; nothing to do
        };
        self.stats.query_timeouts += 1;
        self.engine
            .assert_fact(Fact::new("stats-timeout").with("corr", corr as i64));
        let run = self.engine.run(200);
        if self.telemetry.is_enabled() {
            self.telemetry.stage(
                ctx.now().as_micros(),
                alert.corr,
                Stage::Diagnose,
                &format!("dm:h{}", ctx.host_id().0),
                &pid_to_string(alert.client),
                || {
                    vec![
                        ("fired".into(), run.fired as f64),
                        ("stats_timeout".into(), 1.0),
                    ]
                },
            );
        }
        let invocations = self.engine.take_invocations();
        for inv in invocations {
            self.dispatch(ctx, &inv, alert.corr);
        }
    }

    /// Emit an Adapt-stage event for a decided action.
    fn emit_adapt(&self, ctx: &Ctx<'_>, corr: u64, action: &str) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.stage(
            ctx.now().as_micros(),
            corr,
            Stage::Adapt,
            &format!("dm:h{}", ctx.host_id().0),
            action,
            Vec::new,
        );
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, inv: &Invocation, corr: u64) {
        match inv.command.as_str() {
            "boost-server" | "boost-server-memory" => {
                let Some(pid) = inv.args.first().and_then(|v| match v {
                    Value::Str(s) | Value::Sym(s) => pid_from_str(s),
                    _ => None,
                }) else {
                    return;
                };
                let Some(&hm) = self.host_managers.get(&pid.host) else {
                    return;
                };
                if inv.command == "boost-server" {
                    self.stats.actions.push(DomainAction::BoostServer { pid });
                    self.emit_adapt(ctx, corr, "boost-server");
                    send_ctrl(
                        ctx,
                        hm,
                        DOMAIN_MANAGER_PORT,
                        WireMsg::AdjustRequest(AdjustRequestMsg {
                            pid,
                            steps: 20,
                            corr,
                        }),
                    );
                } else {
                    self.stats
                        .actions
                        .push(DomainAction::BoostServerMemory { pid });
                    self.emit_adapt(ctx, corr, "boost-server-memory");
                    // Memory boosts route through the same host-manager
                    // adjust interface with a small CPU nudge plus the
                    // host manager's own memory rules on the next local
                    // violation; the direct knob is the resident set.
                    ctx.memctl(pid, 64);
                }
            }
            "reroute" => {
                let (Some(a), Some(b)) = (
                    inv.args.first().and_then(Value::as_f64),
                    inv.args.get(1).and_then(Value::as_f64),
                ) else {
                    return;
                };
                let (a, b) = (HostId(a as u32), HostId(b as u32));
                if let Some(hops) = self.backup_routes.get(&route_key(a, b)) {
                    self.stats.actions.push(DomainAction::Reroute { a, b });
                    self.emit_adapt(ctx, corr, "reroute");
                    ctx.reroute(a, b, hops.clone());
                }
            }
            _ => {}
        }
    }
}

fn route_key(a: HostId, b: HostId) -> (HostId, HostId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

impl ProcessLogic for QosDomainManager {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Readable(port) => {
                let Some(msg) = ctx.recv(port) else { return };
                match decode_ctrl(&msg) {
                    Ok(Some(WireMsg::DomainAlert(a))) => self.on_alert(ctx, a),
                    Ok(Some(WireMsg::StatsReply(r))) => self.on_stats(ctx, r),
                    Ok(Some(WireMsg::DiscRoutes(rt))) => self.on_routes(rt),
                    // Other control kinds, app payloads, and corrupt
                    // frames: not this process's business; processing
                    // cost is still charged below.
                    Ok(_) | Err(_) => {}
                }
                ctx.run(MANAGER_PROCESSING_COST);
                self.mirror_stats(ctx.host_id());
            }
            ProcEvent::Timer(tag) if tag >= TAG_QUERY_BASE => {
                self.on_query_timeout(ctx, tag - TAG_QUERY_BASE);
                ctx.run(MANAGER_PROCESSING_COST);
                self.mirror_stats(ctx.host_id());
            }
            ProcEvent::Start => {
                if self.federation.is_some() {
                    self.fed_register(ctx);
                    ctx.set_timer(FED_REGISTER_PERIOD, TAG_FED_REGISTER);
                }
            }
            ProcEvent::Timer(TAG_FED_REGISTER) => {
                self.fed_register(ctx);
                ctx.set_timer(FED_REGISTER_PERIOD, TAG_FED_REGISTER);
            }
            ProcEvent::BurstDone | ProcEvent::Timer(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_key_symmetric() {
        assert_eq!(route_key(HostId(2), HostId(1)), (HostId(1), HostId(2)));
        assert_eq!(route_key(HostId(1), HostId(2)), (HostId(1), HostId(2)));
    }

    #[test]
    fn construction_loads_rules() {
        let dm = QosDomainManager::new(HashMap::new());
        assert!(dm.engine.rule_names().count() >= 3);
    }

    #[test]
    fn dynamic_rule_swap() {
        let mut dm = QosDomainManager::new(HashMap::new());
        assert!(dm.load_rules("(defrule custom (alert (corr ?c)) => (call custom-action ?c))"));
        assert!(dm.engine.rule_names().any(|n| n == "custom"));
        assert!(!dm.load_rules("(((broken"));
    }
}
