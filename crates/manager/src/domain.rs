//! The QoS Domain Manager (Section 5.3): assigned a collection of hosts,
//! it locates the source of problems spanning multiple hosts. On an alert
//! from a client-side host manager it queries the server-side host
//! manager for CPU load and memory usage; its rules then discriminate a
//! server CPU problem (boost the server process), a server memory
//! problem (grow its resident set), or — by elimination — a network
//! problem (reroute traffic around the congested switch).

use std::collections::HashMap;

use qos_inference::prelude::*;
use qos_sim::prelude::*;
use qos_telemetry::{Stage, Telemetry};

use crate::host::{pid_from_str, pid_to_string};
use crate::messages::{
    AdjustRequestMsg, DomainAlertMsg, StatsQueryMsg, StatsReplyMsg, WireMsg, DOMAIN_MANAGER_PORT,
    MANAGER_PROCESSING_COST, STATS_QUERY_DEADLINE,
};
use crate::rules::{domain_base_facts, domain_rules};
use crate::transport::{decode_ctrl, send_ctrl};

/// Timer tags at or above this value carry a stats-query correlation id
/// (`tag - TAG_QUERY_BASE`); tags below are free for other uses.
const TAG_QUERY_BASE: u64 = 1 << 32;

/// A corrective action the domain manager decided on (kept for
/// experiment inspection).
#[derive(Debug, Clone, PartialEq)]
pub enum DomainAction {
    /// Server-side CPU boost sent to a host manager.
    BoostServer {
        /// The starved server process.
        pid: Pid,
    },
    /// Server-side resident-set boost.
    BoostServerMemory {
        /// The thrashing server process.
        pid: Pid,
    },
    /// Traffic rerouted between two hosts.
    Reroute {
        /// Client side.
        a: HostId,
        /// Server side.
        b: HostId,
    },
}

/// Counters and the action log, for experiments.
#[derive(Debug, Default)]
pub struct DomainStats {
    /// Alerts received from host managers.
    pub alerts: u64,
    /// Stats queries issued.
    pub queries: u64,
    /// Alerts forwarded to a peer domain manager (the problem's upstream
    /// lies outside this domain — the Section 9 "Interconnecting QoS
    /// Domain Managers" case).
    pub forwarded: u64,
    /// Stats queries that hit their deadline with no reply (diagnosed
    /// from partial information instead).
    pub query_timeouts: u64,
    /// Stats replies that arrived after their deadline had already fired
    /// (or were duplicates); dropped without re-running diagnosis.
    pub late_replies: u64,
    /// Actions decided (in order).
    pub actions: Vec<DomainAction>,
}

/// The domain manager process.
pub struct QosDomainManager {
    engine: Engine,
    /// Host-manager endpoints per host in this domain.
    host_managers: HashMap<HostId, Endpoint>,
    /// Alternate routes installed when a path is diagnosed congested:
    /// `(a, b)` → hop sequence.
    backup_routes: HashMap<(HostId, HostId), Vec<HopId>>,
    /// Peer domain managers responsible for hosts outside this domain.
    /// The paper leaves the inter-domain topology open ("hierarchical or
    /// ... more arbitrary"); peers here form a flat federation keyed by
    /// the host they cover.
    peers: HashMap<HostId, Endpoint>,
    next_correlation: u64,
    /// Pending alerts by correlation id.
    pending: HashMap<u64, DomainAlertMsg>,
    /// Counters and decisions.
    pub stats: DomainStats,
    /// Telemetry handle (inert by default): Diagnose/Adapt stage events
    /// plus `dm.*` registry mirrors of [`DomainStats`].
    telemetry: Telemetry,
    /// Counter values already mirrored into the registry: alerts,
    /// queries, forwarded, query_timeouts, late_replies, actions.
    mirrored: [u64; 6],
}

impl QosDomainManager {
    /// A domain manager over the given host-manager endpoints.
    pub fn new(host_managers: HashMap<HostId, Endpoint>) -> Self {
        let mut engine = Engine::new();
        let prog = parse_program(domain_rules()).expect("built-in rules parse");
        for r in prog.rules {
            engine.add_rule(r);
        }
        for f in parse_program(domain_base_facts())
            .expect("built-in facts parse")
            .facts
        {
            engine.assert_fact(f);
        }
        QosDomainManager {
            engine,
            host_managers,
            backup_routes: HashMap::new(),
            peers: HashMap::new(),
            next_correlation: 0,
            pending: HashMap::new(),
            stats: DomainStats::default(),
            telemetry: Telemetry::disabled(),
            mirrored: [0; 6],
        }
    }

    /// Attach a telemetry handle; the manager emits Diagnose/Adapt stage
    /// events for correlated alerts and mirrors its counters into the
    /// registry under `dm.*`.
    pub fn with_telemetry(mut self, t: &Telemetry) -> Self {
        self.telemetry = t.clone();
        self
    }

    /// Mirror [`DomainStats`] into the registry as `dm.*` counters,
    /// adding only what changed since the last mirror.
    fn mirror_stats(&mut self, host: HostId) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let label = format!("h{}", host.0);
        let cur = [
            self.stats.alerts,
            self.stats.queries,
            self.stats.forwarded,
            self.stats.query_timeouts,
            self.stats.late_replies,
            self.stats.actions.len() as u64,
        ];
        const FAMILIES: [&str; 6] = [
            "dm.alerts",
            "dm.queries",
            "dm.forwarded",
            "dm.query_timeouts",
            "dm.late_replies",
            "dm.actions",
        ];
        for i in 0..6 {
            if cur[i] > self.mirrored[i] {
                self.telemetry
                    .counter(FAMILIES[i], &label)
                    .add(cur[i] - self.mirrored[i]);
            }
        }
        self.mirrored = cur;
    }

    /// Register an alternate path to install when `a↔b` is congested.
    pub fn add_backup_route(&mut self, a: HostId, b: HostId, hops: Vec<HopId>) {
        self.backup_routes.insert(route_key(a, b), hops);
    }

    /// Register the peer domain manager responsible for a host outside
    /// this domain. Alerts whose upstream lies there are forwarded to the
    /// peer, which owns the server-side diagnosis.
    pub fn add_peer(&mut self, host: HostId, peer: Endpoint) {
        self.peers.insert(host, peer);
    }

    /// Replace/extend the rule base at run time.
    pub fn load_rules(&mut self, text: &str) -> bool {
        match parse_program(text) {
            Ok(p) => {
                for r in p.rules {
                    self.engine.add_rule(r);
                }
                for f in p.facts {
                    self.engine.assert_fact(f);
                }
                true
            }
            Err(_) => false,
        }
    }

    fn on_alert(&mut self, ctx: &mut Ctx<'_>, alert: DomainAlertMsg) {
        self.stats.alerts += 1;
        // Cross-domain: the upstream host is not ours — hand the alert to
        // the peer domain manager that covers it.
        if !self.host_managers.contains_key(&alert.upstream.host) {
            if let Some(&peer) = self.peers.get(&alert.upstream.host) {
                self.stats.forwarded += 1;
                send_ctrl(ctx, peer, DOMAIN_MANAGER_PORT, WireMsg::DomainAlert(alert));
            }
            return;
        }
        let corr = self.next_correlation;
        self.next_correlation += 1;
        self.engine.assert_fact(
            Fact::new("alert")
                .with("corr", corr as i64)
                .with("client", Value::str(pid_to_string(alert.client)))
                .with("client-host", alert.from_host.0 as i64)
                .with("server", Value::str(pid_to_string(alert.upstream.pid)))
                .with("server-host", alert.upstream.host.0 as i64)
                .with("fps", alert.observed),
        );
        // Ask the server-side host manager for its statistics, with a
        // deadline: a lost query or reply must not leave the alert parked
        // in `pending` forever.
        if let Some(&hm) = self.host_managers.get(&alert.upstream.host) {
            self.stats.queries += 1;
            send_ctrl(
                ctx,
                hm,
                DOMAIN_MANAGER_PORT,
                WireMsg::StatsQuery(StatsQueryMsg {
                    reply_to: Endpoint::new(ctx.host_id(), DOMAIN_MANAGER_PORT),
                    correlation: corr,
                }),
            );
        }
        ctx.set_timer(STATS_QUERY_DEADLINE, TAG_QUERY_BASE + corr);
        self.pending.insert(corr, alert);
    }

    fn on_stats(&mut self, ctx: &mut Ctx<'_>, reply: StatsReplyMsg) {
        // Chaos: lose the reply on arrival — the deadline timer must
        // still diagnose from what we have (stats-timeout path).
        if qos_buggify::buggify!("dm.stats_reply.drop") {
            return;
        }
        // Late (the deadline already diagnosed without it) or duplicate
        // replies must not re-run diagnosis against a retracted alert.
        let Some(alert) = self.pending.remove(&reply.correlation) else {
            self.stats.late_replies += 1;
            return;
        };
        self.engine.assert_fact(
            Fact::new("server-stats")
                .with("corr", reply.correlation as i64)
                .with("load", reply.load_avg)
                .with("mem", reply.mem_utilization),
        );
        let run = self.engine.run(200);
        if self.telemetry.is_enabled() {
            self.telemetry.stage(
                ctx.now().as_micros(),
                alert.corr,
                Stage::Diagnose,
                &format!("dm:h{}", ctx.host_id().0),
                &pid_to_string(alert.client),
                || {
                    vec![
                        ("fired".into(), run.fired as f64),
                        ("load".into(), reply.load_avg),
                        ("mem".into(), reply.mem_utilization),
                    ]
                },
            );
        }
        let invocations = self.engine.take_invocations();
        for inv in invocations {
            self.dispatch(ctx, &inv, alert.corr);
        }
    }

    /// The stats query hit its deadline: the server-side host manager is
    /// unreachable, which from here is indistinguishable from a network
    /// partition on the path — diagnose from what we have. A
    /// `stats-timeout` fact joins the alert in working memory and the
    /// rule base (see `stats-timeout-reroute`) decides the action.
    fn on_query_timeout(&mut self, ctx: &mut Ctx<'_>, corr: u64) {
        let Some(alert) = self.pending.remove(&corr) else {
            return; // reply arrived in time; nothing to do
        };
        self.stats.query_timeouts += 1;
        self.engine
            .assert_fact(Fact::new("stats-timeout").with("corr", corr as i64));
        let run = self.engine.run(200);
        if self.telemetry.is_enabled() {
            self.telemetry.stage(
                ctx.now().as_micros(),
                alert.corr,
                Stage::Diagnose,
                &format!("dm:h{}", ctx.host_id().0),
                &pid_to_string(alert.client),
                || {
                    vec![
                        ("fired".into(), run.fired as f64),
                        ("stats_timeout".into(), 1.0),
                    ]
                },
            );
        }
        let invocations = self.engine.take_invocations();
        for inv in invocations {
            self.dispatch(ctx, &inv, alert.corr);
        }
    }

    /// Emit an Adapt-stage event for a decided action.
    fn emit_adapt(&self, ctx: &Ctx<'_>, corr: u64, action: &str) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.stage(
            ctx.now().as_micros(),
            corr,
            Stage::Adapt,
            &format!("dm:h{}", ctx.host_id().0),
            action,
            Vec::new,
        );
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, inv: &Invocation, corr: u64) {
        match inv.command.as_str() {
            "boost-server" | "boost-server-memory" => {
                let Some(pid) = inv.args.first().and_then(|v| match v {
                    Value::Str(s) | Value::Sym(s) => pid_from_str(s),
                    _ => None,
                }) else {
                    return;
                };
                let Some(&hm) = self.host_managers.get(&pid.host) else {
                    return;
                };
                if inv.command == "boost-server" {
                    self.stats.actions.push(DomainAction::BoostServer { pid });
                    self.emit_adapt(ctx, corr, "boost-server");
                    send_ctrl(
                        ctx,
                        hm,
                        DOMAIN_MANAGER_PORT,
                        WireMsg::AdjustRequest(AdjustRequestMsg {
                            pid,
                            steps: 20,
                            corr,
                        }),
                    );
                } else {
                    self.stats
                        .actions
                        .push(DomainAction::BoostServerMemory { pid });
                    self.emit_adapt(ctx, corr, "boost-server-memory");
                    // Memory boosts route through the same host-manager
                    // adjust interface with a small CPU nudge plus the
                    // host manager's own memory rules on the next local
                    // violation; the direct knob is the resident set.
                    ctx.memctl(pid, 64);
                }
            }
            "reroute" => {
                let (Some(a), Some(b)) = (
                    inv.args.first().and_then(Value::as_f64),
                    inv.args.get(1).and_then(Value::as_f64),
                ) else {
                    return;
                };
                let (a, b) = (HostId(a as u32), HostId(b as u32));
                if let Some(hops) = self.backup_routes.get(&route_key(a, b)) {
                    self.stats.actions.push(DomainAction::Reroute { a, b });
                    self.emit_adapt(ctx, corr, "reroute");
                    ctx.reroute(a, b, hops.clone());
                }
            }
            _ => {}
        }
    }
}

fn route_key(a: HostId, b: HostId) -> (HostId, HostId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

impl ProcessLogic for QosDomainManager {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Readable(port) => {
                let Some(msg) = ctx.recv(port) else { return };
                match decode_ctrl(&msg) {
                    Ok(Some(WireMsg::DomainAlert(a))) => self.on_alert(ctx, a),
                    Ok(Some(WireMsg::StatsReply(r))) => self.on_stats(ctx, r),
                    // Other control kinds, app payloads, and corrupt
                    // frames: not this process's business; processing
                    // cost is still charged below.
                    Ok(_) | Err(_) => {}
                }
                ctx.run(MANAGER_PROCESSING_COST);
                self.mirror_stats(ctx.host_id());
            }
            ProcEvent::Timer(tag) if tag >= TAG_QUERY_BASE => {
                self.on_query_timeout(ctx, tag - TAG_QUERY_BASE);
                ctx.run(MANAGER_PROCESSING_COST);
                self.mirror_stats(ctx.host_id());
            }
            ProcEvent::Start | ProcEvent::BurstDone | ProcEvent::Timer(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_key_symmetric() {
        assert_eq!(route_key(HostId(2), HostId(1)), (HostId(1), HostId(2)));
        assert_eq!(route_key(HostId(1), HostId(2)), (HostId(1), HostId(2)));
    }

    #[test]
    fn construction_loads_rules() {
        let dm = QosDomainManager::new(HashMap::new());
        assert!(dm.engine.rule_names().count() >= 3);
    }

    #[test]
    fn dynamic_rule_swap() {
        let mut dm = QosDomainManager::new(HashMap::new());
        assert!(dm.load_rules("(defrule custom (alert (corr ?c)) => (call custom-action ?c))"));
        assert!(dm.engine.rule_names().any(|n| n == "custom"));
        assert!(!dm.load_rules("(((broken"));
    }
}
