//! Process-liveness tracking for the QoS Host Manager.
//!
//! The paper's prototype assumed managed processes outlive the manager's
//! interest in them; a crashed video client would leave its CPU boost,
//! resident-set grant and working-memory facts behind forever. The
//! tracker closes that hole: a process that registers with a heartbeat
//! promise (see [`crate::messages::RegisterMsg::heartbeat`]) is expected
//! to re-register at least that often, and after [`GRACE_PERIODS`]
//! silent periods it is declared dead so the manager can retract its
//! facts and reclaim its allocations.
//!
//! Registration without a heartbeat promise is never reaped — a one-shot
//! registrant (a web server, a game session) must not be declared dead
//! just because it has nothing to say.

use std::collections::HashMap;

use qos_sim::{Dur, Pid, SimTime};

/// Missed heartbeat periods tolerated before a process is declared
/// dead. Must absorb transient control-message loss: under p message
/// loss, the false-positive probability per check is p^GRACE_PERIODS.
pub const GRACE_PERIODS: u32 = 4;

#[derive(Debug, Clone, Copy)]
struct Expectation {
    period: Dur,
    last_beat: SimTime,
}

/// Tracks which processes owe heartbeats and when they last delivered.
#[derive(Debug, Default)]
pub struct LivenessTracker {
    expected: HashMap<Pid, Expectation>,
}

impl LivenessTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        LivenessTracker::default()
    }

    /// Start (or refresh) tracking of `pid`, which promised a beat every
    /// `period`. Counts as a beat.
    pub fn track(&mut self, pid: Pid, period: Dur, now: SimTime) {
        self.expected.insert(
            pid,
            Expectation {
                period,
                last_beat: now,
            },
        );
    }

    /// Record a heartbeat. Unknown pids are ignored (a beat is not a
    /// registration).
    pub fn beat(&mut self, pid: Pid, now: SimTime) {
        if let Some(e) = self.expected.get_mut(&pid) {
            e.last_beat = now;
        }
    }

    /// Stop tracking `pid` (clean deregistration or completed reap).
    pub fn forget(&mut self, pid: Pid) {
        self.expected.remove(&pid);
    }

    /// Is `pid` currently tracked?
    pub fn tracks(&self, pid: Pid) -> bool {
        self.expected.contains_key(&pid)
    }

    /// Number of tracked processes.
    pub fn len(&self) -> usize {
        self.expected.len()
    }

    /// Processes overdue by more than [`GRACE_PERIODS`] periods, removed
    /// from tracking and returned for cleanup (deterministic order).
    pub fn reap(&mut self, now: SimTime) -> Vec<Pid> {
        let mut dead: Vec<Pid> = self
            .expected
            .iter()
            .filter(|(_, e)| now.since(e.last_beat) > e.period.mul_f64(GRACE_PERIODS as f64))
            .map(|(&pid, _)| pid)
            .collect();
        dead.sort();
        for pid in &dead {
            self.expected.remove(pid);
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_sim::HostId;

    fn pid(n: u32) -> Pid {
        Pid {
            host: HostId(0),
            local: n,
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    #[test]
    fn silent_process_is_reaped_after_grace() {
        let mut lt = LivenessTracker::new();
        lt.track(pid(1), Dur::from_secs(1), t(0));
        assert!(lt.reap(t(GRACE_PERIODS as u64)).is_empty(), "at the limit");
        assert_eq!(lt.reap(t(GRACE_PERIODS as u64 + 1)), vec![pid(1)]);
        assert!(!lt.tracks(pid(1)), "reaped pid is forgotten");
        assert!(lt.reap(t(100)).is_empty(), "reap is one-shot");
    }

    #[test]
    fn beats_keep_a_process_alive() {
        let mut lt = LivenessTracker::new();
        lt.track(pid(1), Dur::from_secs(1), t(0));
        for s in 1..20 {
            lt.beat(pid(1), t(s));
            assert!(lt.reap(t(s)).is_empty());
        }
    }

    #[test]
    fn beat_for_unknown_pid_does_not_register() {
        let mut lt = LivenessTracker::new();
        lt.beat(pid(9), t(0));
        assert!(!lt.tracks(pid(9)));
        assert_eq!(lt.len(), 0);
    }

    #[test]
    fn forget_stops_tracking() {
        let mut lt = LivenessTracker::new();
        lt.track(pid(1), Dur::from_secs(1), t(0));
        lt.forget(pid(1));
        assert!(lt.reap(t(100)).is_empty());
    }

    #[test]
    fn reap_returns_only_overdue_in_order() {
        let mut lt = LivenessTracker::new();
        lt.track(pid(3), Dur::from_secs(1), t(0));
        lt.track(pid(1), Dur::from_secs(1), t(0));
        lt.track(pid(2), Dur::from_secs(60), t(0));
        assert_eq!(lt.reap(t(10)), vec![pid(1), pid(3)]);
        assert!(lt.tracks(pid(2)), "long-period process unaffected");
    }

    #[test]
    fn re_track_counts_as_beat() {
        let mut lt = LivenessTracker::new();
        lt.track(pid(1), Dur::from_secs(1), t(0));
        lt.track(pid(1), Dur::from_secs(1), t(10));
        assert!(lt.reap(t(11)).is_empty());
    }
}
