//! # qos-manager — the QoS management plane
//!
//! The manager half of the Section 5 enforcement architecture:
//!
//! * [`messages`] — the control messages between coordinators, host
//!   managers, the domain manager and the policy agent, plus well-known
//!   ports;
//! * [`resource`] — resource managers, "each managing a single system
//!   resource": CPU (time-sharing priority boosts or real-time CPU
//!   units) and memory (resident pages);
//! * [`rules`] — the default CLIPS-format rule sets (Section 5.3),
//!   including the fair-share vs differentiated administrative variants
//!   and the domain manager's server/network discrimination rules;
//! * [`host`] — the QoS Host Manager process: violations in, inference,
//!   resource-manager actions or domain escalation out;
//! * [`domain`] — the QoS Domain Manager process: cross-host fault
//!   localization (query server-side statistics; boost the server or
//!   reroute around a congested switch);
//! * [`protocol`] — the registration/heartbeat/reap lifecycle behind a
//!   pure state-machine trait: a small model the explicit-state checker
//!   explores exhaustively, and a real-manager adapter that conformance
//!   tests replay the same action sequences against;
//! * [`live`] — the same components on real threads with real clocks,
//!   used to reproduce the paper's instrumentation-overhead measurements;
//! * [`transport`] — the carriers moving `qos_wire` frames: simulated
//!   network, in-proc channel, and real sockets (TCP / Unix-domain).

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod agent_proc;
pub mod domain;
pub mod host;
pub mod live;
pub mod liveness;
pub mod messages;
pub mod protocol;
pub mod resource;
pub mod rules;
pub mod transport;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::agent_proc::{AgentProcStats, PolicyAgentProcess};
    pub use crate::domain::{DomainAction, DomainStats, QosDomainManager, RouteError};
    pub use crate::host::{pid_from_str, pid_to_string, HostMgrStats, QosHostManager};
    pub use crate::live::{
        standard_live_repo, Driver, ListenSpec, LiveBuilder, LiveClock, LiveError, LiveHostManager,
        LiveManagerStats, LiveProcess, ReportBatchPolicy, SUBSCRIBER_QUEUE_CAPACITY,
        TELEMETRY_METRICS_INTERVAL, TELEMETRY_PUBLISH_INTERVAL,
    };
    pub use crate::liveness::{LivenessTracker, GRACE_PERIODS};
    pub use crate::messages::{
        AdaptMsg, AdjustRequestMsg, AgentReply, AgentRequest, DomainAlertMsg, RegisterMsg,
        RuleUpdateMsg, StatsQueryMsg, StatsReplyMsg, Upstream, ViolationMsg, WireMsg,
        CTRL_MSG_BYTES, DISCOVERY_LEASE, DISCOVERY_PORT, DOMAIN_MANAGER_PORT, HOST_MANAGER_PORT,
        POLICY_AGENT_PORT, REGISTRATION_HEARTBEAT_PERIOD, STATS_QUERY_DEADLINE,
    };
    pub use crate::protocol::{
        apply as apply_lifecycle_op, conformance_divergence, real_grace, Bugs, LifecycleAbs,
        LifecycleHost, LifecycleOp, PureHost, RealLifecycleHost, LIFECYCLE_OPS, MAX_REPORTS,
    };
    pub use crate::resource::{CpuAllocation, CpuManager, CpuStrategy, Direction, MemoryManager};
    pub use crate::rules::{
        domain_base_facts, domain_rules, host_base_facts, host_rules_differentiated,
        host_rules_fair, overload_rules, proactive_rules, BUFFER_CUTOFF,
    };
    pub use crate::transport::{
        decode_ctrl, send_ctrl, send_ctrl_batch, set_wire_mode, wire_mode, ChannelTransport,
        FlushPolicy, ReconnectPolicy, SockAddr, SocketTransport, SocketTransportBuilder,
        TelemetryTap, WireMode, WireTransport,
    };
}

pub use prelude::*;
