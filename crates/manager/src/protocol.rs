//! The registration/heartbeat/reap lifecycle as a pure state machine.
//!
//! The model checker (`tests/model_check.rs`) needs a small-model
//! abstraction of the host manager's lifecycle handling — small enough
//! to explore exhaustively, faithful enough that a property proved of
//! the model says something about `host.rs`. This module keeps those
//! two artifacts glued together:
//!
//! - [`LifecycleHost`] is the abstract protocol surface: the events a
//!   host manager sees for one tracked process, plus an abstraction
//!   function [`LifecycleHost::abs`].
//! - [`PureHost`] implements it as a handful of booleans and a
//!   saturating counter — cloneable, hashable, exhaustively checkable.
//!   Its optional [`Bugs`] flags re-introduce historical/candidate
//!   bugs so the checker can demonstrate it would have caught them.
//! - [`RealLifecycleHost`] implements the same trait by driving a real
//!   [`QosHostManager`] (real `liveness.rs`, real two-phase reap, real
//!   registry). Conformance tests replay action sequences against both
//!   implementations and compare abstractions after every step, so the
//!   model cannot silently drift from the code it abstracts.
//!
//! ## What is abstracted away
//!
//! One process, logical time in heartbeat periods, resources collapsed
//! to one "grant" bit (the CPU/memory ledger entry the reap must
//! reclaim). Violations/adaptations are modelled only at the level the
//! invariants need: a grant lands, and the reap must release it
//! exactly once. Kernel-side scheduling state is out of scope — the
//! ledger is what a manager can reclaim, and a manager restart resets
//! the ledger by construction.

use std::collections::HashMap;

use qos_sim::{Dur, HostId, Pid, SimTime};

use crate::host::QosHostManager;
use crate::liveness::GRACE_PERIODS;
use crate::messages::RegisterMsg;

/// The abstraction both implementations project into: compare two of
/// these to ask "are the model and the code in the same place?"
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LifecycleAbs {
    /// In the registry.
    pub registered: bool,
    /// Owed a liveness sweep (heartbeat promise active).
    pub tracked: bool,
    /// Declared dead, reclamation pending (between reap phases).
    pub pending_reap: bool,
    /// Holds a resource grant in the manager's ledger.
    pub holds_grant: bool,
    /// Reaped and not re-registered since (stale-violation tombstone).
    pub tombstoned: bool,
}

/// The lifecycle protocol surface for one heartbeat-promising process.
pub trait LifecycleHost {
    /// A registration/heartbeat message is delivered.
    fn deliver_register(&mut self);
    /// An adaptation lands a resource grant for the process.
    fn grant(&mut self);
    /// One heartbeat period passes with no message from the process.
    fn advance_period(&mut self);
    /// A full liveness sweep: declare the overdue dead, then reclaim.
    fn sweep(&mut self);
    /// A sweep interrupted between its phases: the overdue process is
    /// declared dead but nothing is reclaimed yet (crash/preemption
    /// mid-reap — the window the reap/re-register race lives in).
    fn sweep_partial(&mut self);
    /// The manager crashes and restarts with empty volatile state.
    fn crash_restart(&mut self);
    /// Project into the common abstraction.
    fn abs(&self) -> LifecycleAbs;
}

/// Deliberately (re-)introducible defects, for demonstrating that the
/// checker catches them. All `false` models the shipped code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bugs {
    /// Reap phase B forgets to release the resource grant (the classic
    /// "retract facts, leak the allocation" slip).
    pub skip_release_on_reap: bool,
    /// Registration does not cancel a pending reap — the pre-fix
    /// reap/re-register race: the sweep's phase B later destroys a
    /// process that just proved itself alive.
    pub register_ignores_pending: bool,
    /// No duplicate-violation suppression: a redelivered report adapts
    /// twice.
    pub no_violation_dedup: bool,
}

/// Maximum distinct violation reports the small model tracks.
pub const MAX_REPORTS: usize = 2;

/// The pure small model of one process's lifecycle inside the host
/// manager. `grace` mirrors [`GRACE_PERIODS`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PureHost {
    /// Tolerated silent periods before a tracked process is overdue.
    pub grace: u8,
    /// Seeded defects (constant along a run).
    pub bugs: Bugs,
    /// In the registry.
    pub registered: bool,
    /// Heartbeat promise active (liveness tracking).
    pub tracked: bool,
    /// Silent periods since the last registration, saturating just
    /// past `grace` (further silence is indistinguishable).
    pub overdue: u8,
    /// Declared dead, not yet reclaimed.
    pub pending_reap: bool,
    /// Resource grant in the ledger.
    pub holds_grant: bool,
    /// Reaped tombstone (stale violations are dropped).
    pub tombstoned: bool,
    /// Violation reports already adapted (duplicate suppression
    /// memory; volatile, reset on crash and on reap).
    pub handled: [bool; MAX_REPORTS],
}

impl PureHost {
    /// Fresh manager state for one process, defect-free.
    pub fn new(grace: u8) -> Self {
        PureHost::with_bugs(grace, Bugs::default())
    }

    /// Fresh manager state with seeded defects.
    pub fn with_bugs(grace: u8, bugs: Bugs) -> Self {
        PureHost {
            grace,
            bugs,
            registered: false,
            tracked: false,
            overdue: 0,
            pending_reap: false,
            holds_grant: false,
            tombstoned: false,
            handled: [false; MAX_REPORTS],
        }
    }

    /// Reap phase A: declare the process dead if it is overdue.
    fn declare(&mut self) {
        if self.tracked && self.overdue > self.grace {
            self.tracked = false;
            self.pending_reap = true;
        }
    }

    /// Reap phase B: reclaim everything a declared-dead process holds.
    fn reclaim(&mut self) {
        if !self.pending_reap {
            return;
        }
        self.pending_reap = false;
        self.registered = false;
        if !self.bugs.skip_release_on_reap {
            self.holds_grant = false;
        }
        self.tombstoned = true;
        self.handled = [false; MAX_REPORTS];
    }

    /// A violation report with id `report` is delivered. Returns true
    /// if the manager adapted (granted a resource) in response — the
    /// checker's ghost state watches this for double adaptation.
    pub fn deliver_violation(&mut self, report: usize) -> bool {
        if self.tombstoned {
            // Stale: the sender was declared dead and has not
            // re-registered. Acting would leak an unreclaimable grant.
            return false;
        }
        if self.handled[report] && !self.bugs.no_violation_dedup {
            // Transport duplicate of an already-adapted report.
            return false;
        }
        self.handled[report] = true;
        self.holds_grant = true;
        true
    }
}

impl LifecycleHost for PureHost {
    fn deliver_register(&mut self) {
        if !self.bugs.register_ignores_pending {
            self.pending_reap = false;
        }
        self.registered = true;
        self.tracked = true;
        self.overdue = 0;
        self.tombstoned = false;
    }

    fn grant(&mut self) {
        self.holds_grant = true;
    }

    fn advance_period(&mut self) {
        if self.tracked && self.overdue <= self.grace {
            self.overdue += 1;
        }
    }

    fn sweep(&mut self) {
        self.declare();
        self.reclaim();
    }

    fn sweep_partial(&mut self) {
        self.declare();
    }

    fn crash_restart(&mut self) {
        let grace = self.grace;
        let bugs = self.bugs;
        *self = PureHost::with_bugs(grace, bugs);
    }

    fn abs(&self) -> LifecycleAbs {
        LifecycleAbs {
            registered: self.registered,
            tracked: self.tracked,
            pending_reap: self.pending_reap,
            holds_grant: self.holds_grant,
            tombstoned: self.tombstoned,
        }
    }
}

/// The same protocol surface, implemented by a real [`QosHostManager`]
/// driven through its actual `handle_register`/`reap_dead` paths —
/// real `LivenessTracker`, real two-phase reap, real tombstones.
///
/// `sweep_partial` uses the `hm.reap.partial` buggify point to stop
/// the real reap between phases, so it only works in builds where
/// buggify is compiled in; conformance tests guard on
/// [`qos_buggify::compiled_in`].
pub struct RealLifecycleHost {
    hm: QosHostManager,
    pid: Pid,
    now: SimTime,
    period: Dur,
}

impl RealLifecycleHost {
    /// A fresh manager tracking one process with a 1 s heartbeat
    /// promise.
    pub fn new() -> Self {
        RealLifecycleHost {
            hm: QosHostManager::new(None),
            pid: Pid {
                host: HostId(0),
                local: 1,
            },
            now: SimTime::ZERO,
            period: Dur::from_secs(1),
        }
    }

    fn registration(&self) -> RegisterMsg {
        RegisterMsg {
            pid: self.pid,
            control_port: 100,
            executable: "model".into(),
            application: "model-check".into(),
            role: "*".into(),
            weight: 1.0,
            heartbeat: Some(self.period),
        }
    }
}

impl Default for RealLifecycleHost {
    fn default() -> Self {
        RealLifecycleHost::new()
    }
}

impl LifecycleHost for RealLifecycleHost {
    fn deliver_register(&mut self) {
        let reg = self.registration();
        self.hm.handle_register(self.now, &reg);
    }

    fn grant(&mut self) {
        self.hm.grant_boost(self.pid);
    }

    fn advance_period(&mut self) {
        self.now = SimTime::from_micros(self.now.as_micros() + self.period.as_micros());
    }

    fn sweep(&mut self) {
        // Chaos must not perturb a conformance sweep.
        qos_buggify::suppress("hm.reap.defer");
        qos_buggify::suppress("hm.reap.partial");
        self.hm.reap_dead(self.now);
        qos_buggify::clear("hm.reap.defer");
        qos_buggify::clear("hm.reap.partial");
    }

    fn sweep_partial(&mut self) {
        qos_buggify::suppress("hm.reap.defer");
        qos_buggify::clear("hm.reap.partial");
        qos_buggify::force("hm.reap.partial", 1);
        self.hm.reap_dead(self.now);
        // The partial point only evaluates when something was actually
        // declared; drop an unspent force so it cannot leak into the
        // next sweep.
        qos_buggify::clear("hm.reap.partial");
        qos_buggify::clear("hm.reap.defer");
    }

    fn crash_restart(&mut self) {
        // A replacement manager takes over the well-known port with
        // empty volatile state; wall-clock time keeps running.
        self.hm = QosHostManager::new(None);
    }

    fn abs(&self) -> LifecycleAbs {
        LifecycleAbs {
            registered: self.hm.is_registered(self.pid),
            tracked: self.hm.liveness_tracks(self.pid),
            pending_reap: self.hm.reap_pending(self.pid),
            holds_grant: self.hm.cpu_allocation(self.pid).boost > 0,
            tombstoned: self.hm.is_tombstoned(self.pid),
        }
    }
}

/// The trait-level action alphabet, for conformance replay drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleOp {
    /// [`LifecycleHost::deliver_register`]
    DeliverRegister,
    /// [`LifecycleHost::grant`]
    Grant,
    /// [`LifecycleHost::advance_period`]
    AdvancePeriod,
    /// [`LifecycleHost::sweep`]
    Sweep,
    /// [`LifecycleHost::sweep_partial`]
    SweepPartial,
    /// [`LifecycleHost::crash_restart`]
    CrashRestart,
}

/// Every operation in the alphabet.
pub const LIFECYCLE_OPS: [LifecycleOp; 6] = [
    LifecycleOp::DeliverRegister,
    LifecycleOp::Grant,
    LifecycleOp::AdvancePeriod,
    LifecycleOp::Sweep,
    LifecycleOp::SweepPartial,
    LifecycleOp::CrashRestart,
];

/// Apply one op to any implementation.
pub fn apply<H: LifecycleHost>(host: &mut H, op: LifecycleOp) {
    match op {
        LifecycleOp::DeliverRegister => host.deliver_register(),
        LifecycleOp::Grant => host.grant(),
        LifecycleOp::AdvancePeriod => host.advance_period(),
        LifecycleOp::Sweep => host.sweep(),
        LifecycleOp::SweepPartial => host.sweep_partial(),
        LifecycleOp::CrashRestart => host.crash_restart(),
    }
}

/// The grace the pure model should use to mirror the real tracker.
pub fn real_grace() -> u8 {
    GRACE_PERIODS as u8
}

/// Replay `ops` against a fresh pure model and a fresh real manager in
/// lockstep, returning the first index where their abstractions
/// diverge (with both abstractions), or `None` on full agreement.
pub fn conformance_divergence(ops: &[LifecycleOp]) -> Option<(usize, LifecycleAbs, LifecycleAbs)> {
    let mut pure = PureHost::new(real_grace());
    let mut real = RealLifecycleHost::new();
    if pure.abs() != real.abs() {
        return Some((0, pure.abs(), real.abs()));
    }
    for (i, &op) in ops.iter().enumerate() {
        apply(&mut pure, op);
        apply(&mut real, op);
        if pure.abs() != real.abs() {
            return Some((i + 1, pure.abs(), real.abs()));
        }
    }
    None
}

/// A process-lifetime ledger used by tests to double-check "reclaimed
/// exactly once" style accounting outside the checker.
#[derive(Debug, Default)]
pub struct GrantLedger {
    granted: HashMap<Pid, u32>,
    released: HashMap<Pid, u32>,
}

impl GrantLedger {
    /// Record a grant.
    pub fn grant(&mut self, pid: Pid) {
        *self.granted.entry(pid).or_default() += 1;
    }

    /// Record a release.
    pub fn release(&mut self, pid: Pid) {
        *self.released.entry(pid).or_default() += 1;
    }

    /// Releases never outnumber grants, per pid.
    pub fn balanced(&self) -> bool {
        self.released
            .iter()
            .all(|(pid, &r)| r <= self.granted.get(pid).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lifecycle_happy_path() {
        let mut h = PureHost::new(2);
        h.deliver_register();
        assert!(h.abs().registered && h.abs().tracked);
        h.grant();
        for _ in 0..3 {
            h.advance_period();
        }
        h.sweep();
        let a = h.abs();
        assert!(!a.registered && !a.tracked && !a.holds_grant && a.tombstoned);
        // Re-registration clears the tombstone.
        h.deliver_register();
        assert!(h.abs().registered && !h.abs().tombstoned);
    }

    #[test]
    fn pure_partial_sweep_then_register_cancels_reap() {
        let mut h = PureHost::new(2);
        h.deliver_register();
        h.grant();
        for _ in 0..3 {
            h.advance_period();
        }
        h.sweep_partial();
        assert!(h.abs().pending_reap && h.abs().registered);
        h.deliver_register();
        assert!(!h.abs().pending_reap, "registration cancels the reap");
        h.sweep();
        let a = h.abs();
        assert!(a.registered && a.holds_grant, "survivor keeps its grant");
    }

    #[test]
    fn pure_race_bug_strands_a_half_registered_process() {
        let mut h = PureHost::with_bugs(
            2,
            Bugs {
                register_ignores_pending: true,
                ..Bugs::default()
            },
        );
        h.deliver_register();
        for _ in 0..3 {
            h.advance_period();
        }
        h.sweep_partial();
        h.deliver_register();
        h.sweep();
        let a = h.abs();
        assert!(
            a.tracked && !a.registered,
            "the seeded bug leaves a tracked-but-unregistered zombie"
        );
    }

    #[test]
    fn pure_violation_dedup_and_tombstone() {
        let mut h = PureHost::new(2);
        h.deliver_register();
        assert!(h.deliver_violation(0), "first delivery adapts");
        assert!(!h.deliver_violation(0), "redelivery is suppressed");
        assert!(h.deliver_violation(1), "a distinct report adapts");
        for _ in 0..3 {
            h.advance_period();
        }
        h.sweep();
        assert!(
            !h.deliver_violation(0),
            "post-reap (tombstoned) violations are stale"
        );
        assert!(!h.abs().holds_grant, "stale report granted nothing");
    }

    #[test]
    fn real_and_pure_agree_on_scripted_scenarios() {
        use LifecycleOp::*;
        if !qos_buggify::compiled_in() {
            return;
        }
        let scripts: [&[LifecycleOp]; 5] = [
            &[DeliverRegister, Grant, AdvancePeriod, Sweep],
            &[
                DeliverRegister,
                Grant,
                AdvancePeriod,
                AdvancePeriod,
                AdvancePeriod,
                AdvancePeriod,
                AdvancePeriod,
                Sweep,
                DeliverRegister,
            ],
            &[
                DeliverRegister,
                AdvancePeriod,
                AdvancePeriod,
                AdvancePeriod,
                AdvancePeriod,
                AdvancePeriod,
                SweepPartial,
                DeliverRegister,
                Sweep,
            ],
            &[DeliverRegister, Grant, CrashRestart, DeliverRegister, Sweep],
            &[
                Grant,
                Sweep,
                SweepPartial,
                DeliverRegister,
                CrashRestart,
                AdvancePeriod,
                Sweep,
            ],
        ];
        for (i, script) in scripts.iter().enumerate() {
            assert_eq!(
                conformance_divergence(script),
                None,
                "script {i} diverged: {script:?}"
            );
        }
    }

    #[test]
    fn ledger_balance() {
        let mut l = GrantLedger::default();
        let p = Pid {
            host: HostId(0),
            local: 1,
        };
        l.grant(p);
        l.release(p);
        assert!(l.balanced());
        l.release(p);
        assert!(!l.balanced());
    }
}
