//! The QoS Host Manager (Section 5.3): one per managed host. Receives
//! violation notifications from coordinators, runs its inference engine
//! (rule base + fact repository, forward chaining) to determine the cause
//! and corrective action, and drives the resource managers — or escalates
//! to the QoS Domain Manager when the cause is not local.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use qos_discovery::{DiscAction, DiscClient, DiscEvent};
use qos_inference::prelude::*;
use qos_sim::prelude::*;
use qos_telemetry::{Stage, Telemetry};

use crate::liveness::LivenessTracker;
use crate::messages::{
    AdaptMsg, DomainAlertMsg, RegisterMsg, StatsReplyMsg, ViolationMsg, WireMsg, HOST_MANAGER_PORT,
    MANAGER_PROCESSING_COST,
};
use crate::resource::{CpuManager, Direction, MemoryManager};
use crate::rules::{host_base_facts, host_rules_fair};
use crate::transport::{decode_ctrl, send_ctrl, Backoff};

/// Timer tag for the periodic liveness sweep.
const TAG_LIVENESS_SWEEP: u64 = 1;
/// Timer tag for the discovery announce-retry backoff.
const TAG_DISC_RETRY: u64 = 2;
/// Timer tag for the discovery lease renewal.
const TAG_DISC_RENEW: u64 = 3;

/// How often the host manager checks for silent (dead) processes.
const LIVENESS_SWEEP_PERIOD: Dur = Dur::from_secs(1);

/// Format a [`Pid`] the way rules see it.
pub fn pid_to_string(pid: Pid) -> String {
    format!("h{}:p{}", pid.host.0, pid.local)
}

/// Parse a rule-side pid string back into a [`Pid`].
pub fn pid_from_str(s: &str) -> Option<Pid> {
    let (h, p) = s.split_once(":p")?;
    let h = h.strip_prefix('h')?.parse().ok()?;
    let p = p.parse().ok()?;
    Some(Pid {
        host: HostId(h),
        local: p,
    })
}

/// Counters exposed for experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct HostMgrStats {
    /// Violation notifications received.
    pub violations: u64,
    /// CPU adjustments issued (grow).
    pub cpu_boosts: u64,
    /// CPU relaxations issued (shrink).
    pub cpu_relaxations: u64,
    /// Memory adjustments issued.
    pub mem_adjustments: u64,
    /// Escalations to the domain manager.
    pub domain_alerts: u64,
    /// Rule updates applied.
    pub rule_updates: u64,
    /// Registrations received.
    pub registrations: u64,
    /// Proactive nudges issued (trend-policy violations).
    pub nudges: u64,
    /// Application-adaptation requests sent (overload handling).
    pub adaptations: u64,
    /// Processes declared dead by the liveness sweep (facts retracted,
    /// allocations reclaimed).
    pub deaths: u64,
    /// Violations no diagnosis rule matched (retracted by the
    /// catch-all rule so they cannot accumulate).
    pub unhandled: u64,
    /// Control frames that failed to decode (corrupt/truncated/unknown
    /// version). Counted, never fatal: a bad peer cannot panic the
    /// manager.
    pub decode_errors: u64,
    /// Violation notifications discarded as duplicates (same report
    /// redelivered within [`DUP_VIOLATION_WINDOW`] — at-least-once
    /// transports may double-deliver, and one violation must not
    /// trigger two concurrent adaptations).
    pub dup_violations: u64,
    /// Times this host lost its domain manager and re-entered discovery
    /// (mirrored as `disc.rediscoveries`). Only moves when the manager
    /// was built `with_discovery`.
    pub rediscoveries: u64,
    /// Violations discarded because the sender had already been
    /// declared dead (a reordered report outliving its process). Acting
    /// on one would leak a CPU boost no liveness sweep can reclaim.
    pub stale_violations: u64,
    /// Batch frames received (each carrying N coalesced control
    /// messages). Mirrored as `wire.batch.frames`; per-frame message
    /// counts land in the `wire.batch.msgs_per_frame` histogram.
    pub batch_frames: u64,
}

/// The host manager process.
pub struct QosHostManager {
    engine: Engine,
    cpu: CpuManager,
    mem: MemoryManager,
    /// Domain manager endpoint, if this host participates in a domain.
    /// Hand-wired by [`QosHostManager::new`]; under discovery it is
    /// written (and cleared) by the [`DiscClient`] bind/unbind actions.
    domain: Option<Endpoint>,
    /// Discovery state, when the domain manager is found dynamically
    /// instead of being configured.
    disc: Option<DiscState>,
    registry: HashMap<Pid, RegisterMsg>,
    /// Consecutive at-cap violations per process (gates overload
    /// adaptation: a transient brush with the cap must not degrade the
    /// application).
    overload_streak: HashMap<Pid, u32>,
    /// Heartbeat bookkeeping for registrants that promised one.
    liveness: LivenessTracker,
    /// Pids the liveness tracker has declared dead whose facts and
    /// allocations are not yet reclaimed. The reap is two-phase
    /// (declare, then reclaim) so a heartbeat racing the sweep can
    /// cancel the reclamation instead of leaving a half-registered
    /// process; normally both phases run back-to-back and this is
    /// empty between events.
    pending_reap: Vec<Pid>,
    /// Duplicate-violation filter: per-pid fingerprint and arrival time
    /// of the last accepted report.
    last_violation: HashMap<Pid, (u64, SimTime)>,
    /// Tombstones for reaped pids. A violation that arrives *after* its
    /// sender was declared dead is stale — acting on it would grant a
    /// boost nobody will ever reclaim (the pid is no longer tracked).
    /// Cleared by re-registration, which proves the pid is alive again.
    reaped: HashSet<Pid>,
    /// Counters for experiments.
    pub stats: HostMgrStats,
    /// Telemetry handle (inert by default): Diagnose/Adapt stage events
    /// plus `hm.*` registry mirrors of [`HostMgrStats`].
    telemetry: Telemetry,
    /// Stats values already mirrored into the registry (delta tracking).
    mirrored: HostMgrStats,
}

/// Discovery bookkeeping for a host manager that finds its domain
/// manager dynamically. The protocol logic is the pure
/// [`DiscClient`]; this adds the transport-facing pieces (where the
/// discovery server is, retry backoff).
struct DiscState {
    /// The discovery server's control endpoint.
    server: Endpoint,
    /// The pure protocol machine. Created lazily at `Start`, when the
    /// process learns which host it runs on.
    client: Option<DiscClient>,
    /// Announce-retry backoff — the same jittered doubling envelope the
    /// socket transport uses for reconnects.
    backoff: Backoff,
}

/// Consecutive at-allocation-cap violations before the manager asks the
/// application itself to adapt.
pub const OVERLOAD_PATIENCE: u32 = 3;

/// A violation bit-identical to the previous one from the same pid and
/// arriving within this window is a transport duplicate, not a fresh
/// report: coordinators renotify at a 1 s cadence, so genuine repeats
/// are at least that far apart, while fault-layer duplicates land
/// (near-)simultaneously.
pub const DUP_VIOLATION_WINDOW: Dur = Dur::from_millis(500);

impl QosHostManager {
    /// A host manager with the fair-share default rules and the
    /// prototype's TS-boost CPU strategy.
    pub fn new(domain: Option<Endpoint>) -> Self {
        let mut hm = QosHostManager {
            engine: Engine::new(),
            cpu: CpuManager::ts_default(),
            mem: MemoryManager::new(),
            domain,
            disc: None,
            registry: HashMap::new(),
            overload_streak: HashMap::new(),
            liveness: LivenessTracker::new(),
            pending_reap: Vec::new(),
            last_violation: HashMap::new(),
            reaped: HashSet::new(),
            stats: HostMgrStats::default(),
            telemetry: Telemetry::disabled(),
            mirrored: HostMgrStats::default(),
        };
        hm.load_rules(&host_rules_fair());
        hm.load_rules(&host_base_facts());
        hm
    }

    /// Discover the domain manager through the discovery server at
    /// `server` instead of hand-wiring it: on start the manager
    /// announces (with `seed`-jittered retry backoff), binds to the
    /// assigned domain manager, renews its lease at half the lease
    /// period, and re-discovers with a fresh epoch when renewals go
    /// unacknowledged. Any endpoint passed to [`QosHostManager::new`]
    /// serves only until the first assignment arrives.
    pub fn with_discovery(mut self, server: Endpoint, seed: u64) -> Self {
        self.disc = Some(DiscState {
            server,
            client: None,
            backoff: Backoff::new(Duration::from_millis(50), Duration::from_millis(800), seed),
        });
        self
    }

    /// The domain manager currently in use (configured or discovered).
    pub fn domain_endpoint(&self) -> Option<Endpoint> {
        self.domain
    }

    /// The discovered domain binding, if this manager runs discovery
    /// and currently holds a lease.
    pub fn discovered_domain(&self) -> Option<DomainId> {
        self.disc.as_ref()?.client.as_ref()?.bound().map(|(d, _)| d)
    }

    /// Replace the CPU strategy (ablation: TS boosts vs RT units).
    pub fn with_cpu_manager(mut self, cpu: CpuManager) -> Self {
        self.cpu = cpu;
        self
    }

    /// Attach a telemetry handle; the manager emits Diagnose/Adapt stage
    /// events for correlated violations and mirrors its counters into
    /// the registry under `hm.*`.
    pub fn with_telemetry(mut self, t: &Telemetry) -> Self {
        self.telemetry = t.clone();
        self
    }

    /// Replace/extend the rule base from CLIPS text. Rules with known
    /// names are replaced in place.
    pub fn load_rules(&mut self, text: &str) -> bool {
        match parse_program(text) {
            Ok(p) => {
                for r in p.rules {
                    self.engine.add_rule(r);
                }
                for f in p.facts {
                    self.engine.assert_fact(f);
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Remove a rule by name.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        self.engine.remove_rule(name)
    }

    /// Names of loaded rules.
    pub fn rule_names(&self) -> Vec<String> {
        self.engine.rule_names().map(str::to_string).collect()
    }

    /// Diagnostic: the inference engine's retained firing trace (a
    /// bounded ring buffer — the most recent entries only).
    pub fn engine_trace(&self) -> Vec<String> {
        self.engine.trace().map(str::to_string).collect()
    }

    /// Drain the engine's retained firing trace.
    pub fn take_engine_trace(&mut self) -> Vec<String> {
        self.engine.take_trace()
    }

    /// Resize the engine's trace ring buffer (minimum 1).
    pub fn set_engine_trace_capacity(&mut self, capacity: usize) {
        self.engine.set_trace_capacity(capacity);
    }

    /// Switch the embedded engine between its incremental matcher
    /// (default) and the naive full-rematch oracle — the "before" arm of
    /// the scale benchmark; both produce identical firing sequences.
    pub fn use_naive_matcher(&mut self, on: bool) {
        self.engine.use_naive_matcher(on);
    }

    /// Lifetime join work performed by the embedded engine's matcher
    /// (candidate facts examined; see `RunStats::activations`).
    pub fn engine_join_work(&self) -> u64 {
        self.engine.join_work_total()
    }

    /// Toggle per-phase wall-clock profiling (match / agenda / fire) in
    /// the embedded engine. Off by default; the scale benchmark turns it
    /// on to break a violation's budget down by phase.
    pub fn enable_engine_phase_profile(&mut self, on: bool) {
        self.engine.enable_phase_profile(on);
    }

    /// Drain the embedded engine's per-phase wall-clock counters.
    pub fn take_engine_phase_profile(&mut self) -> qos_inference::PhaseProfile {
        self.engine.take_phase_profile()
    }

    /// Diagnostic: current fact count in the engine's working memory.
    pub fn fact_count(&self) -> usize {
        self.engine.facts().len()
    }

    /// Diagnostic: live facts of one template.
    pub fn facts_of(&self, template: &str) -> usize {
        self.engine.facts().by_template(template).count()
    }

    /// Current CPU allocation of a managed process.
    pub fn cpu_allocation(&self, pid: Pid) -> crate::resource::CpuAllocation {
        self.cpu.allocation(pid)
    }

    fn weight_of(&self, pid: Pid) -> f64 {
        self.registry.get(&pid).map_or(1.0, |r| r.weight)
    }

    /// Is `pid` currently registered with this manager?
    pub fn is_registered(&self, pid: Pid) -> bool {
        self.registry.contains_key(&pid)
    }

    /// Registration is idempotent and keyed on the process id: the
    /// heartbeat protocol re-sends [`RegisterMsg`] at-least-once, and a
    /// repeat must neither double-count [`HostMgrStats::registrations`]
    /// nor disturb existing allocations. A re-registration counts as a
    /// liveness heartbeat, refreshes the stored details, and cancels a
    /// pending reap — a process that just proved itself alive between
    /// the sweep's declare and reclaim phases keeps its facts and
    /// allocations intact (the reap/re-register race).
    pub(crate) fn handle_register(&mut self, now: SimTime, r: &RegisterMsg) {
        self.pending_reap.retain(|&p| p != r.pid);
        self.reaped.remove(&r.pid);
        if self.registry.insert(r.pid, r.clone()).is_none() {
            self.stats.registrations += 1;
        }
        match r.heartbeat {
            Some(period) => self.liveness.track(r.pid, period, now),
            None => self.liveness.forget(r.pid),
        }
    }

    /// Declare silent heartbeat-promising processes dead: retract their
    /// working-memory facts and reclaim every resource granted to them,
    /// so a crashed process cannot pin a CPU boost or memory grant
    /// forever. Two phases — declare (liveness decides who is overdue)
    /// and reclaim (facts retracted, allocations released, registry
    /// entry dropped) — with buggify able to lose the manager between
    /// them, modelling a crash or preemption mid-reap.
    pub(crate) fn reap_dead(&mut self, now: SimTime) {
        if qos_buggify::buggify!("hm.reap.defer") {
            // Chaos: the sweep timer fired but the manager was too busy
            // to act — the whole sweep slides to the next period.
            return;
        }
        let mut declared = self.liveness.reap(now);
        self.pending_reap.append(&mut declared);
        if !self.pending_reap.is_empty() && qos_buggify::buggify!("hm.reap.partial") {
            // Chaos: declared but not reclaimed. A racing heartbeat may
            // now legitimately cancel the reap; anything still pending
            // is reclaimed by the next sweep.
            return;
        }
        self.reclaim_pending();
    }

    /// Reap phase B: irrevocably forget every still-pending dead pid.
    fn reclaim_pending(&mut self) {
        for pid in std::mem::take(&mut self.pending_reap) {
            self.stats.deaths += 1;
            let pid_s = pid_to_string(pid);
            self.engine
                .retract_matching("violation", "pid", &Value::str(&pid_s));
            self.engine
                .retract_matching("alloc", "pid", &Value::str(&pid_s));
            self.engine
                .retract_matching("mem-deficit", "pid", &Value::str(&pid_s));
            self.cpu.release(pid);
            self.mem.release(pid);
            self.registry.remove(&pid);
            self.overload_streak.remove(&pid);
            self.last_violation.remove(&pid);
            self.reaped.insert(pid);
        }
    }

    /// Has `pid` been reaped (and not re-registered since)? Stale
    /// violations from such a pid are discarded.
    pub fn is_tombstoned(&self, pid: Pid) -> bool {
        self.reaped.contains(&pid)
    }

    /// Is `pid` owed a liveness sweep (registered with a heartbeat
    /// promise and not yet declared dead)?
    pub fn liveness_tracks(&self, pid: Pid) -> bool {
        self.liveness.tracks(pid)
    }

    /// Is `pid` declared dead but not yet reclaimed (between the two
    /// reap phases)?
    pub fn reap_pending(&self, pid: Pid) -> bool {
        self.pending_reap.contains(&pid)
    }

    /// Land a resource grant outside the inference path — the model
    /// checker's conformance harness uses this to stand in for "an
    /// adaptation granted this process a boost".
    pub(crate) fn grant_boost(&mut self, pid: Pid) {
        self.cpu.plan(pid, Direction::Under, 1.0, 1.0);
    }

    /// Feed one event through the discovery client and execute the
    /// actions it decides: announces and renewals go to the discovery
    /// server, bind/unbind rewires [`Self::domain`], and the schedule
    /// actions arm the retry/renewal timers. A no-op when the manager
    /// was not built `with_discovery`.
    fn run_disc(&mut self, ctx: &mut Ctx<'_>, ev: DiscEvent) {
        let Some(disc) = self.disc.as_mut() else {
            return;
        };
        let client = disc.client.get_or_insert_with(|| {
            DiscClient::new(
                ctx.host_id(),
                Endpoint::new(ctx.host_id(), HOST_MANAGER_PORT),
            )
        });
        let actions = client.step(ev);
        self.stats.rediscoveries = client.rediscoveries;
        for act in actions {
            match act {
                DiscAction::Announce(a) => {
                    send_ctrl(
                        ctx,
                        disc.server,
                        HOST_MANAGER_PORT,
                        WireMsg::DiscAnnounce(a),
                    );
                }
                DiscAction::Renew(r) => {
                    send_ctrl(
                        ctx,
                        disc.server,
                        HOST_MANAGER_PORT,
                        WireMsg::DiscLeaseRenew(r),
                    );
                }
                DiscAction::Bind { manager, .. } => {
                    disc.backoff.reset();
                    self.domain = Some(manager);
                }
                DiscAction::Unbind => {
                    self.domain = None;
                }
                DiscAction::ScheduleRetry => {
                    let d = disc.backoff.next_delay();
                    ctx.set_timer(Dur::from_micros(d.as_micros() as u64), TAG_DISC_RETRY);
                }
                DiscAction::ScheduleRenew(d) => {
                    ctx.set_timer(d, TAG_DISC_RENEW);
                }
            }
        }
    }

    /// Fingerprint a violation for duplicate detection: pid, corr and
    /// the full reading vector (bit-exact floats).
    fn violation_fingerprint(v: &ViolationMsg) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.pid.hash(&mut h);
        v.corr.hash(&mut h);
        v.policy.hash(&mut h);
        for (name, val) in &v.readings {
            name.hash(&mut h);
            val.to_bits().hash(&mut h);
        }
        h.finish()
    }

    /// At-least-once delivery (and the fault layer's duplicator) may
    /// hand the manager the same report twice. One violation must drive
    /// at most one adaptation, so a bit-identical redelivery inside
    /// [`DUP_VIOLATION_WINDOW`] is dropped. Genuine renotifications
    /// arrive a full renotify period (1 s) apart and pass.
    fn is_duplicate_violation(&mut self, now: SimTime, v: &ViolationMsg) -> bool {
        let fp = Self::violation_fingerprint(v);
        if let Some(&(prev_fp, at)) = self.last_violation.get(&v.pid) {
            if prev_fp == fp && now.since(at) < DUP_VIOLATION_WINDOW {
                return true;
            }
        }
        self.last_violation.insert(v.pid, (fp, now));
        false
    }

    fn handle_violation(&mut self, ctx: &mut Ctx<'_>, v: &ViolationMsg) {
        if self.reaped.contains(&v.pid) {
            self.stats.stale_violations += 1;
            return;
        }
        if self.is_duplicate_violation(ctx.now(), v) {
            self.stats.dup_violations += 1;
            return;
        }
        self.stats.violations += 1;
        let pid_s = pid_to_string(v.pid);
        let fps = v.readings.first().map(|&(_, val)| val).unwrap_or(0.0);
        let (lo, hi) = v
            .bounds
            .as_ref()
            .map(|&(_, lo, hi)| (lo, hi))
            .unwrap_or((0.0, f64::INFINITY));
        let buffer = v
            .readings
            .iter()
            .find(|(a, _)| a == "buffer_size")
            .map(|&(_, val)| val)
            .unwrap_or(0.0);
        // Fresh telemetry for this violation: stale facts for this
        // process are replaced, never accumulated (a lingering fact would
        // also suppress identical future reports via duplicate-fact
        // elimination).
        self.engine.retract_template("mem-deficit");
        self.engine
            .retract_matching("violation", "pid", &Value::str(&pid_s));
        self.engine
            .retract_matching("alloc", "pid", &Value::str(&pid_s));
        let attr = v
            .readings
            .first()
            .map(|(a, _)| a.as_str())
            .unwrap_or("unknown");
        self.engine.assert_fact(
            Fact::new("violation")
                .with("pid", Value::str(&pid_s))
                .with("attr", Value::sym(attr))
                .with("fps", fps)
                .with("lo", lo)
                .with("hi", hi)
                .with("buffer", buffer)
                .with("weight", self.weight_of(v.pid))
                .with("has-upstream", v.upstream.is_some()),
        );
        // Current CPU allocation, for overload rules.
        self.engine.assert_fact(
            Fact::new("alloc")
                .with("pid", Value::str(&pid_s))
                .with("boost", self.cpu.allocation(v.pid).boost as i64),
        );
        if let Some(m) = ctx.proc_mem(v.pid) {
            if m.deficit() > 0 {
                self.engine.assert_fact(
                    Fact::new("mem-deficit")
                        .with("pid", Value::str(&pid_s))
                        .with("pages", m.deficit() as i64),
                );
            }
        }
        let run = self.engine.run(200);
        if self.telemetry.is_enabled() {
            let facts = self.fact_count();
            self.telemetry.stage(
                ctx.now().as_micros(),
                v.corr,
                Stage::Diagnose,
                &format!("hm:h{}", ctx.host_id().0),
                &v.policy,
                || {
                    vec![
                        ("fired".into(), run.fired as f64),
                        ("cycles".into(), run.cycles as f64),
                        // Delta join work since the previous run — see
                        // `RunStats::activations` for the semantics.
                        ("activations".into(), run.activations as f64),
                        ("peak_agenda".into(), run.peak_agenda as f64),
                        ("facts".into(), facts as f64),
                    ]
                },
            );
        }
        let invocations = self.engine.take_invocations();
        for inv in invocations {
            self.dispatch(ctx, &inv, v);
        }
    }

    /// Mirror [`HostMgrStats`] into the registry as `hm.*` counters
    /// labelled with the host, adding only what changed since the last
    /// mirror so counters stay exact under repeated calls.
    fn mirror_stats(&mut self, host: HostId) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let label = format!("h{}", host.0);
        let cur = self.stats;
        let prev = self.mirrored;
        self.mirrored = cur;
        let deltas = [
            ("hm.violations", cur.violations, prev.violations),
            ("hm.cpu_boosts", cur.cpu_boosts, prev.cpu_boosts),
            (
                "hm.cpu_relaxations",
                cur.cpu_relaxations,
                prev.cpu_relaxations,
            ),
            (
                "hm.mem_adjustments",
                cur.mem_adjustments,
                prev.mem_adjustments,
            ),
            ("hm.domain_alerts", cur.domain_alerts, prev.domain_alerts),
            ("hm.rule_updates", cur.rule_updates, prev.rule_updates),
            ("hm.registrations", cur.registrations, prev.registrations),
            ("hm.nudges", cur.nudges, prev.nudges),
            ("hm.adaptations", cur.adaptations, prev.adaptations),
            ("hm.liveness_reaps", cur.deaths, prev.deaths),
            ("hm.unhandled", cur.unhandled, prev.unhandled),
            ("hm.decode_errors", cur.decode_errors, prev.decode_errors),
            ("hm.dup_violations", cur.dup_violations, prev.dup_violations),
            (
                "hm.stale_violations",
                cur.stale_violations,
                prev.stale_violations,
            ),
            ("wire.batch.frames", cur.batch_frames, prev.batch_frames),
            ("disc.rediscoveries", cur.rediscoveries, prev.rediscoveries),
        ];
        for (family, now, before) in deltas {
            if now > before {
                self.telemetry.counter(family, &label).add(now - before);
            }
        }
    }

    /// Emit an Adapt-stage event for an action that actually landed.
    fn emit_adapt(&self, now_us: u64, host: HostId, corr: u64, action: &str, value: f64) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.stage(
            now_us,
            corr,
            Stage::Adapt,
            &format!("hm:h{}", host.0),
            action,
            || vec![("value".into(), value)],
        );
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, inv: &Invocation, v: &ViolationMsg) {
        match inv.command.as_str() {
            "adjust-cpu" => {
                let (Some(pid), Some(fps), Some(lo)) = (
                    inv.args.first().and_then(value_pid),
                    inv.args.get(1).and_then(Value::as_f64),
                    inv.args.get(2).and_then(Value::as_f64),
                ) else {
                    return;
                };
                let weight = inv.args.get(3).and_then(Value::as_f64).unwrap_or(1.0);
                let severity = if lo > 0.0 {
                    ((lo - fps) / lo).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let cmds = self.cpu.plan(pid, Direction::Under, severity, weight);
                if !cmds.is_empty() {
                    self.stats.cpu_boosts += 1;
                    self.emit_adapt(
                        ctx.now().as_micros(),
                        ctx.host_id(),
                        v.corr,
                        "adjust-cpu",
                        severity,
                    );
                }
                for cmd in cmds {
                    ctx.priocntl(pid, cmd);
                }
            }
            "relax-cpu" => {
                let Some(pid) = inv.args.first().and_then(value_pid) else {
                    return;
                };
                let fps = inv.args.get(1).and_then(Value::as_f64).unwrap_or(0.0);
                let hi = inv
                    .args
                    .get(2)
                    .and_then(Value::as_f64)
                    .unwrap_or(f64::INFINITY);
                let severity = if hi > 0.0 && hi.is_finite() {
                    ((fps - hi) / hi).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let cmds = self.cpu.plan(pid, Direction::Over, severity, 1.0);
                if !cmds.is_empty() {
                    self.stats.cpu_relaxations += 1;
                    self.emit_adapt(
                        ctx.now().as_micros(),
                        ctx.host_id(),
                        v.corr,
                        "relax-cpu",
                        severity,
                    );
                }
                for cmd in cmds {
                    ctx.priocntl(pid, cmd);
                }
            }
            "adjust-memory" => {
                let (Some(pid), Some(pages)) = (
                    inv.args.first().and_then(value_pid),
                    inv.args.get(1).and_then(Value::as_f64),
                ) else {
                    return;
                };
                if let Some(delta) = self.mem.plan(pid, pages as i64) {
                    self.stats.mem_adjustments += 1;
                    self.emit_adapt(
                        ctx.now().as_micros(),
                        ctx.host_id(),
                        v.corr,
                        "adjust-memory",
                        delta as f64,
                    );
                    ctx.memctl(pid, delta);
                }
            }
            "nudge-cpu" => {
                // Proactive: a small, fixed-size allocation increase
                // before the user-visible requirement breaks.
                let Some(pid) = inv.args.first().and_then(value_pid) else {
                    return;
                };
                let weight = inv.args.get(1).and_then(Value::as_f64).unwrap_or(1.0);
                let cmds = self.cpu.plan(pid, Direction::Under, 0.25, weight);
                if !cmds.is_empty() {
                    self.stats.nudges += 1;
                    self.emit_adapt(
                        ctx.now().as_micros(),
                        ctx.host_id(),
                        v.corr,
                        "nudge-cpu",
                        0.25,
                    );
                }
                for cmd in cmds {
                    ctx.priocntl(pid, cmd);
                }
            }
            "adapt-app" => {
                // Overload: the allocation is maxed and the requirement
                // still fails; after OVERLOAD_PATIENCE consecutive such
                // reports, ask the application to degrade itself.
                let Some(pid) = inv.args.first().and_then(value_pid) else {
                    return;
                };
                let streak = self.overload_streak.entry(pid).or_insert(0);
                *streak += 1;
                if *streak < OVERLOAD_PATIENCE {
                    return;
                }
                *streak = 0;
                let Some(reg) = self.registry.get(&pid) else {
                    return;
                };
                self.stats.adaptations += 1;
                self.emit_adapt(
                    ctx.now().as_micros(),
                    ctx.host_id(),
                    v.corr,
                    "adapt-app",
                    1.0,
                );
                send_ctrl(
                    ctx,
                    Endpoint::new(pid.host, reg.control_port),
                    HOST_MANAGER_PORT,
                    WireMsg::Adapt(AdaptMsg {
                        actuator: "quality_actuator".into(),
                        command: "degrade".into(),
                        value: 1.0,
                    }),
                );
            }
            "notify-domain" => {
                let (Some(domain), Some(up)) = (self.domain, v.upstream) else {
                    return;
                };
                let Some(fps) = inv.args.get(1).and_then(Value::as_f64) else {
                    return;
                };
                self.stats.domain_alerts += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.stage(
                        ctx.now().as_micros(),
                        v.corr,
                        Stage::Escalate,
                        &format!("hm:h{}", ctx.host_id().0),
                        &v.policy,
                        || vec![("observed".into(), fps)],
                    );
                }
                send_ctrl(
                    ctx,
                    domain,
                    HOST_MANAGER_PORT,
                    WireMsg::DomainAlert(DomainAlertMsg {
                        from_host: ctx.host_id(),
                        client: v.pid,
                        upstream: up,
                        observed: fps,
                        corr: v.corr,
                    }),
                );
            }
            "unhandled-violation" => {
                self.stats.unhandled += 1;
            }
            _ => {}
        }
    }
}

/// Read a pid string out of a rule value.
fn value_pid(v: &Value) -> Option<Pid> {
    match v {
        Value::Str(s) | Value::Sym(s) => pid_from_str(s),
        _ => None,
    }
}

impl QosHostManager {
    /// Handle one decoded control message. Shared by the single-frame
    /// and batch ingest paths so a coalesced message behaves exactly
    /// like one that travelled alone.
    fn handle_ctrl(&mut self, ctx: &mut Ctx<'_>, msg: WireMsg) {
        match msg {
            WireMsg::Violation(v) => {
                if qos_buggify::buggify!("hm.violation.drop") {
                    // Chaos: the manager loses the notification
                    // after receipt (queue overflow, preemption).
                    // The coordinator's renotify cadence must
                    // re-deliver it.
                } else {
                    self.handle_violation(ctx, &v);
                }
            }
            WireMsg::Register(r) => {
                self.handle_register(ctx.now(), &r);
                if qos_buggify::buggify!("hm.register.duplicate") {
                    // Chaos: at-least-once delivery hands the
                    // manager the same registration twice;
                    // idempotency must hold.
                    self.handle_register(ctx.now(), &r);
                }
            }
            WireMsg::StatsQuery(q) => {
                let snap = ctx.host_stats();
                send_ctrl(
                    ctx,
                    q.reply_to,
                    HOST_MANAGER_PORT,
                    WireMsg::StatsReply(StatsReplyMsg {
                        host: ctx.host_id(),
                        load_avg: snap.load_avg,
                        mem_utilization: snap.mem_utilization,
                        correlation: q.correlation,
                    }),
                );
            }
            WireMsg::AdjustRequest(a) => {
                // A domain-directed boost: the server is starved
                // on a host full of interactive work, so a TS
                // nudge cannot reliably help — promote it to the
                // real-time class (the `priocntl -c RT` move on
                // the prototype's Solaris host), falling back to
                // a TS boost for small steps.
                self.stats.cpu_boosts += 1;
                self.emit_adapt(
                    ctx.now().as_micros(),
                    ctx.host_id(),
                    a.corr,
                    "adjust-request",
                    a.steps as f64,
                );
                if a.steps >= 20 {
                    ctx.priocntl(
                        a.pid,
                        PriocntlCmd::SetClass(SchedClass::RealTime {
                            rtpri: 5,
                            budget: None,
                        }),
                    );
                } else {
                    ctx.priocntl(a.pid, PriocntlCmd::AdjustUpri(a.steps));
                }
            }
            WireMsg::DiscAssign(a) => {
                self.run_disc(ctx, DiscEvent::Assign(a));
            }
            WireMsg::DiscLeaseAck(k) => {
                self.run_disc(ctx, DiscEvent::Ack(k));
            }
            WireMsg::RuleUpdate(u) => {
                self.stats.rule_updates += 1;
                for name in &u.remove {
                    self.remove_rule(name);
                }
                if let Some(text) = &u.add {
                    self.load_rules(text);
                }
            }
            // Control kinds this process does not serve: ignored (the
            // processing cost is still charged — the manager did look).
            _ => {}
        }
    }
}

impl ProcessLogic for QosHostManager {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Readable(port) => {
                let Some(msg) = ctx.recv(port) else { return };
                // One decode point for the whole control plane: frames
                // (or legacy typed structs) become WireMsg here; corrupt
                // frames are counted, never panicked on; non-control
                // payloads fall through untouched.
                match decode_ctrl(&msg) {
                    Ok(Some(WireMsg::Batch(b))) => {
                        self.stats.batch_frames += 1;
                        if self.telemetry.is_enabled() {
                            let label = format!("h{}", ctx.host_id().0);
                            self.telemetry
                                .histogram("wire.batch.msgs_per_frame", &label)
                                .record(b.msgs.len() as u64);
                        }
                        // The per-message processing cost is charged for
                        // every coalesced message: batching saves wire
                        // bytes and wake-ups, not rule-engine work.
                        for m in b.msgs {
                            self.handle_ctrl(ctx, m);
                            ctx.run(MANAGER_PROCESSING_COST);
                        }
                    }
                    Ok(Some(m)) => {
                        self.handle_ctrl(ctx, m);
                        // Model the manager's own CPU consumption.
                        ctx.run(MANAGER_PROCESSING_COST);
                    }
                    Ok(None) => {
                        ctx.run(MANAGER_PROCESSING_COST);
                    }
                    Err(_) => {
                        self.stats.decode_errors += 1;
                        ctx.run(MANAGER_PROCESSING_COST);
                    }
                }
                self.mirror_stats(ctx.host_id());
            }
            ProcEvent::Start => {
                ctx.set_timer(LIVENESS_SWEEP_PERIOD, TAG_LIVENESS_SWEEP);
                self.run_disc(ctx, DiscEvent::Kick);
            }
            ProcEvent::Timer(TAG_LIVENESS_SWEEP) => {
                self.reap_dead(ctx.now());
                self.mirror_stats(ctx.host_id());
                ctx.set_timer(LIVENESS_SWEEP_PERIOD, TAG_LIVENESS_SWEEP);
            }
            ProcEvent::Timer(TAG_DISC_RETRY) => {
                self.run_disc(ctx, DiscEvent::RetryDue);
                self.mirror_stats(ctx.host_id());
            }
            ProcEvent::Timer(TAG_DISC_RENEW) => {
                self.run_disc(ctx, DiscEvent::RenewDue);
                self.mirror_stats(ctx.host_id());
            }
            ProcEvent::BurstDone | ProcEvent::Timer(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_string_roundtrip() {
        let p = Pid {
            host: HostId(3),
            local: 17,
        };
        assert_eq!(pid_from_str(&pid_to_string(p)), Some(p));
        assert_eq!(pid_from_str("garbage"), None);
        assert_eq!(pid_from_str("h1:px"), None);
    }

    fn reg(pid: Pid, heartbeat: Option<Dur>) -> RegisterMsg {
        RegisterMsg {
            pid,
            control_port: 100,
            executable: "vidplayer".into(),
            application: "video".into(),
            role: "student".into(),
            weight: 1.0,
            heartbeat,
        }
    }

    #[test]
    fn registration_is_idempotent_per_pid() {
        let mut hm = QosHostManager::new(None);
        let p = Pid {
            host: HostId(0),
            local: 5,
        };
        let t0 = SimTime::ZERO;
        hm.handle_register(t0, &reg(p, None));
        hm.handle_register(t0, &reg(p, None));
        hm.handle_register(t0, &reg(p, None));
        assert_eq!(hm.stats.registrations, 1, "at-least-once delivery safe");
        assert!(hm.is_registered(p));
    }

    #[test]
    fn silent_heartbeat_process_is_reaped_and_reclaimed() {
        let mut hm = QosHostManager::new(None);
        let p = Pid {
            host: HostId(0),
            local: 5,
        };
        hm.handle_register(SimTime::ZERO, &reg(p, Some(Dur::from_secs(1))));
        // Give it state a crash would otherwise leak.
        hm.cpu.plan(p, Direction::Under, 1.0, 1.0);
        hm.mem.plan(p, 32);
        hm.overload_streak.insert(p, 2);
        let pid_s = pid_to_string(p);
        hm.engine
            .assert_fact(Fact::new("violation").with("pid", Value::str(&pid_s)));
        assert!(hm.cpu_allocation(p).boost > 0);

        // Heartbeats keep it alive...
        hm.handle_register(
            SimTime::from_micros(1_000_000),
            &reg(p, Some(Dur::from_secs(1))),
        );
        hm.reap_dead(SimTime::from_micros(2_000_000));
        assert!(hm.is_registered(p));

        // ...silence past the grace period kills it.
        hm.reap_dead(SimTime::from_micros(60_000_000));
        assert_eq!(hm.stats.deaths, 1);
        assert!(!hm.is_registered(p));
        assert_eq!(hm.cpu_allocation(p).boost, 0, "CPU boost reclaimed");
        assert_eq!(hm.mem.granted(p), 0, "memory grant reclaimed");
        assert_eq!(hm.facts_of("violation"), 0, "stale facts retracted");
        assert!(!hm.overload_streak.contains_key(&p));

        // Reap is one-shot.
        hm.reap_dead(SimTime::from_micros(120_000_000));
        assert_eq!(hm.stats.deaths, 1);
    }

    #[test]
    fn heartbeat_between_reap_phases_cancels_the_reap() {
        // The reap/re-register race: liveness has declared the process
        // dead but the facts/allocations are not yet reclaimed when its
        // heartbeat arrives. Registration must cancel the pending reap
        // entirely — not leave a half-registered process.
        if !qos_buggify::compiled_in() {
            return;
        }
        qos_buggify::disable();
        let mut hm = QosHostManager::new(None);
        let p = Pid {
            host: HostId(0),
            local: 9,
        };
        hm.handle_register(SimTime::ZERO, &reg(p, Some(Dur::from_secs(1))));
        hm.cpu.plan(p, Direction::Under, 1.0, 1.0);
        assert!(hm.cpu_allocation(p).boost > 0);

        // Freeze the sweep between its declare and reclaim phases.
        qos_buggify::force("hm.reap.partial", 1);
        hm.reap_dead(SimTime::from_micros(60_000_000));
        assert!(!hm.liveness.tracks(p), "declared dead");
        assert_eq!(hm.pending_reap, vec![p], "reclamation still pending");
        assert!(hm.is_registered(p), "not yet reclaimed");

        // The racing heartbeat lands before the next sweep...
        hm.handle_register(
            SimTime::from_micros(60_500_000),
            &reg(p, Some(Dur::from_secs(1))),
        );
        // ...so the sweep that follows must not touch the process.
        hm.reap_dead(SimTime::from_micros(61_000_000));
        assert!(hm.is_registered(p), "fully registered, not a zombie");
        assert!(hm.liveness.tracks(p), "liveness re-armed");
        assert_eq!(hm.stats.deaths, 0, "a live process is no death");
        assert!(hm.cpu_allocation(p).boost > 0, "allocation survives");
        qos_buggify::disable();
    }

    #[test]
    fn partial_reap_without_heartbeat_reclaims_on_next_sweep() {
        if !qos_buggify::compiled_in() {
            return;
        }
        qos_buggify::disable();
        let mut hm = QosHostManager::new(None);
        let p = Pid {
            host: HostId(0),
            local: 11,
        };
        hm.handle_register(SimTime::ZERO, &reg(p, Some(Dur::from_secs(1))));
        hm.cpu.plan(p, Direction::Under, 1.0, 1.0);
        qos_buggify::force("hm.reap.partial", 1);
        hm.reap_dead(SimTime::from_micros(60_000_000));
        assert!(hm.is_registered(p), "phase B deferred");
        // Still silent: the next sweep finishes the job exactly once.
        hm.reap_dead(SimTime::from_micros(61_000_000));
        assert!(!hm.is_registered(p));
        assert_eq!(hm.stats.deaths, 1);
        assert_eq!(hm.cpu_allocation(p).boost, 0, "boost reclaimed once");
        assert!(hm.pending_reap.is_empty());
        qos_buggify::disable();
    }

    #[test]
    fn identical_redelivery_within_window_is_a_duplicate() {
        let mut hm = QosHostManager::new(None);
        let p = Pid {
            host: HostId(0),
            local: 3,
        };
        let v = ViolationMsg {
            pid: p,
            proc_name: "vidplayer".into(),
            policy: "fps".into(),
            corr: 7,
            readings: vec![("frame_rate".into(), 19.5)],
            bounds: Some(("frame_rate".into(), 23.0, 27.0)),
            upstream: None,
        };
        let t0 = SimTime::from_micros(1_000_000);
        assert!(
            !hm.is_duplicate_violation(t0, &v),
            "first delivery is fresh"
        );
        assert!(
            hm.is_duplicate_violation(SimTime::from_micros(1_200_000), &v),
            "bit-identical redelivery 200 ms later is a transport dup"
        );
        assert!(
            !hm.is_duplicate_violation(SimTime::from_micros(2_100_000), &v),
            "a renotify one second later is a genuine repeat"
        );
        let mut changed = v.clone();
        changed.readings[0].1 = 20.5;
        assert!(
            !hm.is_duplicate_violation(SimTime::from_micros(2_150_000), &changed),
            "different readings are never a dup, however close"
        );
    }

    #[test]
    fn one_shot_registrant_is_never_reaped() {
        let mut hm = QosHostManager::new(None);
        let p = Pid {
            host: HostId(0),
            local: 7,
        };
        hm.handle_register(SimTime::ZERO, &reg(p, None));
        hm.reap_dead(SimTime::from_micros(3_600_000_000));
        assert!(hm.is_registered(p), "no heartbeat promise, no reaping");
        assert_eq!(hm.stats.deaths, 0);
    }

    #[test]
    fn rules_load_and_swap() {
        let mut hm = QosHostManager::new(None);
        let names = hm.rule_names();
        assert!(names.iter().any(|n| n == "local-cpu-starvation"));
        assert!(hm.remove_rule("local-cpu-starvation"));
        assert!(!hm.rule_names().iter().any(|n| n == "local-cpu-starvation"));
        assert!(hm.load_rules(&crate::rules::host_rules_differentiated()));
        assert!(hm.rule_names().iter().any(|n| n == "local-cpu-starvation"));
        assert!(!hm.load_rules("(this is (not valid"));
    }
}
