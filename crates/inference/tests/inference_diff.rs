//! Differential property test: the incremental Rete-lite matcher must be
//! observationally identical to the naive full-rematch oracle.
//!
//! Each case generates a randomized interleaving of asserts, retracts and
//! `run` calls over a rule set that exercises every matcher feature —
//! multi-CE joins, negation, salience, chained assertion, self-consuming
//! retract actions and an empty-LHS rule — applies the same script to
//! both engines, and requires identical firing traces, invocation
//! streams, per-run fired counts and final fact populations.

use proptest::prelude::*;
use qos_inference::prelude::*;

/// Rules covering every conflict-resolution and delta-propagation path.
fn diff_rules() -> Vec<Rule> {
    vec![
        // Empty LHS: fires exactly once, ever.
        Rule::new("boot").then_call("boot", vec![]),
        // Two-CE join on a shared variable, above default salience.
        Rule::new("pair")
            .salience(5)
            .when(Pattern::new("task").slot_var("id", "t"))
            .when(Pattern::new("dep").slot_var("id", "t"))
            .then_call("pair", vec![Term::var("t")]),
        // Negation: asserts of `done` remove activations, retracts of
        // `done` restore them.
        Rule::new("uncovered")
            .when(Pattern::new("task").slot_var("id", "t"))
            .when_not(Pattern::new("done").slot_var("id", "t"))
            .then_call("pending", vec![Term::var("t")]),
        // Chained inference: `event` asserts `mark`, which `marked`
        // picks up in a later cycle of the same run.
        Rule::new("chain")
            .when(Pattern::new("event").slot_var("n", "n"))
            .then_assert("mark", vec![("n", Term::var("n"))]),
        Rule::new("marked")
            .when(Pattern::new("mark").slot_var("n", "n"))
            .then_call("marked", vec![Term::var("n")]),
        // Self-consuming: retracts its own trigger, so re-asserting the
        // same junk fact re-fires (no refraction carry-over).
        Rule::new("consume")
            .salience(-10)
            .when(Pattern::new("junk").slot_var("n", "n"))
            .then_retract(0),
    ]
}

/// One scripted operation, decoded from a generated `(op, a, b)` triple.
#[derive(Debug, Clone, Copy)]
enum Op {
    Assert(&'static str, i64),
    Retract(usize),
    Run,
}

fn decode(ops: &[(u8, u8, u8)]) -> Vec<Op> {
    ops.iter()
        .map(|&(op, a, b)| match op % 10 {
            // Small id domain (0..4) forces joins, negation overlap and
            // duplicate-fact suppression.
            0 | 1 => Op::Assert("task", (b % 4) as i64),
            2 => Op::Assert("dep", (b % 4) as i64),
            3 => Op::Assert("done", (b % 4) as i64),
            4 => Op::Assert("event", (b % 4) as i64),
            5 => Op::Assert("junk", (b % 4) as i64),
            6 | 7 => Op::Retract(a as usize),
            _ => Op::Run,
        })
        .collect()
}

/// Apply the script to one engine; return every observable output.
fn run_script(ops: &[Op], naive: bool) -> (Vec<String>, Vec<Invocation>, Vec<u64>, usize) {
    let mut e = Engine::new();
    e.use_naive_matcher(naive);
    e.set_trace_capacity(1 << 16);
    for r in diff_rules() {
        e.add_rule(r);
    }
    // Both engines see the same deterministic script, so the FactIds
    // recorded here line up between the two runs.
    let mut live: Vec<FactId> = Vec::new();
    let mut fired = Vec::new();
    for &op in ops {
        match op {
            Op::Assert(tmpl, id) => {
                let slot = if tmpl == "event" || tmpl == "junk" {
                    "n"
                } else {
                    "id"
                };
                live.push(e.assert_fact(Fact::new(tmpl).with(slot, id)));
            }
            Op::Retract(ix) => {
                if !live.is_empty() {
                    // Retracting an already-dead id is a legal no-op and
                    // part of the surface under test.
                    e.retract(live[ix % live.len()]);
                }
            }
            Op::Run => fired.push(e.run(100).fired),
        }
    }
    fired.push(e.run(200).fired);
    (e.take_trace(), e.take_invocations(), fired, e.facts().len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn incremental_matcher_is_observationally_identical_to_naive(
        ops in proptest::collection::vec((0u8..10, 0u8..32, 0u8..8), 4..48),
    ) {
        let script = decode(&ops);
        let (n_trace, n_inv, n_fired, n_facts) = run_script(&script, true);
        let (r_trace, r_inv, r_fired, r_facts) = run_script(&script, false);
        prop_assert_eq!(n_trace, r_trace, "firing sequences diverged");
        prop_assert_eq!(n_inv, r_inv, "invocation streams diverged");
        prop_assert_eq!(n_fired, r_fired, "per-run fired counts diverged");
        prop_assert_eq!(n_facts, r_facts, "final fact stores diverged");
    }
}
