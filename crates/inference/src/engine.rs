//! The forward-chaining inference engine: match → conflict-resolve → act,
//! with salience, recency and refraction. A small, faithful subset of the
//! CLIPS shell the paper's prototype embedded in its QoS Host Manager.

use std::collections::HashSet;

use crate::fact::{Fact, FactId, FactStore};
use crate::rule::{Action, Ce, Invocation, Rule};
use crate::value::Value;

/// Outcome of a call to [`Engine::run`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of rule firings.
    pub fired: u64,
    /// Number of match-resolve-act cycles executed.
    pub cycles: u64,
    /// Candidate activations examined across all cycles — the engine's
    /// join work: every (rule, fact combination) the matcher produced,
    /// fired or not.
    pub activations: u64,
    /// Largest agenda seen in a single cycle (unfired activations
    /// competing in conflict resolution).
    pub peak_agenda: u64,
    /// True if the run stopped because the cycle limit was reached (a
    /// runaway rule set) rather than by quiescence.
    pub hit_limit: bool,
}

/// The inference engine: rule base + fact repository + agenda.
#[derive(Debug, Default)]
pub struct Engine {
    facts: FactStore,
    rules: Vec<Rule>,
    /// Refraction memory: (rule name, positive fact ids) combinations that
    /// already fired. Cleared per-fact on retraction so re-asserted facts
    /// re-activate rules, as in CLIPS.
    fired: HashSet<(String, Vec<FactId>)>,
    /// Commands emitted by fired rules, awaiting the embedding component.
    outbox: Vec<Invocation>,
    /// Names of rules fired, in order (diagnostic trace).
    trace: Vec<String>,
}

impl Engine {
    /// An engine with no rules and no facts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule. Replaces any existing rule with the same name (dynamic
    /// rule distribution: managers receive updated rules at run time).
    pub fn add_rule(&mut self, rule: Rule) {
        if let Some(existing) = self.rules.iter_mut().find(|r| r.name == rule.name) {
            *existing = rule;
        } else {
            self.rules.push(rule);
        }
    }

    /// Remove a rule by name; true if it existed.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.name != name);
        self.fired.retain(|(rule, _)| rule != name);
        self.rules.len() != before
    }

    /// Number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Names of loaded rules.
    pub fn rule_names(&self) -> impl Iterator<Item = &str> {
        self.rules.iter().map(|r| r.name.as_str())
    }

    /// Assert a fact into working memory.
    pub fn assert_fact(&mut self, fact: Fact) -> FactId {
        self.facts.assert_fact(fact).0
    }

    /// Retract a fact, clearing refraction entries that reference it.
    pub fn retract(&mut self, id: FactId) -> Option<Fact> {
        let fact = self.facts.retract(id)?;
        self.fired.retain(|(_, ids)| !ids.contains(&id));
        Some(fact)
    }

    /// Retract all facts of a template (e.g. clearing stale telemetry
    /// before asserting a fresh report).
    pub fn retract_template(&mut self, template: &str) -> usize {
        let ids: Vec<FactId> = self.facts.by_template(template).map(|(id, _)| id).collect();
        let n = ids.len();
        for id in ids {
            self.retract(id);
        }
        n
    }

    /// Retract all facts of `template` whose `slot` equals `value`
    /// (e.g. clearing a process's stale telemetry before asserting a
    /// fresh report). Returns how many facts were retracted.
    pub fn retract_matching(&mut self, template: &str, slot: &str, value: &Value) -> usize {
        let ids: Vec<FactId> = self
            .facts
            .by_template(template)
            .filter(|(_, f)| f.get(slot).is_some_and(|v| v.loose_eq(value)))
            .map(|(id, _)| id)
            .collect();
        let n = ids.len();
        for id in ids {
            self.retract(id);
        }
        n
    }

    /// Working-memory access.
    pub fn facts(&self) -> &FactStore {
        &self.facts
    }

    /// Drain the commands emitted by fired rules since the last drain.
    pub fn take_invocations(&mut self) -> Vec<Invocation> {
        std::mem::take(&mut self.outbox)
    }

    /// Names of all rules fired so far, in firing order.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Run match-resolve-act cycles until quiescence or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunStats {
        let mut stats = RunStats::default();
        loop {
            if stats.cycles >= max_cycles {
                stats.hit_limit = true;
                return stats;
            }
            stats.cycles += 1;
            let (agenda, picked) = self.select_activation();
            stats.activations += agenda;
            stats.peak_agenda = stats.peak_agenda.max(agenda);
            let Some((rule_ix, fact_ids, bindings)) = picked else {
                return stats;
            };
            let key = (self.rules[rule_ix].name.clone(), fact_ids.clone());
            self.fired.insert(key);
            self.trace.push(self.rules[rule_ix].name.clone());
            stats.fired += 1;
            self.fire(rule_ix, &fact_ids, &bindings);
        }
    }

    /// Conflict resolution: highest salience, then most recent matched
    /// fact, then earliest-defined rule, then lexicographically smallest
    /// fact-id vector — a total, deterministic order. Also returns the
    /// agenda size (unfired activations competing this cycle), feeding
    /// the join-work counters in [`RunStats`].
    #[allow(clippy::type_complexity)]
    fn select_activation(&self) -> (u64, Option<(usize, Vec<FactId>, crate::pattern::Bindings)>) {
        use std::cmp::Reverse;
        // Maximise (salience, recency); break ties toward the
        // earliest-defined rule and the smallest fact-id vector so the
        // choice is total and deterministic.
        let mut fired_key = (String::new(), Vec::new());
        let mut agenda = 0u64;
        let picked = self
            .rules
            .iter()
            .enumerate()
            .flat_map(|(rule_ix, rule)| {
                rule.activations(&self.facts)
                    .into_iter()
                    .map(move |(ids, bindings)| (rule_ix, rule, ids, bindings))
            })
            .filter(|(_, rule, ids, _)| {
                fired_key.0.clear();
                fired_key.0.push_str(&rule.name);
                fired_key.1.clear();
                fired_key.1.extend_from_slice(ids);
                !self.fired.contains(&fired_key)
            })
            .inspect(|_| agenda += 1)
            .max_by_key(|(rule_ix, rule, ids, _)| {
                let recency = ids.iter().copied().max().unwrap_or(FactId(0));
                (
                    rule.salience,
                    recency,
                    Reverse(*rule_ix),
                    Reverse(ids.clone()),
                )
            })
            .map(|(rule_ix, _, ids, bindings)| (rule_ix, ids, bindings));
        (agenda, picked)
    }

    fn fire(&mut self, rule_ix: usize, fact_ids: &[FactId], bindings: &crate::pattern::Bindings) {
        let actions = self.rules[rule_ix].actions.clone();
        // Map positive-CE index -> matched fact id for Retract actions.
        let pos_count = self.rules[rule_ix]
            .ces
            .iter()
            .filter(|ce| matches!(ce, Ce::Pos(_)))
            .count();
        debug_assert_eq!(pos_count, fact_ids.len());
        for action in actions {
            match action {
                Action::Assert { template, slots } => {
                    let mut fact = Fact::new(template);
                    for (slot, term) in slots {
                        match term.resolve(bindings) {
                            Some(v) => {
                                fact.slots.insert(slot, v);
                            }
                            None => {
                                // Unbound variable in RHS: record and skip
                                // the slot rather than aborting the run.
                                self.trace.push(format!(
                                    "warning: unbound variable in assert of ({})",
                                    fact.template
                                ));
                            }
                        }
                    }
                    self.facts.assert_fact(fact);
                }
                Action::Retract(pos_ix) => {
                    if let Some(&id) = fact_ids.get(pos_ix) {
                        self.retract(id);
                    }
                }
                Action::Modify { pos_index, slots } => {
                    if let Some(&id) = fact_ids.get(pos_index) {
                        if let Some(mut fact) = self.retract(id) {
                            for (slot, term) in slots {
                                if let Some(v) = term.resolve(bindings) {
                                    fact.slots.insert(slot, v);
                                }
                            }
                            self.facts.assert_fact(fact);
                        }
                    }
                }
                Action::Call { command, args } => {
                    let resolved: Vec<Value> =
                        args.iter().filter_map(|t| t.resolve(bindings)).collect();
                    self.outbox.push(Invocation {
                        command,
                        args: resolved,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, Term, Test};
    use crate::value::CmpOp;

    /// The paper's canonical host-manager rule pair (Section 5.3): a large
    /// communication buffer implies a local CPU problem; a small one
    /// implies the problem is remote.
    fn host_manager_rules() -> Vec<Rule> {
        vec![
            Rule::new("local-cpu-cause")
                .when(
                    Pattern::new("violation")
                        .slot_var("pid", "p")
                        .slot_var("buffer", "b"),
                )
                .test(Test::Cmp(CmpOp::Gt, Term::var("b"), Term::val(1000)))
                .then_call("adjust-cpu", vec![Term::var("p")])
                .then_assert(
                    "diagnosed",
                    vec![("pid", Term::var("p")), ("cause", Term::val("local"))],
                ),
            Rule::new("remote-cause")
                .when(
                    Pattern::new("violation")
                        .slot_var("pid", "p")
                        .slot_var("buffer", "b"),
                )
                .test(Test::Cmp(CmpOp::Le, Term::var("b"), Term::val(1000)))
                .then_call("notify-domain", vec![Term::var("p")])
                .then_assert(
                    "diagnosed",
                    vec![("pid", Term::var("p")), ("cause", Term::val("remote"))],
                ),
        ]
    }

    #[test]
    fn forward_chaining_diagnoses_local_vs_remote() {
        let mut e = Engine::new();
        for r in host_manager_rules() {
            e.add_rule(r);
        }
        e.assert_fact(Fact::new("violation").with("pid", 1).with("buffer", 50_000));
        e.assert_fact(Fact::new("violation").with("pid", 2).with("buffer", 12));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        assert!(!stats.hit_limit);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 2);
        assert!(inv
            .iter()
            .any(|i| i.command == "adjust-cpu" && i.args == vec![Value::Int(1)]));
        assert!(inv
            .iter()
            .any(|i| i.command == "notify-domain" && i.args == vec![Value::Int(2)]));
        // Derived facts exist.
        assert_eq!(e.facts().by_template("diagnosed").count(), 2);
    }

    #[test]
    fn refraction_prevents_refiring() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("a").slot_var("x", "x"))
                .then_call("hit", vec![Term::var("x")]),
        );
        e.assert_fact(Fact::new("a").with("x", 1));
        assert_eq!(e.run(100).fired, 1);
        // Re-running without new facts fires nothing.
        assert_eq!(e.run(100).fired, 0);
        // A new fact re-activates.
        e.assert_fact(Fact::new("a").with("x", 2));
        assert_eq!(e.run(100).fired, 1);
        assert_eq!(e.take_invocations().len(), 2);
    }

    #[test]
    fn retract_reassert_refires() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("a").slot_const("x", 1))
                .then_call("hit", vec![]),
        );
        let id = e.assert_fact(Fact::new("a").with("x", 1));
        assert_eq!(e.run(100).fired, 1);
        e.retract(id);
        e.assert_fact(Fact::new("a").with("x", 1));
        assert_eq!(e.run(100).fired, 1, "fresh fact id clears refraction");
    }

    #[test]
    fn salience_orders_firing() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("low")
                .salience(-10)
                .when(Pattern::new("go"))
                .then_call("low", vec![]),
        );
        e.add_rule(
            Rule::new("high")
                .salience(10)
                .when(Pattern::new("go"))
                .then_call("high", vec![]),
        );
        e.assert_fact(Fact::new("go"));
        e.run(100);
        let order: Vec<String> = e
            .take_invocations()
            .into_iter()
            .map(|i| i.command)
            .collect();
        assert_eq!(order, vec!["high", "low"]);
    }

    #[test]
    fn chained_inference_via_asserted_facts() {
        // a -> b -> c chain: forward chaining derives transitively.
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("a-to-b")
                .when(Pattern::new("a").slot_var("v", "v"))
                .then_assert("b", vec![("v", Term::var("v"))]),
        );
        e.add_rule(
            Rule::new("b-to-c")
                .when(Pattern::new("b").slot_var("v", "v"))
                .then_assert("c", vec![("v", Term::var("v"))]),
        );
        e.assert_fact(Fact::new("a").with("v", 7));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        let c: Vec<_> = e.facts().by_template("c").collect();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].1.get("v"), Some(&Value::Int(7)));
    }

    #[test]
    fn retract_action_consumes_trigger() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("consume")
                .when(Pattern::new("event").slot_var("n", "n"))
                .then_retract(0)
                .then_call("handled", vec![Term::var("n")]),
        );
        e.assert_fact(Fact::new("event").with("n", 1));
        e.assert_fact(Fact::new("event").with("n", 2));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        assert_eq!(e.facts().by_template("event").count(), 0, "events consumed");
    }

    #[test]
    fn cycle_limit_stops_runaway_rules() {
        // A rule that keeps asserting new facts forever.
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("runaway")
                .when(Pattern::new("n").slot_var("v", "v"))
                .then_retract(0)
                .then_assert("n", vec![("v", Term::var("v"))]),
        );
        // retract+assert same content gets a fresh id each cycle -> loops.
        e.assert_fact(Fact::new("n").with("v", 0));
        let stats = e.run(50);
        assert!(stats.hit_limit);
        assert_eq!(stats.cycles, 50);
    }

    #[test]
    fn dynamic_rule_replacement_and_removal() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("go"))
                .then_call("v1", vec![]),
        );
        // Replace in place (same name).
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("go"))
                .then_call("v2", vec![]),
        );
        assert_eq!(e.rule_count(), 1);
        e.assert_fact(Fact::new("go"));
        e.run(10);
        assert_eq!(e.take_invocations()[0].command, "v2");
        assert!(e.remove_rule("r"));
        assert!(!e.remove_rule("r"));
        assert_eq!(e.rule_count(), 0);
    }

    #[test]
    fn run_stats_count_join_work() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("job").slot_var("id", "i"))
                .then_call("work", vec![Term::var("i")]),
        );
        e.assert_fact(Fact::new("job").with("id", 1));
        e.assert_fact(Fact::new("job").with("id", 2));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        // Cycle 1 examines both activations, cycle 2 the survivor, the
        // quiescence check none: 2 + 1 + 0.
        assert_eq!(stats.activations, 3);
        assert_eq!(stats.peak_agenda, 2);
        // Quiescent re-run does no join work.
        let idle = e.run(100);
        assert_eq!(idle.activations, 0);
        assert_eq!(idle.peak_agenda, 0);
    }

    #[test]
    fn recency_prefers_newer_facts() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("job").slot_var("id", "i"))
                .then_call("work", vec![Term::var("i")]),
        );
        e.assert_fact(Fact::new("job").with("id", 1));
        e.assert_fact(Fact::new("job").with("id", 2));
        e.run(100);
        let order: Vec<Value> = e
            .take_invocations()
            .into_iter()
            .map(|mut i| i.args.remove(0))
            .collect();
        assert_eq!(order, vec![Value::Int(2), Value::Int(1)], "newest first");
    }
}
