//! The forward-chaining inference engine: match → conflict-resolve → act,
//! with salience, recency and refraction. A small, faithful subset of the
//! CLIPS shell the paper's prototype embedded in its QoS Host Manager.
//!
//! Matching is **incremental** (Rete-lite): rather than re-joining every
//! rule against every fact on every cycle, the engine keeps a persistent
//! agenda and updates it from the *delta* of each assert/retract —
//! template-triggered seeded joins for positive condition elements,
//! per-rule re-evaluation when a negated template changes. The original
//! full-rematch algorithm is retained behind
//! [`Engine::use_naive_matcher`] as a differential-testing oracle (and
//! as the "before" arm of the scale benchmark); both matchers produce
//! identical firing sequences.

use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::fact::{Fact, FactId, FactStore, TemplateId};
use crate::idvec::IdVec;
use crate::pattern::{Bindings, Pattern, SlotTest};
use crate::rule::{Action, Ce, Invocation, Rule};
use crate::value::{CmpOp, Value};

/// Default bound on the diagnostic firing trace (ring buffer): a
/// long-lived host manager keeps only the most recent entries.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Outcome of a call to [`Engine::run`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of rule firings.
    pub fired: u64,
    /// Number of match-resolve-act cycles executed.
    pub cycles: u64,
    /// Join work: candidate facts the matcher examined. With the default
    /// incremental matcher this counts only *delta* work — candidates
    /// examined while propagating asserts/retracts since the previous
    /// `run` returned (including propagation triggered between runs by
    /// the embedding component) plus propagation from rules fired during
    /// this run. Under [`Engine::use_naive_matcher`] it counts the full
    /// re-match the naive oracle performs every cycle, fact by fact —
    /// the two modes are directly comparable: both count facts actually
    /// examined while matching.
    pub activations: u64,
    /// Largest agenda observed (unfired activations competing in
    /// conflict resolution): the peak of the persistent agenda since the
    /// previous run with the incremental matcher, the largest per-cycle
    /// agenda with the naive oracle.
    pub peak_agenda: u64,
    /// True if the run stopped because the cycle limit was reached (a
    /// runaway rule set) rather than by quiescence.
    pub hit_limit: bool,
}

/// Per-phase wall-clock breakdown of engine work, accumulated while
/// profiling is enabled ([`Engine::enable_phase_profile`]): where does a
/// violation's budget go — matching candidates, maintaining the agenda,
/// or executing right-hand sides? Nanosecond counters are exclusive:
/// match and agenda work triggered by a fired rule's own asserts and
/// retracts is charged to those phases, not to `fire_ns`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Time joining candidate facts against rule patterns.
    pub match_ns: u64,
    /// Time inserting, diffing and popping agenda activations.
    pub agenda_ns: u64,
    /// Time executing rule right-hand sides (exclusive of the match and
    /// agenda work their actions trigger).
    pub fire_ns: u64,
}

/// Reusable join buffers: the intermediate partial-match vectors the
/// join allocates are engine-owned and cleared between calls, so a
/// steady stream of violation asserts reuses the same heap spines
/// instead of allocating per propagation.
#[derive(Debug, Default)]
struct JoinScratch {
    partial: Vec<(IdVec, Bindings)>,
    next: Vec<(IdVec, Bindings)>,
}

/// Interned rule identifier: the rule's stable definition index. Stable
/// across removals (slots are tombstoned, never compacted), so the
/// earliest-defined-rule conflict-resolution tie-break is preserved.
type RuleIx = u32;

/// Agenda ordering key. Field order gives the conflict-resolution total
/// order lexicographically, so `BTreeMap::last_key_value` is exactly the
/// activation the naive matcher's `max_by_key` picks: highest salience,
/// then most recent matched fact, then earliest-defined rule, then
/// smallest fact-id vector.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct AgendaKey {
    salience: i32,
    recency: FactId,
    rule: Reverse<RuleIx>,
    ids: Reverse<IdVec>,
}

/// Per-rule matching metadata resolved once at rule-add time.
#[derive(Clone, Debug, Default)]
struct CompiledRule {
    /// Template symbol per condition element (`None` for `test` CEs).
    ce_tids: Vec<Option<TemplateId>>,
    /// Distinct templates of positive CEs (assert-delta triggers).
    pos_tmpls: Vec<TemplateId>,
    /// Distinct templates of negated CEs (re-evaluation triggers).
    neg_tmpls: Vec<TemplateId>,
}

/// Bounded diagnostic trace: a ring buffer of the most recent entries.
#[derive(Debug)]
struct TraceBuffer {
    buf: VecDeque<String>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer {
            buf: VecDeque::new(),
            capacity: DEFAULT_TRACE_CAPACITY,
            dropped: 0,
        }
    }
}

impl TraceBuffer {
    fn push(&mut self, entry: String) {
        while self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(entry);
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
    }

    fn take(&mut self) -> Vec<String> {
        self.dropped = 0;
        std::mem::take(&mut self.buf).into_iter().collect()
    }
}

/// The inference engine: rule base + fact repository + persistent agenda.
#[derive(Debug, Default)]
pub struct Engine {
    facts: FactStore,
    /// Rule slots by stable index; removal tombstones (`None`) so
    /// indices — and the definition-order tie-break — never shift.
    rules: Vec<Option<Rule>>,
    compiled: Vec<CompiledRule>,
    /// Rule name → stable index (O(1) add/remove/replace by name).
    ix_by_name: HashMap<String, RuleIx>,
    live_rules: usize,
    /// Template → rules with a positive CE on it: which rules to re-seed
    /// when a fact of that template is asserted.
    pos_triggers: HashMap<TemplateId, Vec<RuleIx>>,
    /// Template → rules with a negated CE on it: which rules to
    /// re-evaluate when a fact of that template changes either way.
    neg_triggers: HashMap<TemplateId, Vec<RuleIx>>,
    /// The persistent agenda: pending activations in conflict-resolution
    /// order. `last_key_value` is the next rule to fire.
    agenda: BTreeMap<AgendaKey, Bindings>,
    /// Fact → agenda entries matching it, so a retract removes exactly
    /// the affected activations.
    agenda_by_fact: HashMap<FactId, HashSet<AgendaKey>>,
    /// Refraction memory: (rule, positive fact ids) combinations that
    /// already fired. Cleared per-fact on retraction so re-asserted
    /// facts re-activate rules, as in CLIPS.
    fired: HashSet<(RuleIx, IdVec)>,
    /// Fact → refraction entries mentioning it (retraction cleanup
    /// without walking the whole `fired` set).
    fired_by_fact: HashMap<FactId, Vec<(RuleIx, IdVec)>>,
    /// Firings per rule, so removing a never-fired rule skips the
    /// refraction sweep entirely.
    fired_per_rule: HashMap<RuleIx, u64>,
    /// Commands emitted by fired rules, awaiting the embedding component.
    outbox: Vec<Invocation>,
    /// Bounded diagnostic trace of fired rule names (plus warnings).
    trace: TraceBuffer,
    /// Run the naive full-rematch oracle instead of the incremental
    /// matcher.
    naive: bool,
    /// Incremental join work accumulated since the last `run` returned.
    join_work: u64,
    /// Lifetime join work, never reset (benchmark accounting).
    join_work_total: u64,
    /// Peak agenda size observed since the last `run` returned.
    peak_agenda_acc: u64,
    /// Reusable join buffers (see [`JoinScratch`]).
    scratch: JoinScratch,
    /// Reusable activation buffer for seeded joins and reconciliation.
    acts_buf: Vec<(IdVec, Bindings)>,
    /// Per-phase wall-clock accumulators; `None` when profiling is off
    /// (the default — no clock reads on the hot path).
    profile: Option<PhaseProfile>,
}

impl Engine {
    /// An engine with no rules and no facts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule. Replaces any existing rule with the same name in
    /// place (dynamic rule distribution: managers receive updated rules
    /// at run time), keeping its definition order and refraction history.
    pub fn add_rule(&mut self, rule: Rule) {
        match self.ix_by_name.get(&rule.name).copied() {
            Some(ix) => {
                self.unregister_triggers(ix);
                self.clear_rule_agenda(ix);
                let compiled = self.compile(&rule);
                self.rules[ix as usize] = Some(rule);
                self.compiled[ix as usize] = compiled;
                self.register_triggers(ix);
                if !self.naive {
                    self.reconcile_rule(ix);
                }
            }
            None => {
                let ix = self.rules.len() as RuleIx;
                let compiled = self.compile(&rule);
                self.ix_by_name.insert(rule.name.clone(), ix);
                self.rules.push(Some(rule));
                self.compiled.push(compiled);
                self.live_rules += 1;
                self.register_triggers(ix);
                if !self.naive {
                    self.reconcile_rule(ix);
                }
            }
        }
    }

    /// Remove a rule by name; true if it existed. O(name lookup +
    /// pending activations); the refraction memory is swept only if the
    /// rule ever fired.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        let Some(ix) = self.ix_by_name.remove(name) else {
            return false;
        };
        self.unregister_triggers(ix);
        self.clear_rule_agenda(ix);
        self.rules[ix as usize] = None;
        self.live_rules -= 1;
        if self.fired_per_rule.remove(&ix).is_some_and(|n| n > 0) {
            self.fired.retain(|(r, _)| *r != ix);
        }
        true
    }

    /// Number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.live_rules
    }

    /// Names of loaded rules, in definition order.
    pub fn rule_names(&self) -> impl Iterator<Item = &str> {
        self.rules
            .iter()
            .filter_map(|r| r.as_ref().map(|r| r.name.as_str()))
    }

    /// Assert a fact into working memory; the delta propagates through
    /// every rule whose condition elements mention its template.
    pub fn assert_fact(&mut self, fact: Fact) -> FactId {
        let (id, fresh, tid) = self.facts.assert_fact_interned(fact);
        if fresh && !self.naive {
            self.propagate_assert(id, tid);
        }
        id
    }

    /// Retract a fact: its activations leave the agenda, refraction
    /// entries that reference it are dropped (fact ids are never reused,
    /// so they could never match again), and rules with negated patterns
    /// on its template are re-evaluated (a retraction can *satisfy* a
    /// negation).
    pub fn retract(&mut self, id: FactId) -> Option<Fact> {
        let (fact, tid) = self.facts.retract_interned(id)?;
        if let Some(keys) = self.fired_by_fact.remove(&id) {
            for key in keys {
                if self.fired.remove(&key) {
                    if let Some(n) = self.fired_per_rule.get_mut(&key.0) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
        }
        if !self.naive {
            if let Some(keys) = self.agenda_by_fact.remove(&id) {
                for key in keys {
                    self.agenda.remove(&key);
                    for &other in key.ids.0.as_slice() {
                        if other != id {
                            self.unindex_agenda_fact(other, &key);
                        }
                    }
                }
            }
            let neg: Vec<RuleIx> = self.neg_triggers.get(&tid).cloned().unwrap_or_default();
            for ix in neg {
                self.reconcile_rule(ix);
            }
        }
        Some(fact)
    }

    /// Retract all facts of a template (e.g. clearing stale telemetry
    /// before asserting a fresh report).
    pub fn retract_template(&mut self, template: &str) -> usize {
        let ids: Vec<FactId> = self.facts.by_template(template).map(|(id, _)| id).collect();
        let n = ids.len();
        for id in ids {
            self.retract(id);
        }
        n
    }

    /// Retract all facts of `template` whose `slot` equals `value`
    /// (e.g. clearing a process's stale telemetry before asserting a
    /// fresh report). Returns how many facts were retracted.
    pub fn retract_matching(&mut self, template: &str, slot: &str, value: &Value) -> usize {
        let ids: Vec<FactId> = self
            .facts
            .by_template(template)
            .filter(|(_, f)| f.get(slot).is_some_and(|v| v.loose_eq(value)))
            .map(|(id, _)| id)
            .collect();
        let n = ids.len();
        for id in ids {
            self.retract(id);
        }
        n
    }

    /// Working-memory access.
    pub fn facts(&self) -> &FactStore {
        &self.facts
    }

    /// Drain the commands emitted by fired rules since the last drain.
    pub fn take_invocations(&mut self) -> Vec<Invocation> {
        std::mem::take(&mut self.outbox)
    }

    /// The retained diagnostic trace (most recent
    /// [`DEFAULT_TRACE_CAPACITY`] entries unless resized), oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &str> {
        self.trace.buf.iter().map(String::as_str)
    }

    /// Drain the retained trace, resetting the dropped-entry counter.
    pub fn take_trace(&mut self) -> Vec<String> {
        self.trace.take()
    }

    /// Trace entries evicted from the bounded buffer since the last
    /// [`Engine::take_trace`].
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped
    }

    /// Resize the trace ring buffer (minimum 1), evicting the oldest
    /// entries if it shrinks.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Switch between the incremental matcher (default) and the naive
    /// full-rematch oracle. Switching back to incremental rebuilds the
    /// agenda from scratch, so the toggle is safe at any point; the two
    /// modes produce identical firing sequences.
    pub fn use_naive_matcher(&mut self, on: bool) {
        if self.naive == on {
            return;
        }
        self.naive = on;
        if on {
            self.agenda.clear();
            self.agenda_by_fact.clear();
            self.peak_agenda_acc = 0;
        } else {
            self.rebuild_agenda();
        }
    }

    /// Is the naive full-rematch oracle active?
    pub fn naive_matcher(&self) -> bool {
        self.naive
    }

    /// Lifetime join work — candidate facts examined by the matcher
    /// since the engine was created (never reset; the per-run delta is
    /// [`RunStats::activations`]).
    pub fn join_work_total(&self) -> u64 {
        self.join_work_total
    }

    /// Turn per-phase wall-clock profiling on or off. Off (the default)
    /// costs nothing; on, the engine reads the monotonic clock a handful
    /// of times per propagation and firing. Turning it off discards any
    /// accumulated counters.
    pub fn enable_phase_profile(&mut self, on: bool) {
        if on {
            if self.profile.is_none() {
                self.profile = Some(PhaseProfile::default());
            }
        } else {
            self.profile = None;
        }
    }

    /// The per-phase counters accumulated so far (zero when profiling is
    /// disabled).
    pub fn phase_profile(&self) -> PhaseProfile {
        self.profile.unwrap_or_default()
    }

    /// Drain the per-phase counters, resetting them to zero (profiling
    /// stays enabled if it was).
    pub fn take_phase_profile(&mut self) -> PhaseProfile {
        match self.profile.as_mut() {
            Some(p) => std::mem::take(p),
            None => PhaseProfile::default(),
        }
    }

    #[inline]
    fn prof_now(&self) -> Option<std::time::Instant> {
        self.profile.is_some().then(std::time::Instant::now)
    }

    #[inline]
    fn prof_add_match(&mut self, t0: Option<std::time::Instant>) {
        if let (Some(p), Some(t)) = (self.profile.as_mut(), t0) {
            p.match_ns += t.elapsed().as_nanos() as u64;
        }
    }

    #[inline]
    fn prof_add_agenda(&mut self, t0: Option<std::time::Instant>) {
        if let (Some(p), Some(t)) = (self.profile.as_mut(), t0) {
            p.agenda_ns += t.elapsed().as_nanos() as u64;
        }
    }

    /// Fire with exclusive `fire_ns` accounting: match and agenda work
    /// triggered by the rule's own asserts/retracts lands in those
    /// counters while firing, so it is subtracted from the wall time
    /// charged to the fire phase.
    fn fire_timed(&mut self, ix: RuleIx, fact_ids: &[FactId], bindings: &Bindings) {
        let Some(before) = self.profile else {
            self.fire(ix, fact_ids, bindings);
            return;
        };
        let t = std::time::Instant::now();
        self.fire(ix, fact_ids, bindings);
        let elapsed = t.elapsed().as_nanos() as u64;
        if let Some(p) = self.profile.as_mut() {
            let nested = (p.match_ns - before.match_ns) + (p.agenda_ns - before.agenda_ns);
            p.fire_ns += elapsed.saturating_sub(nested);
        }
    }

    /// Run match-resolve-act cycles until quiescence or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunStats {
        if self.naive {
            return self.run_naive(max_cycles);
        }
        let mut stats = RunStats::default();
        self.peak_agenda_acc = self.peak_agenda_acc.max(self.agenda.len() as u64);
        loop {
            if stats.cycles >= max_cycles {
                stats.hit_limit = true;
                break;
            }
            stats.cycles += 1;
            let t_agenda = self.prof_now();
            let Some((key, bindings)) = self
                .agenda
                .last_key_value()
                .map(|(k, b)| (k.clone(), b.clone()))
            else {
                break;
            };
            self.agenda_remove(&key);
            self.prof_add_agenda(t_agenda);
            let ix = key.rule.0;
            let ids = key.ids.0;
            self.record_fired(ix, ids.clone());
            let name = self.rules[ix as usize]
                .as_ref()
                .expect("agenda entries only for live rules")
                .name
                .clone();
            self.trace.push(name);
            stats.fired += 1;
            self.fire_timed(ix, ids.as_slice(), &bindings);
        }
        stats.activations = std::mem::take(&mut self.join_work);
        stats.peak_agenda = std::mem::take(&mut self.peak_agenda_acc);
        stats
    }

    /// The original per-cycle full-rematch loop, kept as the
    /// differential-testing oracle and benchmark baseline. Join work
    /// counts every fact examined while re-matching each cycle.
    fn run_naive(&mut self, max_cycles: u64) -> RunStats {
        let mut stats = RunStats::default();
        loop {
            if stats.cycles >= max_cycles {
                stats.hit_limit = true;
                return stats;
            }
            stats.cycles += 1;
            let t_match = self.prof_now();
            let mut work = 0u64;
            let mut agenda = 0u64;
            let mut best: Option<(RuleIx, Vec<FactId>, Bindings)> = None;
            type NaiveKey = (i32, FactId, Reverse<RuleIx>, Reverse<Vec<FactId>>);
            let mut best_key: Option<NaiveKey> = None;
            for (ix, rule) in self.rules.iter().enumerate() {
                let Some(rule) = rule else { continue };
                let ix = ix as RuleIx;
                for (ids, bindings) in join_naive(rule, &self.facts, &mut work) {
                    if self.fired.contains(&(ix, IdVec::from_slice(&ids))) {
                        continue;
                    }
                    agenda += 1;
                    let recency = ids.iter().copied().max().unwrap_or(FactId(0));
                    let key = (rule.salience, recency, Reverse(ix), Reverse(ids.clone()));
                    if best_key.as_ref().is_none_or(|bk| key > *bk) {
                        best_key = Some(key);
                        best = Some((ix, ids, bindings));
                    }
                }
            }
            self.prof_add_match(t_match);
            self.join_work_total += work;
            stats.activations += work;
            stats.peak_agenda = stats.peak_agenda.max(agenda);
            let Some((ix, ids, bindings)) = best else {
                return stats;
            };
            self.record_fired(ix, IdVec::from_slice(&ids));
            let name = self.rules[ix as usize]
                .as_ref()
                .expect("selected rule exists")
                .name
                .clone();
            self.trace.push(name);
            stats.fired += 1;
            self.fire_timed(ix, &ids, &bindings);
        }
    }

    // --- Incremental matching internals. ---

    fn compile(&mut self, rule: &Rule) -> CompiledRule {
        let mut c = CompiledRule::default();
        for ce in &rule.ces {
            match ce {
                Ce::Pos(p) => {
                    let tid = self.facts.intern_template(&p.template);
                    c.ce_tids.push(Some(tid));
                    if !c.pos_tmpls.contains(&tid) {
                        c.pos_tmpls.push(tid);
                    }
                }
                Ce::Neg(p) => {
                    let tid = self.facts.intern_template(&p.template);
                    c.ce_tids.push(Some(tid));
                    if !c.neg_tmpls.contains(&tid) {
                        c.neg_tmpls.push(tid);
                    }
                }
                Ce::Test(_) => c.ce_tids.push(None),
            }
        }
        c
    }

    fn register_triggers(&mut self, ix: RuleIx) {
        let c = self.compiled[ix as usize].clone();
        for t in c.pos_tmpls {
            let v = self.pos_triggers.entry(t).or_default();
            if !v.contains(&ix) {
                v.push(ix);
            }
        }
        for t in c.neg_tmpls {
            let v = self.neg_triggers.entry(t).or_default();
            if !v.contains(&ix) {
                v.push(ix);
            }
        }
    }

    fn unregister_triggers(&mut self, ix: RuleIx) {
        let c = self.compiled[ix as usize].clone();
        for t in c.pos_tmpls {
            if let Some(v) = self.pos_triggers.get_mut(&t) {
                v.retain(|&r| r != ix);
            }
        }
        for t in c.neg_tmpls {
            if let Some(v) = self.neg_triggers.get_mut(&t) {
                v.retain(|&r| r != ix);
            }
        }
    }

    fn make_key(&self, ix: RuleIx, salience: i32, ids: IdVec) -> AgendaKey {
        AgendaKey {
            salience,
            recency: ids.recency(),
            rule: Reverse(ix),
            ids: Reverse(ids),
        }
    }

    fn agenda_insert(&mut self, key: AgendaKey, bindings: Bindings) {
        for &id in key.ids.0.as_slice() {
            self.agenda_by_fact
                .entry(id)
                .or_default()
                .insert(key.clone());
        }
        self.agenda.insert(key, bindings);
        self.peak_agenda_acc = self.peak_agenda_acc.max(self.agenda.len() as u64);
    }

    fn agenda_remove(&mut self, key: &AgendaKey) {
        if self.agenda.remove(key).is_none() {
            return;
        }
        for &id in key.ids.0.as_slice() {
            self.unindex_agenda_fact(id, key);
        }
    }

    fn unindex_agenda_fact(&mut self, id: FactId, key: &AgendaKey) {
        if let Some(set) = self.agenda_by_fact.get_mut(&id) {
            set.remove(key);
            if set.is_empty() {
                self.agenda_by_fact.remove(&id);
            }
        }
    }

    fn clear_rule_agenda(&mut self, ix: RuleIx) {
        let stale: Vec<AgendaKey> = self
            .agenda
            .keys()
            .filter(|k| k.rule.0 == ix)
            .cloned()
            .collect();
        for key in stale {
            self.agenda_remove(&key);
        }
    }

    fn note_work(&mut self, work: u64) {
        self.join_work += work;
        self.join_work_total += work;
    }

    /// A freshly asserted fact: re-evaluate rules negating its template
    /// (an assert can *invalidate* activations), then run seeded joins
    /// for rules with positive patterns on it — only combinations
    /// containing the new fact are examined.
    fn propagate_assert(&mut self, id: FactId, tid: TemplateId) {
        let neg: Vec<RuleIx> = self.neg_triggers.get(&tid).cloned().unwrap_or_default();
        for &ix in &neg {
            self.reconcile_rule(ix);
        }
        if let Some(pos) = self.pos_triggers.get(&tid).cloned() {
            for ix in pos {
                if neg.contains(&ix) {
                    continue; // already fully re-evaluated
                }
                self.seed_rule(ix, tid, id);
            }
        }
    }

    /// Seeded join: compute exactly the activations of `ix` that match
    /// the new fact, once per positive CE of its template (an activation
    /// contains the new fact at exactly one position, so each is
    /// produced exactly once).
    fn seed_rule(&mut self, ix: RuleIx, tid: TemplateId, seed: FactId) {
        let t_match = self.prof_now();
        let mut acts = std::mem::take(&mut self.acts_buf);
        acts.clear();
        let (work, salience) = {
            let rule = self.rules[ix as usize].as_ref().expect("live rule");
            let compiled = &self.compiled[ix as usize];
            let mut work = 0u64;
            let mut pos_ix = 0usize;
            for (ce_i, ce) in rule.ces.iter().enumerate() {
                if matches!(ce, Ce::Pos(_)) {
                    if compiled.ce_tids[ce_i] == Some(tid) {
                        join_compiled(
                            rule,
                            compiled,
                            &self.facts,
                            Some((pos_ix, seed)),
                            &mut work,
                            &mut self.scratch,
                            &mut acts,
                        );
                    }
                    pos_ix += 1;
                }
            }
            (work, rule.salience)
        };
        self.prof_add_match(t_match);
        self.note_work(work);
        let t_agenda = self.prof_now();
        for (ids, bindings) in acts.drain(..) {
            // The activation contains the brand-new fact, so it can be in
            // neither the refraction memory nor the agenda already.
            let key = self.make_key(ix, salience, ids);
            self.agenda_insert(key, bindings);
        }
        self.acts_buf = acts;
        self.prof_add_agenda(t_agenda);
    }

    /// Fully re-evaluate one rule and diff the result against its agenda
    /// entries (the fallback for negated templates, rule replacement and
    /// matcher-mode switches, where a delta is not monotone).
    fn reconcile_rule(&mut self, ix: RuleIx) {
        let t_match = self.prof_now();
        let mut acts = std::mem::take(&mut self.acts_buf);
        acts.clear();
        let (work, salience) = {
            let rule = self.rules[ix as usize].as_ref().expect("live rule");
            let compiled = &self.compiled[ix as usize];
            let mut work = 0u64;
            join_compiled(
                rule,
                compiled,
                &self.facts,
                None,
                &mut work,
                &mut self.scratch,
                &mut acts,
            );
            (work, rule.salience)
        };
        self.prof_add_match(t_match);
        self.note_work(work);
        let t_agenda = self.prof_now();
        let mut fresh: HashMap<AgendaKey, Bindings> = HashMap::with_capacity(acts.len());
        for (ids, bindings) in acts.drain(..) {
            fresh.insert(self.make_key(ix, salience, ids), bindings);
        }
        self.acts_buf = acts;
        let stale: Vec<AgendaKey> = self
            .agenda
            .keys()
            .filter(|k| k.rule.0 == ix && !fresh.contains_key(k))
            .cloned()
            .collect();
        for key in stale {
            self.agenda_remove(&key);
        }
        for (key, bindings) in fresh {
            if self.fired.contains(&(ix, key.ids.0.clone())) {
                continue;
            }
            if !self.agenda.contains_key(&key) {
                self.agenda_insert(key, bindings);
            }
        }
        self.prof_add_agenda(t_agenda);
    }

    fn rebuild_agenda(&mut self) {
        self.agenda.clear();
        self.agenda_by_fact.clear();
        for ix in 0..self.rules.len() as RuleIx {
            if self.rules[ix as usize].is_some() {
                self.reconcile_rule(ix);
            }
        }
    }

    fn record_fired(&mut self, ix: RuleIx, ids: IdVec) {
        for &id in ids.as_slice() {
            self.fired_by_fact
                .entry(id)
                .or_default()
                .push((ix, ids.clone()));
        }
        *self.fired_per_rule.entry(ix).or_insert(0) += 1;
        self.fired.insert((ix, ids));
    }

    fn fire(&mut self, ix: RuleIx, fact_ids: &[FactId], bindings: &Bindings) {
        let rule = self.rules[ix as usize].as_ref().expect("fired rule exists");
        let actions = rule.actions.clone();
        debug_assert_eq!(rule.pos_ce_count(), fact_ids.len());
        for action in actions {
            match action {
                Action::Assert { template, slots } => {
                    let mut fact = Fact::new(template);
                    for (slot, term) in slots {
                        match term.resolve(bindings) {
                            Some(v) => {
                                fact.slots.insert(slot, v);
                            }
                            None => {
                                // Unbound variable in RHS: record and skip
                                // the slot rather than aborting the run.
                                self.trace.push(format!(
                                    "warning: unbound variable in assert of ({})",
                                    fact.template
                                ));
                            }
                        }
                    }
                    self.assert_fact(fact);
                }
                Action::Retract(pos_ix) => {
                    if let Some(&id) = fact_ids.get(pos_ix) {
                        self.retract(id);
                    }
                }
                Action::Modify { pos_index, slots } => {
                    if let Some(&id) = fact_ids.get(pos_index) {
                        if let Some(mut fact) = self.retract(id) {
                            for (slot, term) in slots {
                                if let Some(v) = term.resolve(bindings) {
                                    fact.slots.insert(slot, v);
                                }
                            }
                            self.assert_fact(fact);
                        }
                    }
                }
                Action::Call { command, args } => {
                    let resolved: Vec<Value> =
                        args.iter().filter_map(|t| t.resolve(bindings)).collect();
                    self.outbox.push(Invocation {
                        command,
                        args: resolved,
                    });
                }
            }
        }
    }
}

/// Left-to-right join over the alpha memories, optionally pinning one
/// positive CE position to a single seed fact. `work` counts every
/// candidate fact examined. Appends complete matches to `out`. The
/// intermediate partial-match vectors live in `scratch` and are reused
/// across calls.
/// The candidate list for one positive/negated CE under bindings `b`:
/// probe the store's equality-join index with the first slot pinned by a
/// constant or an already-bound variable (an indexed Rete alpha memory —
/// the bucket holds only facts that can satisfy that slot), falling back
/// to the full alpha memory when nothing is pinned. Candidates are
/// always re-verified by `match_slots`, so a probe changes which facts
/// are *examined*, never which activations result.
fn join_candidates<'f>(
    p: &Pattern,
    b: &Bindings,
    facts: &'f FactStore,
    tid: TemplateId,
) -> &'f [FactId] {
    for (slot, test) in &p.tests {
        let pinned = match test {
            SlotTest::Const(v) | SlotTest::Cmp(CmpOp::Eq, v) => Some(v),
            SlotTest::Var(name) => b.get(name),
            SlotTest::Cmp(..) => None,
        };
        if let Some(v) = pinned {
            return facts.ids_with_slot(tid, slot, v);
        }
    }
    facts.ids_of(tid)
}

fn join_compiled(
    rule: &Rule,
    compiled: &CompiledRule,
    facts: &FactStore,
    seed: Option<(usize, FactId)>,
    work: &mut u64,
    scratch: &mut JoinScratch,
    out: &mut Vec<(IdVec, Bindings)>,
) {
    let partial = &mut scratch.partial;
    let next = &mut scratch.next;
    partial.clear();
    partial.push((IdVec::new(), Bindings::new()));
    let mut pos_ix = 0usize;
    for (ce_i, ce) in rule.ces.iter().enumerate() {
        match ce {
            Ce::Pos(p) => {
                let tid = compiled.ce_tids[ce_i].expect("positive CE has a template");
                let pinned = seed.and_then(|(s_pos, s_id)| (s_pos == pos_ix).then_some(s_id));
                next.clear();
                for (ids, b) in partial.iter() {
                    match pinned {
                        Some(s_id) => {
                            *work += 1;
                            if !ids.contains(s_id) {
                                if let Some(fact) = facts.get(s_id) {
                                    if let Some(nb) = p.match_slots(fact, b) {
                                        let mut nids = ids.clone();
                                        nids.push(s_id);
                                        next.push((nids, nb));
                                    }
                                }
                            }
                        }
                        None => {
                            for &fid in join_candidates(p, b, facts, tid) {
                                *work += 1;
                                if ids.contains(fid) {
                                    // A fact may not be matched twice by
                                    // one rule instantiation.
                                    continue;
                                }
                                let fact = facts.get(fid).expect("index ids are live");
                                if let Some(nb) = p.match_slots(fact, b) {
                                    let mut nids = ids.clone();
                                    nids.push(fid);
                                    next.push((nids, nb));
                                }
                            }
                        }
                    }
                }
                std::mem::swap(partial, next);
                pos_ix += 1;
            }
            Ce::Neg(p) => {
                let tid = compiled.ce_tids[ce_i].expect("negated CE has a template");
                partial.retain(|(_, b)| {
                    let mut blocked = false;
                    for &fid in join_candidates(p, b, facts, tid) {
                        *work += 1;
                        let fact = facts.get(fid).expect("index ids are live");
                        if p.match_slots(fact, b).is_some() {
                            blocked = true;
                            break;
                        }
                    }
                    !blocked
                });
            }
            Ce::Test(t) => partial.retain(|(_, b)| t.eval(b)),
        }
        if partial.is_empty() {
            return;
        }
    }
    out.append(partial);
}

/// The seed algorithm's join: re-derives every activation from a full
/// scan of working memory, per condition element, per partial match —
/// `work` counts each fact visited, template matches and misses alike
/// (that is what the original matcher examined each cycle).
fn join_naive(rule: &Rule, facts: &FactStore, work: &mut u64) -> Vec<(Vec<FactId>, Bindings)> {
    let mut partial: Vec<(Vec<FactId>, Bindings)> = vec![(Vec::new(), Bindings::new())];
    for ce in &rule.ces {
        match ce {
            Ce::Pos(p) => {
                let mut next = Vec::new();
                for (ids, b) in &partial {
                    for (fid, fact) in facts.iter() {
                        *work += 1;
                        if fact.template != p.template || ids.contains(&fid) {
                            continue;
                        }
                        if let Some(nb) = p.match_slots(fact, b) {
                            let mut nids = ids.clone();
                            nids.push(fid);
                            next.push((nids, nb));
                        }
                    }
                }
                partial = next;
            }
            Ce::Neg(p) => {
                partial.retain(|(_, b)| {
                    let mut blocked = false;
                    for (_, fact) in facts.iter() {
                        *work += 1;
                        if fact.template == p.template && p.match_slots(fact, b).is_some() {
                            blocked = true;
                            break;
                        }
                    }
                    !blocked
                });
            }
            Ce::Test(t) => partial.retain(|(_, b)| t.eval(b)),
        }
        if partial.is_empty() {
            break;
        }
    }
    partial
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, Term, Test};
    use crate::value::CmpOp;

    /// The paper's canonical host-manager rule pair (Section 5.3): a large
    /// communication buffer implies a local CPU problem; a small one
    /// implies the problem is remote.
    fn host_manager_rules() -> Vec<Rule> {
        vec![
            Rule::new("local-cpu-cause")
                .when(
                    Pattern::new("violation")
                        .slot_var("pid", "p")
                        .slot_var("buffer", "b"),
                )
                .test(Test::Cmp(CmpOp::Gt, Term::var("b"), Term::val(1000)))
                .then_call("adjust-cpu", vec![Term::var("p")])
                .then_assert(
                    "diagnosed",
                    vec![("pid", Term::var("p")), ("cause", Term::val("local"))],
                ),
            Rule::new("remote-cause")
                .when(
                    Pattern::new("violation")
                        .slot_var("pid", "p")
                        .slot_var("buffer", "b"),
                )
                .test(Test::Cmp(CmpOp::Le, Term::var("b"), Term::val(1000)))
                .then_call("notify-domain", vec![Term::var("p")])
                .then_assert(
                    "diagnosed",
                    vec![("pid", Term::var("p")), ("cause", Term::val("remote"))],
                ),
        ]
    }

    #[test]
    fn forward_chaining_diagnoses_local_vs_remote() {
        let mut e = Engine::new();
        for r in host_manager_rules() {
            e.add_rule(r);
        }
        e.assert_fact(Fact::new("violation").with("pid", 1).with("buffer", 50_000));
        e.assert_fact(Fact::new("violation").with("pid", 2).with("buffer", 12));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        assert!(!stats.hit_limit);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 2);
        assert!(inv
            .iter()
            .any(|i| i.command == "adjust-cpu" && i.args == vec![Value::Int(1)]));
        assert!(inv
            .iter()
            .any(|i| i.command == "notify-domain" && i.args == vec![Value::Int(2)]));
        // Derived facts exist.
        assert_eq!(e.facts().by_template("diagnosed").count(), 2);
    }

    #[test]
    fn refraction_prevents_refiring() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("a").slot_var("x", "x"))
                .then_call("hit", vec![Term::var("x")]),
        );
        e.assert_fact(Fact::new("a").with("x", 1));
        assert_eq!(e.run(100).fired, 1);
        // Re-running without new facts fires nothing.
        assert_eq!(e.run(100).fired, 0);
        // A new fact re-activates.
        e.assert_fact(Fact::new("a").with("x", 2));
        assert_eq!(e.run(100).fired, 1);
        assert_eq!(e.take_invocations().len(), 2);
    }

    #[test]
    fn retract_reassert_refires() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("a").slot_const("x", 1))
                .then_call("hit", vec![]),
        );
        let id = e.assert_fact(Fact::new("a").with("x", 1));
        assert_eq!(e.run(100).fired, 1);
        e.retract(id);
        e.assert_fact(Fact::new("a").with("x", 1));
        assert_eq!(e.run(100).fired, 1, "fresh fact id clears refraction");
    }

    #[test]
    fn salience_orders_firing() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("low")
                .salience(-10)
                .when(Pattern::new("go"))
                .then_call("low", vec![]),
        );
        e.add_rule(
            Rule::new("high")
                .salience(10)
                .when(Pattern::new("go"))
                .then_call("high", vec![]),
        );
        e.assert_fact(Fact::new("go"));
        e.run(100);
        let order: Vec<String> = e
            .take_invocations()
            .into_iter()
            .map(|i| i.command)
            .collect();
        assert_eq!(order, vec!["high", "low"]);
    }

    #[test]
    fn chained_inference_via_asserted_facts() {
        // a -> b -> c chain: forward chaining derives transitively.
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("a-to-b")
                .when(Pattern::new("a").slot_var("v", "v"))
                .then_assert("b", vec![("v", Term::var("v"))]),
        );
        e.add_rule(
            Rule::new("b-to-c")
                .when(Pattern::new("b").slot_var("v", "v"))
                .then_assert("c", vec![("v", Term::var("v"))]),
        );
        e.assert_fact(Fact::new("a").with("v", 7));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        let c: Vec<_> = e.facts().by_template("c").collect();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].1.get("v"), Some(&Value::Int(7)));
    }

    #[test]
    fn retract_action_consumes_trigger() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("consume")
                .when(Pattern::new("event").slot_var("n", "n"))
                .then_retract(0)
                .then_call("handled", vec![Term::var("n")]),
        );
        e.assert_fact(Fact::new("event").with("n", 1));
        e.assert_fact(Fact::new("event").with("n", 2));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        assert_eq!(e.facts().by_template("event").count(), 0, "events consumed");
    }

    #[test]
    fn cycle_limit_stops_runaway_rules() {
        // A rule that keeps asserting new facts forever.
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("runaway")
                .when(Pattern::new("n").slot_var("v", "v"))
                .then_retract(0)
                .then_assert("n", vec![("v", Term::var("v"))]),
        );
        // retract+assert same content gets a fresh id each cycle -> loops.
        e.assert_fact(Fact::new("n").with("v", 0));
        let stats = e.run(50);
        assert!(stats.hit_limit);
        assert_eq!(stats.cycles, 50);
    }

    #[test]
    fn dynamic_rule_replacement_and_removal() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("go"))
                .then_call("v1", vec![]),
        );
        // Replace in place (same name).
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("go"))
                .then_call("v2", vec![]),
        );
        assert_eq!(e.rule_count(), 1);
        e.assert_fact(Fact::new("go"));
        e.run(10);
        assert_eq!(e.take_invocations()[0].command, "v2");
        assert!(e.remove_rule("r"));
        assert!(!e.remove_rule("r"));
        assert_eq!(e.rule_count(), 0);
    }

    #[test]
    fn run_stats_count_join_work() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("job").slot_var("id", "i"))
                .then_call("work", vec![Term::var("i")]),
        );
        e.assert_fact(Fact::new("job").with("id", 1));
        e.assert_fact(Fact::new("job").with("id", 2));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        // Delta join work: each assert runs one seeded join examining
        // exactly the new fact; firing asserts nothing, so 1 + 1.
        assert_eq!(stats.activations, 2);
        assert_eq!(stats.peak_agenda, 2);
        // Quiescent re-run does no join work.
        let idle = e.run(100);
        assert_eq!(idle.activations, 0);
        assert_eq!(idle.peak_agenda, 0);
        // The lifetime counter keeps the total.
        assert_eq!(e.join_work_total(), 2);
    }

    #[test]
    fn recency_prefers_newer_facts() {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("job").slot_var("id", "i"))
                .then_call("work", vec![Term::var("i")]),
        );
        e.assert_fact(Fact::new("job").with("id", 1));
        e.assert_fact(Fact::new("job").with("id", 2));
        e.run(100);
        let order: Vec<Value> = e
            .take_invocations()
            .into_iter()
            .map(|mut i| i.args.remove(0))
            .collect();
        assert_eq!(order, vec![Value::Int(2), Value::Int(1)], "newest first");
    }

    #[test]
    fn empty_lhs_rule_fires_once() {
        let mut e = Engine::new();
        e.add_rule(Rule::new("boot").then_call("boot", vec![]));
        assert_eq!(e.run(10).fired, 1);
        assert_eq!(e.run(10).fired, 0, "refraction holds with no facts");
        assert_eq!(e.take_invocations().len(), 1);
    }

    #[test]
    fn negation_tracks_asserts_and_retracts_incrementally() {
        // Non-monotone deltas: an *assert* can remove an activation and
        // a *retract* can create one.
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("uncovered")
                .when(Pattern::new("task").slot_var("id", "t"))
                .when_not(Pattern::new("done").slot_var("id", "t"))
                .then_call("pending", vec![Term::var("t")]),
        );
        e.assert_fact(Fact::new("task").with("id", 1));
        let done = e.assert_fact(Fact::new("done").with("id", 1));
        assert_eq!(e.run(100).fired, 0, "assert of blocker removed activation");
        e.retract(done);
        assert_eq!(e.run(100).fired, 1, "retract of blocker re-activated");
        // A fresh blocker suppresses the next task before it fires.
        e.assert_fact(Fact::new("done").with("id", 2));
        e.assert_fact(Fact::new("task").with("id", 2));
        assert_eq!(e.run(100).fired, 0);
    }

    #[test]
    fn trace_is_bounded_and_drainable() {
        let mut e = Engine::new();
        e.set_trace_capacity(4);
        e.add_rule(
            Rule::new("consume")
                .when(Pattern::new("event").slot_var("n", "n"))
                .then_retract(0),
        );
        for n in 0..10 {
            e.assert_fact(Fact::new("event").with("n", n));
        }
        assert_eq!(e.run(100).fired, 10);
        assert_eq!(e.trace().count(), 4, "ring buffer keeps the last K");
        assert_eq!(e.trace_dropped(), 6);
        let drained = e.take_trace();
        assert_eq!(drained.len(), 4);
        assert!(drained.iter().all(|t| t == "consume"));
        assert_eq!(e.trace().count(), 0);
        assert_eq!(e.trace_dropped(), 0);
    }

    #[test]
    fn phase_profile_accumulates_and_drains() {
        let mut e = Engine::new();
        e.enable_phase_profile(true);
        for r in host_manager_rules() {
            e.add_rule(r);
        }
        e.assert_fact(Fact::new("violation").with("pid", 1).with("buffer", 5_000));
        e.assert_fact(Fact::new("violation").with("pid", 2).with("buffer", 10));
        let stats = e.run(100);
        assert_eq!(stats.fired, 2);
        let p = e.take_phase_profile();
        assert!(
            p.match_ns + p.agenda_ns + p.fire_ns > 0,
            "profiling accumulated some wall time: {p:?}"
        );
        assert_eq!(e.take_phase_profile(), PhaseProfile::default(), "drained");
        // Disabled profiling reports zeros and costs nothing.
        e.enable_phase_profile(false);
        e.assert_fact(Fact::new("violation").with("pid", 3).with("buffer", 70));
        e.run(100);
        assert_eq!(e.phase_profile(), PhaseProfile::default());
    }

    /// Mirror of the scenario mix in the differential proptest, as a fast
    /// deterministic check: both matchers must fire identically.
    #[test]
    fn naive_oracle_and_incremental_matcher_agree() {
        let build = |naive: bool| {
            let mut e = Engine::new();
            e.use_naive_matcher(naive);
            e.set_trace_capacity(1024);
            for r in host_manager_rules() {
                e.add_rule(r);
            }
            e.add_rule(
                Rule::new("undiagnosed")
                    .salience(-5)
                    .when(Pattern::new("violation").slot_var("pid", "p"))
                    .when_not(Pattern::new("diagnosed").slot_var("pid", "p"))
                    .then_call("undiagnosed", vec![Term::var("p")]),
            );
            let a = e.assert_fact(Fact::new("violation").with("pid", 1).with("buffer", 9000));
            e.assert_fact(Fact::new("violation").with("pid", 2).with("buffer", 10));
            e.run(100);
            e.retract(a);
            e.assert_fact(Fact::new("violation").with("pid", 3).with("buffer", 2_000));
            e.run(100);
            (
                e.take_trace(),
                e.take_invocations(),
                e.facts().by_template("diagnosed").count(),
            )
        };
        let (naive_trace, naive_inv, naive_facts) = build(true);
        let (rete_trace, rete_inv, rete_facts) = build(false);
        assert_eq!(naive_trace, rete_trace);
        assert_eq!(naive_inv, rete_inv);
        assert_eq!(naive_facts, rete_facts);
    }
}
