//! # qos-inference — a forward-chaining expert-system shell
//!
//! The paper's QoS Host Manager and Domain Manager embed the CLIPS expert
//! system shell for diagnosis ("the inference engine, rule set and fact
//! repository are implemented using CLIPS"). This crate is a small,
//! faithful CLIPS subset built from scratch:
//!
//! * structured **facts** (template + named slots) in a working memory
//!   with duplicate suppression and fresh ids ([`fact`]);
//! * **rules** with positive/negated patterns, variable binding and join
//!   semantics, and boolean `test` conditions ([`pattern`], [`rule`]);
//! * a **forward-chaining engine** with salience + recency conflict
//!   resolution and refraction ([`engine`]);
//! * a **CLIPS-style text format** (`defrule` / `deffacts`) so rule sets
//!   are data, addable and removable at run time — the paper's dynamic
//!   rule distribution ([`clips`], [`sexpr`]).
//!
//! Rule conclusions reach the outside world through the engine's command
//! outbox ([`rule::Invocation`]): a fired `(call adjust-cpu ?pid)` is
//! drained by the embedding manager and translated into a resource-manager
//! action.
//!
//! ```
//! use qos_inference::prelude::*;
//!
//! let program = parse_program(r#"
//!     (defrule local-cpu-cause
//!       (violation (pid ?p) (buffer ?b))
//!       (test (> ?b 1000))
//!       =>
//!       (call adjust-cpu ?p))
//! "#).unwrap();
//!
//! let mut engine = Engine::new();
//! for rule in program.rules { engine.add_rule(rule); }
//! engine.assert_fact(Fact::new("violation").with("pid", 12).with("buffer", 9000));
//! engine.run(100);
//! let commands = engine.take_invocations();
//! assert_eq!(commands[0].command, "adjust-cpu");
//! ```

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod clips;
pub mod engine;
pub mod fact;
mod idvec;
pub mod pattern;
pub mod rule;
pub mod sexpr;
pub mod value;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::clips::{parse_program, parse_rule, ClipsError, Program};
    pub use crate::engine::{Engine, PhaseProfile, RunStats, DEFAULT_TRACE_CAPACITY};
    pub use crate::fact::{Fact, FactId, FactStore, TemplateId};
    pub use crate::pattern::{Bindings, Pattern, SlotTest, Term, Test};
    pub use crate::rule::{Action, Ce, Invocation, Rule};
    pub use crate::value::{CmpOp, Value};
}

pub use prelude::*;
