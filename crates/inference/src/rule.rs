//! Rules: condition elements (patterns, negations, tests) plus right-hand
//! side actions, and the join algorithm that produces activations.

use crate::fact::{FactId, FactStore};
use crate::pattern::{Bindings, Pattern, Term, Test};
use crate::value::Value;

/// A condition element on a rule's left-hand side, in CLIPS order.
#[derive(Clone, Debug, PartialEq)]
pub enum Ce {
    /// A fact matching this pattern must exist.
    Pos(Pattern),
    /// No fact matching this pattern may exist (under current bindings).
    Neg(Pattern),
    /// A boolean condition over bound variables.
    Test(Test),
}

/// A right-hand-side action.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Assert a new fact built from terms.
    Assert {
        /// Template of the asserted fact.
        template: String,
        /// Slot values (constants or bound variables).
        slots: Vec<(String, Term)>,
    },
    /// Retract the fact matched by the `n`-th *positive* condition element.
    Retract(usize),
    /// Modify the fact matched by the `n`-th positive condition element:
    /// retract it and re-assert it with the given slots updated (CLIPS
    /// `modify` semantics — the new fact gets a fresh id and re-activates
    /// rules).
    Modify {
        /// Index of the positive condition element.
        pos_index: usize,
        /// Slots to overwrite (terms resolved at fire time).
        slots: Vec<(String, Term)>,
    },
    /// Emit a command invocation to the engine's outbox; the embedding
    /// component (e.g. the QoS Host Manager) interprets it — this is how
    /// rule conclusions reach resource managers.
    Call {
        /// Command name, e.g. `adjust-cpu`.
        command: String,
        /// Arguments resolved at fire time.
        args: Vec<Term>,
    },
}

/// A production rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Unique rule name.
    pub name: String,
    /// Conflict-resolution priority; higher fires first.
    pub salience: i32,
    /// Left-hand side.
    pub ces: Vec<Ce>,
    /// Right-hand side.
    pub actions: Vec<Action>,
}

impl Rule {
    /// New rule with salience 0.
    pub fn new(name: impl Into<String>) -> Self {
        Rule {
            name: name.into(),
            salience: 0,
            ces: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// Set salience.
    pub fn salience(mut self, s: i32) -> Self {
        self.salience = s;
        self
    }

    /// Add a positive pattern.
    pub fn when(mut self, p: Pattern) -> Self {
        self.ces.push(Ce::Pos(p));
        self
    }

    /// Add a negated pattern.
    pub fn when_not(mut self, p: Pattern) -> Self {
        self.ces.push(Ce::Neg(p));
        self
    }

    /// Add a test condition.
    pub fn test(mut self, t: Test) -> Self {
        self.ces.push(Ce::Test(t));
        self
    }

    /// Add an assert action.
    pub fn then_assert(mut self, template: impl Into<String>, slots: Vec<(&str, Term)>) -> Self {
        self.actions.push(Action::Assert {
            template: template.into(),
            slots: slots.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self
    }

    /// Add a retract action for the `n`-th positive pattern.
    pub fn then_retract(mut self, pos_index: usize) -> Self {
        self.actions.push(Action::Retract(pos_index));
        self
    }

    /// Add a modify action for the `n`-th positive pattern.
    pub fn then_modify(mut self, pos_index: usize, slots: Vec<(&str, Term)>) -> Self {
        self.actions.push(Action::Modify {
            pos_index,
            slots: slots.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self
    }

    /// Add a command invocation action.
    pub fn then_call(mut self, command: impl Into<String>, args: Vec<Term>) -> Self {
        self.actions.push(Action::Call {
            command: command.into(),
            args,
        });
        self
    }

    /// Number of positive condition elements — the number of fact ids an
    /// activation of this rule records.
    pub fn pos_ce_count(&self) -> usize {
        self.ces
            .iter()
            .filter(|ce| matches!(ce, Ce::Pos(_)))
            .count()
    }

    /// Compute all complete matches of this rule against working memory.
    /// Each activation records the ids of the facts matched by positive
    /// condition elements, in order. This is the reference (full
    /// recompute) join; the engine normally matches incrementally and
    /// uses this shape only through its naive-matcher oracle.
    pub fn activations(&self, facts: &FactStore) -> Vec<(Vec<FactId>, Bindings)> {
        // Left-to-right join. `partial` holds (matched positive fact ids,
        // bindings) tuples surviving all CEs so far.
        let mut partial: Vec<(Vec<FactId>, Bindings)> = vec![(Vec::new(), Bindings::new())];
        for ce in &self.ces {
            match ce {
                Ce::Pos(p) => {
                    let mut next = Vec::new();
                    for (ids, b) in &partial {
                        for (fid, fact) in facts.by_template(&p.template) {
                            // A fact may not be matched twice by one rule
                            // instantiation.
                            if ids.contains(&fid) {
                                continue;
                            }
                            if let Some(nb) = p.match_fact(fact, b) {
                                let mut nids = ids.clone();
                                nids.push(fid);
                                next.push((nids, nb));
                            }
                        }
                    }
                    partial = next;
                }
                Ce::Neg(p) => {
                    partial.retain(|(_, b)| {
                        !facts
                            .by_template(&p.template)
                            .any(|(_, fact)| p.match_fact(fact, b).is_some())
                    });
                }
                Ce::Test(t) => {
                    partial.retain(|(_, b)| t.eval(b));
                }
            }
            if partial.is_empty() {
                break;
            }
        }
        partial
    }
}

/// A command emitted by a fired rule, to be interpreted by the embedding
/// component.
#[derive(Clone, Debug, PartialEq)]
pub struct Invocation {
    /// Command name.
    pub command: String,
    /// Resolved arguments.
    pub args: Vec<Value>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::value::CmpOp;

    fn store() -> FactStore {
        let mut s = FactStore::new();
        s.assert_fact(Fact::new("violation").with("pid", 1).with("fps", 15.0));
        s.assert_fact(Fact::new("violation").with("pid", 2).with("fps", 26.0));
        s.assert_fact(Fact::new("buffer").with("pid", 1).with("len", 9000));
        s.assert_fact(Fact::new("buffer").with("pid", 2).with("len", 10));
        s
    }

    #[test]
    fn single_pattern_activations() {
        let r = Rule::new("r").when(Pattern::new("violation").slot_var("pid", "p"));
        let acts = r.activations(&store());
        assert_eq!(acts.len(), 2);
    }

    #[test]
    fn join_on_shared_variable() {
        let r = Rule::new("local-cause")
            .when(Pattern::new("violation").slot_var("pid", "p"))
            .when(
                Pattern::new("buffer")
                    .slot_var("pid", "p")
                    .slot_cmp("len", CmpOp::Gt, 1000),
            );
        let acts = r.activations(&store());
        // Only pid 1 has a big buffer.
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].1.get("p"), Some(&Value::Int(1)));
        assert_eq!(acts[0].0.len(), 2, "two positive facts matched");
    }

    #[test]
    fn negation_excludes() {
        let mut s = store();
        let r = Rule::new("undiagnosed")
            .when(Pattern::new("violation").slot_var("pid", "p"))
            .when_not(Pattern::new("diagnosed").slot_var("pid", "p"));
        assert_eq!(r.activations(&s).len(), 2);
        s.assert_fact(Fact::new("diagnosed").with("pid", 1));
        let acts = r.activations(&s);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].1.get("p"), Some(&Value::Int(2)));
    }

    #[test]
    fn test_ce_filters_joins() {
        let r = Rule::new("low-fps")
            .when(
                Pattern::new("violation")
                    .slot_var("pid", "p")
                    .slot_var("fps", "f"),
            )
            .test(Test::Cmp(CmpOp::Lt, Term::var("f"), Term::val(20.0)));
        let acts = r.activations(&store());
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].1.get("p"), Some(&Value::Int(1)));
    }

    #[test]
    fn same_fact_not_matched_twice() {
        let mut s = FactStore::new();
        s.assert_fact(Fact::new("peer").with("id", 1));
        s.assert_fact(Fact::new("peer").with("id", 2));
        let r = Rule::new("pairs")
            .when(Pattern::new("peer").slot_var("id", "a"))
            .when(Pattern::new("peer").slot_var("id", "b"));
        // 2 ordered pairs (1,2) and (2,1) — never (1,1) or (2,2).
        assert_eq!(r.activations(&s).len(), 2);
    }

    #[test]
    fn empty_lhs_yields_one_activation() {
        let r = Rule::new("boot");
        let acts = r.activations(&FactStore::new());
        assert_eq!(acts.len(), 1, "a rule with no conditions fires once");
    }
}
