//! Slot values for facts.

use core::fmt;

/// A value stored in a fact slot or used in a rule constraint.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unquoted symbol, e.g. `remote-fault`.
    Sym(String),
    /// A quoted string.
    Str(String),
    /// A 64-bit integer.
    Int(i64),
    /// A double-precision float.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Symbol constructor.
    pub fn sym(s: impl Into<String>) -> Self {
        Value::Sym(s.into())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Numeric view: integers and floats are mutually comparable.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Equality with numeric coercion (`Int(3) == Float(3.0)`).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }

    /// Numeric ordering; `None` when either side is not numeric.
    pub fn num_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        let (a, b) = (self.as_f64()?, other.as_f64()?);
        a.partial_cmp(&b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Sym(v.to_string())
    }
}

/// Comparison operators usable in slot constraints and `test` conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal (with numeric coercion).
    Eq,
    /// Not equal.
    Ne,
    /// Less than (numeric only).
    Lt,
    /// Less than or equal (numeric only).
    Le,
    /// Greater than (numeric only).
    Gt,
    /// Greater than or equal (numeric only).
    Ge,
}

impl CmpOp {
    /// Apply the operator. Non-numeric operands only support Eq/Ne.
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => a.loose_eq(b),
            CmpOp::Ne => !a.loose_eq(b),
            CmpOp::Lt => matches!(a.num_cmp(b), Some(Less)),
            CmpOp::Le => matches!(a.num_cmp(b), Some(Less | Equal)),
            CmpOp::Gt => matches!(a.num_cmp(b), Some(Greater)),
            CmpOp::Ge => matches!(a.num_cmp(b), Some(Greater | Equal)),
        }
    }

    /// Parse the CLIPS spelling of an operator.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "=" | "eq" => CmpOp::Eq,
            "!=" | "<>" | "neq" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion_equality() {
        assert!(Value::Int(3).loose_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).loose_eq(&Value::Float(3.5)));
        assert!(Value::sym("a").loose_eq(&Value::sym("a")));
        assert!(
            !Value::sym("a").loose_eq(&Value::str("a")),
            "symbol != string"
        );
    }

    #[test]
    fn cmp_ops_numeric() {
        let a = Value::Int(2);
        let b = Value::Float(2.5);
        assert!(CmpOp::Lt.apply(&a, &b));
        assert!(CmpOp::Le.apply(&a, &a));
        assert!(CmpOp::Gt.apply(&b, &a));
        assert!(CmpOp::Ge.apply(&b, &b));
        assert!(CmpOp::Ne.apply(&a, &b));
    }

    #[test]
    fn cmp_ops_non_numeric_only_eq() {
        let a = Value::sym("x");
        let b = Value::sym("y");
        assert!(!CmpOp::Lt.apply(&a, &b), "no ordering on symbols");
        assert!(CmpOp::Ne.apply(&a, &b));
        assert!(CmpOp::Eq.apply(&a, &a));
    }

    #[test]
    fn parse_operators() {
        assert_eq!(CmpOp::parse(">="), Some(CmpOp::Ge));
        assert_eq!(CmpOp::parse("neq"), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("bogus"), None);
    }

    #[test]
    fn display_roundtrip_feel() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::sym("abc").to_string(), "abc");
        assert_eq!(Value::str("abc").to_string(), "\"abc\"");
        assert_eq!(CmpOp::Le.to_string(), "<=");
    }
}
