//! A CLIPS-flavoured text format for rules and initial facts, enabling the
//! paper's *dynamic rule distribution*: managers receive rule sets as text
//! at run time, parse them, and load them into their engines without
//! recompilation.
//!
//! Supported forms:
//!
//! ```clips
//! (defrule local-cpu-cause
//!   (declare (salience 10))
//!   (violation (pid ?p) (buffer ?b))
//!   (not (diagnosed (pid ?p)))
//!   (test (> ?b 1000))
//!   =>
//!   (assert (diagnosed (pid ?p) (cause local)))
//!   (retract 0)
//!   (call adjust-cpu ?p 5))
//!
//! (deffacts baseline
//!   (threshold (name buffer) (value 1000)))
//! ```
//!
//! Slot constraints inside patterns may be a literal, a `?variable`, or a
//! comparison list like `(> 5)`.

use crate::fact::Fact;
use crate::pattern::{Pattern, SlotTest, Term, Test};
use crate::rule::{Action, Rule};
use crate::sexpr::{parse_many, ParseError, Sexpr};
use crate::value::{CmpOp, Value};

/// Error translating s-expressions into rules/facts.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipsError(pub String);

impl std::fmt::Display for ClipsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "clips error: {}", self.0)
    }
}
impl std::error::Error for ClipsError {}

impl From<ParseError> for ClipsError {
    fn from(e: ParseError) -> Self {
        ClipsError(e.to_string())
    }
}

/// A parsed rule file: rules plus initial facts.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Program {
    /// Rules from `defrule` forms, in order.
    pub rules: Vec<Rule>,
    /// Facts from `deffacts` forms.
    pub facts: Vec<Fact>,
}

/// Parse a rule file.
pub fn parse_program(src: &str) -> Result<Program, ClipsError> {
    let mut program = Program::default();
    for form in parse_many(src)? {
        let items = form
            .list()
            .ok_or_else(|| ClipsError("top-level form must be a list".into()))?;
        match items.first().and_then(Sexpr::atom) {
            Some("defrule") => program.rules.push(parse_defrule(items)?),
            Some("deffacts") => {
                // (deffacts name fact...)
                for f in items.iter().skip(2) {
                    program.facts.push(parse_fact(f)?);
                }
            }
            Some(other) => {
                return Err(ClipsError(format!("unknown top-level form '{other}'")));
            }
            None => return Err(ClipsError("empty top-level form".into())),
        }
    }
    Ok(program)
}

/// Parse a single `(defrule ...)` source string into a [`Rule`].
pub fn parse_rule(src: &str) -> Result<Rule, ClipsError> {
    let p = parse_program(src)?;
    match p.rules.len() {
        1 => Ok(p.rules.into_iter().next().expect("len checked")),
        n => Err(ClipsError(format!(
            "expected exactly one defrule, found {n}"
        ))),
    }
}

fn parse_defrule(items: &[Sexpr]) -> Result<Rule, ClipsError> {
    let name = items
        .get(1)
        .and_then(Sexpr::atom)
        .ok_or_else(|| ClipsError("defrule needs a name".into()))?;
    let mut rule = Rule::new(name);
    let mut rhs = false;
    for item in &items[2..] {
        if item.is_atom("=>") {
            rhs = true;
            continue;
        }
        if !rhs {
            // LHS forms.
            let l = item
                .list()
                .ok_or_else(|| ClipsError(format!("bad LHS form in rule {name}")))?;
            match l.first().and_then(Sexpr::atom) {
                Some("declare") => {
                    // (declare (salience N))
                    for d in &l[1..] {
                        if let Some(dl) = d.list() {
                            if dl.first().map(|a| a.is_atom("salience")) == Some(true) {
                                let v = dl
                                    .get(1)
                                    .and_then(Sexpr::atom)
                                    .and_then(|s| s.parse::<i32>().ok())
                                    .ok_or_else(|| {
                                        ClipsError(format!("bad salience in rule {name}"))
                                    })?;
                                rule.salience = v;
                            }
                        }
                    }
                }
                Some("not") => {
                    let inner = l
                        .get(1)
                        .and_then(Sexpr::list)
                        .ok_or_else(|| ClipsError(format!("bad (not ...) in rule {name}")))?;
                    rule.ces.push(crate::rule::Ce::Neg(parse_pattern(inner)?));
                }
                Some("test") => {
                    let t = l
                        .get(1)
                        .ok_or_else(|| ClipsError(format!("empty (test) in rule {name}")))?;
                    rule.ces.push(crate::rule::Ce::Test(parse_test(t)?));
                }
                Some(_) => rule.ces.push(crate::rule::Ce::Pos(parse_pattern(l)?)),
                None => return Err(ClipsError(format!("empty LHS form in rule {name}"))),
            }
        } else {
            rule.actions.push(parse_action(item, name)?);
        }
    }
    if !rhs {
        return Err(ClipsError(format!("rule {name} has no => separator")));
    }
    Ok(rule)
}

fn parse_pattern(items: &[Sexpr]) -> Result<Pattern, ClipsError> {
    let template = items
        .first()
        .and_then(Sexpr::atom)
        .ok_or_else(|| ClipsError("pattern needs a template name".into()))?;
    let mut p = Pattern::new(template);
    for slot_form in &items[1..] {
        let sl = slot_form
            .list()
            .ok_or_else(|| ClipsError(format!("bad slot form in pattern {template}")))?;
        let slot = sl
            .first()
            .and_then(Sexpr::atom)
            .ok_or_else(|| ClipsError(format!("slot needs a name in pattern {template}")))?;
        let constraint = sl
            .get(1)
            .ok_or_else(|| ClipsError(format!("slot {slot} needs a constraint")))?;
        let test = match constraint {
            Sexpr::Atom(a) if a.starts_with('?') => SlotTest::Var(a[1..].to_string()),
            Sexpr::Atom(a) => SlotTest::Const(atom_value(a)),
            Sexpr::Str(s) => SlotTest::Const(Value::Str(s.clone())),
            Sexpr::List(cmp) => {
                // (op literal)
                let op = cmp
                    .first()
                    .and_then(Sexpr::atom)
                    .and_then(CmpOp::parse)
                    .ok_or_else(|| {
                        ClipsError(format!("bad comparison in slot {slot} of {template}"))
                    })?;
                let v = cmp.get(1).ok_or_else(|| {
                    ClipsError(format!("comparison in slot {slot} needs a value"))
                })?;
                SlotTest::Cmp(op, sexpr_value(v)?)
            }
        };
        p.tests.push((slot.to_string(), test));
    }
    Ok(p)
}

fn parse_test(e: &Sexpr) -> Result<Test, ClipsError> {
    let l = e
        .list()
        .ok_or_else(|| ClipsError("test condition must be a list".into()))?;
    let head = l
        .first()
        .and_then(Sexpr::atom)
        .ok_or_else(|| ClipsError("test condition needs an operator".into()))?;
    match head {
        "and" => Ok(Test::And(
            l[1..].iter().map(parse_test).collect::<Result<_, _>>()?,
        )),
        "or" => Ok(Test::Or(
            l[1..].iter().map(parse_test).collect::<Result<_, _>>()?,
        )),
        "not" => {
            let inner = l
                .get(1)
                .ok_or_else(|| ClipsError("(not) needs an operand".into()))?;
            Ok(Test::Not(Box::new(parse_test(inner)?)))
        }
        op => {
            let op = CmpOp::parse(op)
                .ok_or_else(|| ClipsError(format!("unknown test operator '{op}'")))?;
            let a = parse_term(
                l.get(1)
                    .ok_or_else(|| ClipsError("comparison needs two operands".into()))?,
            )?;
            let b = parse_term(
                l.get(2)
                    .ok_or_else(|| ClipsError("comparison needs two operands".into()))?,
            )?;
            Ok(Test::Cmp(op, a, b))
        }
    }
}

fn parse_action(e: &Sexpr, rule: &str) -> Result<Action, ClipsError> {
    let l = e
        .list()
        .ok_or_else(|| ClipsError(format!("bad RHS form in rule {rule}")))?;
    match l.first().and_then(Sexpr::atom) {
        Some("assert") => {
            let f = l
                .get(1)
                .and_then(Sexpr::list)
                .ok_or_else(|| ClipsError(format!("(assert) needs a fact in rule {rule}")))?;
            let template = f
                .first()
                .and_then(Sexpr::atom)
                .ok_or_else(|| ClipsError(format!("asserted fact needs a template in {rule}")))?;
            let mut slots = Vec::new();
            for slot_form in &f[1..] {
                let sl = slot_form
                    .list()
                    .ok_or_else(|| ClipsError(format!("bad assert slot in rule {rule}")))?;
                let slot = sl
                    .first()
                    .and_then(Sexpr::atom)
                    .ok_or_else(|| ClipsError(format!("assert slot needs a name in {rule}")))?;
                let term = parse_term(
                    sl.get(1)
                        .ok_or_else(|| ClipsError(format!("assert slot {slot} needs a value")))?,
                )?;
                slots.push((slot.to_string(), term));
            }
            Ok(Action::Assert {
                template: template.to_string(),
                slots,
            })
        }
        Some("modify") => {
            // (modify N (slot term)...)
            let ix = l
                .get(1)
                .and_then(Sexpr::atom)
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| {
                    ClipsError(format!("(modify) needs a pattern index in rule {rule}"))
                })?;
            let mut slots = Vec::new();
            for slot_form in &l[2..] {
                let sl = slot_form
                    .list()
                    .ok_or_else(|| ClipsError(format!("bad modify slot in rule {rule}")))?;
                let slot = sl
                    .first()
                    .and_then(Sexpr::atom)
                    .ok_or_else(|| ClipsError(format!("modify slot needs a name in {rule}")))?;
                let term = parse_term(
                    sl.get(1)
                        .ok_or_else(|| ClipsError(format!("modify slot {slot} needs a value")))?,
                )?;
                slots.push((slot.to_string(), term));
            }
            Ok(Action::Modify {
                pos_index: ix,
                slots,
            })
        }
        Some("retract") => {
            let ix = l
                .get(1)
                .and_then(Sexpr::atom)
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| {
                    ClipsError(format!("(retract) needs a pattern index in rule {rule}"))
                })?;
            Ok(Action::Retract(ix))
        }
        Some("call") => {
            let command = l
                .get(1)
                .and_then(Sexpr::atom)
                .ok_or_else(|| ClipsError(format!("(call) needs a command in rule {rule}")))?;
            let args = l[2..]
                .iter()
                .map(parse_term)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Action::Call {
                command: command.to_string(),
                args,
            })
        }
        Some(other) => Err(ClipsError(format!(
            "unknown action '{other}' in rule {rule}"
        ))),
        None => Err(ClipsError(format!("empty action in rule {rule}"))),
    }
}

fn parse_fact(e: &Sexpr) -> Result<Fact, ClipsError> {
    let l = e
        .list()
        .ok_or_else(|| ClipsError("fact must be a list".into()))?;
    let template = l
        .first()
        .and_then(Sexpr::atom)
        .ok_or_else(|| ClipsError("fact needs a template".into()))?;
    let mut fact = Fact::new(template);
    for slot_form in &l[1..] {
        let sl = slot_form
            .list()
            .ok_or_else(|| ClipsError(format!("bad slot in fact {template}")))?;
        let slot = sl
            .first()
            .and_then(Sexpr::atom)
            .ok_or_else(|| ClipsError(format!("slot needs a name in fact {template}")))?;
        let v = sl
            .get(1)
            .ok_or_else(|| ClipsError(format!("slot {slot} needs a value")))?;
        fact.slots.insert(slot.to_string(), sexpr_value(v)?);
    }
    Ok(fact)
}

fn parse_term(e: &Sexpr) -> Result<Term, ClipsError> {
    match e {
        Sexpr::Atom(a) if a.starts_with('?') => Ok(Term::Var(a[1..].to_string())),
        Sexpr::Atom(a) => Ok(Term::Const(atom_value(a))),
        Sexpr::Str(s) => Ok(Term::Const(Value::Str(s.clone()))),
        Sexpr::List(_) => Err(ClipsError("nested lists are not valid terms".into())),
    }
}

fn sexpr_value(e: &Sexpr) -> Result<Value, ClipsError> {
    match e {
        Sexpr::Atom(a) if a.starts_with('?') => Err(ClipsError(format!(
            "variable ?{} not allowed here",
            &a[1..]
        ))),
        Sexpr::Atom(a) => Ok(atom_value(a)),
        Sexpr::Str(s) => Ok(Value::Str(s.clone())),
        Sexpr::List(_) => Err(ClipsError("lists are not values".into())),
    }
}

/// Interpret a bare atom as the most specific value type.
fn atom_value(a: &str) -> Value {
    if let Ok(i) = a.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = a.parse::<f64>() {
        return Value::Float(f);
    }
    match a {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Sym(a.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    const HOST_RULES: &str = r#"
    ; The paper's Section 5.3 host-manager rules.
    (defrule local-cpu-cause
      (declare (salience 10))
      (violation (pid ?p) (buffer ?b))
      (test (> ?b 1000))
      =>
      (assert (diagnosed (pid ?p) (cause local)))
      (call adjust-cpu ?p))

    (defrule remote-cause
      (violation (pid ?p) (buffer ?b))
      (test (<= ?b 1000))
      =>
      (assert (diagnosed (pid ?p) (cause remote)))
      (call notify-domain ?p))

    (deffacts thresholds
      (threshold (name buffer) (value 1000)))
    "#;

    #[test]
    fn parse_the_paper_rule_set() {
        let p = parse_program(HOST_RULES).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].name, "local-cpu-cause");
        assert_eq!(p.rules[0].salience, 10);
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.facts[0].template, "threshold");
    }

    #[test]
    fn parsed_rules_run_in_the_engine() {
        let p = parse_program(HOST_RULES).unwrap();
        let mut e = Engine::new();
        for r in p.rules {
            e.add_rule(r);
        }
        for f in p.facts {
            e.assert_fact(f);
        }
        e.assert_fact(Fact::new("violation").with("pid", 7).with("buffer", 50_000));
        let stats = e.run(100);
        assert_eq!(stats.fired, 1);
        let inv = e.take_invocations();
        assert_eq!(inv[0].command, "adjust-cpu");
        assert_eq!(inv[0].args, vec![Value::Int(7)]);
    }

    #[test]
    fn slot_comparison_constraints() {
        let r = parse_rule("(defrule r (load (value (> 5.0))) => (call overloaded))").unwrap();
        let mut e = Engine::new();
        e.add_rule(r);
        e.assert_fact(Fact::new("load").with("value", 3.0));
        assert_eq!(e.run(10).fired, 0);
        e.assert_fact(Fact::new("load").with("value", 7.5));
        assert_eq!(e.run(10).fired, 1);
    }

    #[test]
    fn negation_and_retract_parse() {
        let r = parse_rule(
            "(defrule once
               (event (id ?i))
               (not (handled (id ?i)))
               =>
               (assert (handled (id ?i)))
               (retract 0))",
        )
        .unwrap();
        let mut e = Engine::new();
        e.add_rule(r);
        e.assert_fact(Fact::new("event").with("id", 1));
        assert_eq!(e.run(10).fired, 1);
        assert_eq!(e.facts().by_template("event").count(), 0);
        assert_eq!(e.facts().by_template("handled").count(), 1);
    }

    #[test]
    fn boolean_test_combinators() {
        let r = parse_rule(
            "(defrule range
               (sample (v ?v))
               (test (and (> ?v 10) (or (< ?v 20) (= ?v 25)) (not (= ?v 15))))
               =>
               (call in-range ?v))",
        )
        .unwrap();
        let mut e = Engine::new();
        e.add_rule(r);
        for v in [5, 12, 15, 25, 30] {
            e.assert_fact(Fact::new("sample").with("v", v as i64));
        }
        e.run(100);
        let mut hits: Vec<i64> = e
            .take_invocations()
            .into_iter()
            .map(|i| match i.args[0] {
                Value::Int(v) => v,
                _ => panic!(),
            })
            .collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![12, 25]);
    }

    #[test]
    fn modify_action_updates_in_place() {
        let r = parse_rule(
            "(defrule escalate
               (ticket (id ?i) (severity ?s))
               (test (< ?s 3))
               =>
               (modify 0 (severity 3) (escalated true)))",
        )
        .unwrap();
        let mut e = Engine::new();
        e.add_rule(r);
        e.assert_fact(Fact::new("ticket").with("id", 7).with("severity", 1));
        let stats = e.run(100);
        // Fires once; the modified fact (severity 3) no longer matches.
        assert_eq!(stats.fired, 1);
        let tickets: Vec<_> = e.facts().by_template("ticket").collect();
        assert_eq!(tickets.len(), 1);
        assert_eq!(tickets[0].1.get("severity"), Some(&Value::Int(3)));
        assert_eq!(tickets[0].1.get("escalated"), Some(&Value::Bool(true)));
        assert_eq!(
            tickets[0].1.get("id"),
            Some(&Value::Int(7)),
            "untouched slots kept"
        );
    }

    #[test]
    fn modify_with_bound_variables() {
        let r = parse_rule(
            "(defrule promote
               (counter (n ?n))
               (test (< ?n 1))
               =>
               (modify 0 (n 1) (prev ?n)))",
        )
        .unwrap();
        let mut e = Engine::new();
        e.add_rule(r);
        e.assert_fact(Fact::new("counter").with("n", 0));
        assert_eq!(e.run(100).fired, 1);
        let c: Vec<_> = e.facts().by_template("counter").collect();
        assert_eq!(c[0].1.get("n"), Some(&Value::Int(1)));
        assert_eq!(c[0].1.get("prev"), Some(&Value::Int(0)));
    }

    #[test]
    fn errors_reported() {
        assert!(
            parse_rule("(defrule broken (a (x ?v)))").is_err(),
            "missing =>"
        );
        assert!(parse_program("(frobnicate)").is_err(), "unknown form");
        assert!(parse_rule("(defrule r (a (x (?? 3))) => (call c))").is_err());
        assert!(parse_program("(defrule r (a (x 1)) => (explode))").is_err());
    }

    #[test]
    fn string_and_bool_literals() {
        let p = parse_program(r#"(deffacts f (cfg (host "alpha") (active true) (weight 2.5)))"#)
            .unwrap();
        let f = &p.facts[0];
        assert_eq!(f.get("host"), Some(&Value::Str("alpha".into())));
        assert_eq!(f.get("active"), Some(&Value::Bool(true)));
        assert_eq!(f.get("weight"), Some(&Value::Float(2.5)));
    }
}
