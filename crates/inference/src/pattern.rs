//! Patterns: the left-hand-side constraints of rules, matched against
//! facts with variable binding.

use std::collections::HashMap;

use crate::fact::Fact;
use crate::value::{CmpOp, Value};

/// Variable bindings accumulated while joining a rule's patterns.
pub type Bindings = HashMap<String, Value>;

/// Constraint on one slot of a fact.
#[derive(Clone, Debug, PartialEq)]
pub enum SlotTest {
    /// The slot must equal this constant.
    Const(Value),
    /// Bind the slot value to a variable (or require equality if the
    /// variable is already bound — CLIPS join semantics).
    Var(String),
    /// Compare the slot against a constant.
    Cmp(CmpOp, Value),
}

/// A pattern over one fact template.
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    /// Template the fact must have.
    pub template: String,
    /// Per-slot constraints; slots not mentioned are unconstrained.
    pub tests: Vec<(String, SlotTest)>,
}

impl Pattern {
    /// A pattern matching any fact of `template`.
    pub fn new(template: impl Into<String>) -> Self {
        Pattern {
            template: template.into(),
            tests: Vec::new(),
        }
    }

    /// Require `slot` to equal a constant.
    pub fn slot_const(mut self, slot: impl Into<String>, v: impl Into<Value>) -> Self {
        self.tests.push((slot.into(), SlotTest::Const(v.into())));
        self
    }

    /// Bind `slot` to variable `var`.
    pub fn slot_var(mut self, slot: impl Into<String>, var: impl Into<String>) -> Self {
        self.tests.push((slot.into(), SlotTest::Var(var.into())));
        self
    }

    /// Compare `slot` against a constant.
    pub fn slot_cmp(mut self, slot: impl Into<String>, op: CmpOp, v: impl Into<Value>) -> Self {
        self.tests.push((slot.into(), SlotTest::Cmp(op, v.into())));
        self
    }

    /// Try to match `fact` under existing `bindings`. On success, returns
    /// the extended bindings; the input is unchanged on failure.
    pub fn match_fact(&self, fact: &Fact, bindings: &Bindings) -> Option<Bindings> {
        if fact.template != self.template {
            return None;
        }
        self.match_slots(fact, bindings)
    }

    /// [`Pattern::match_fact`] without the template comparison — for
    /// candidates drawn from a template's alpha memory, where every fact
    /// is already of the right template.
    ///
    /// Verification is allocation-free: joins examine many candidates
    /// and reject most, so the extended binding map is only built once
    /// every test has passed. Variables bound earlier in this same
    /// pattern are visible to later tests, as before.
    pub fn match_slots(&self, fact: &Fact, bindings: &Bindings) -> Option<Bindings> {
        let mut fresh: Vec<(&String, &Value)> = Vec::new();
        for (slot, test) in &self.tests {
            let actual = fact.get(slot)?;
            match test {
                SlotTest::Const(v) => {
                    if !actual.loose_eq(v) {
                        return None;
                    }
                }
                SlotTest::Cmp(op, v) => {
                    if !op.apply(actual, v) {
                        return None;
                    }
                }
                SlotTest::Var(name) => {
                    let bound = fresh
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|&(_, v)| v)
                        .or_else(|| bindings.get(name));
                    match bound {
                        Some(bound) => {
                            if !actual.loose_eq(bound) {
                                return None;
                            }
                        }
                        None => fresh.push((name, actual)),
                    }
                }
            }
        }
        if fresh.is_empty() {
            return Some(bindings.clone());
        }
        let mut out = bindings.clone();
        for (name, v) in fresh {
            out.insert(name.clone(), v.clone());
        }
        Some(out)
    }
}

/// A term in a `test` condition or an action argument: a constant or a
/// bound variable.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// Literal value.
    Const(Value),
    /// Variable reference, resolved against the bindings at fire time.
    Var(String),
}

impl Term {
    /// Resolve against bindings. `None` if an unbound variable is named.
    pub fn resolve(&self, bindings: &Bindings) -> Option<Value> {
        match self {
            Term::Const(v) => Some(v.clone()),
            Term::Var(name) => bindings.get(name).cloned(),
        }
    }

    /// Variable constructor.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Constant constructor.
    pub fn val(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }
}

/// A boolean condition over bound variables (the CLIPS `(test ...)` CE).
#[derive(Clone, Debug, PartialEq)]
pub enum Test {
    /// Binary comparison between two terms.
    Cmp(CmpOp, Term, Term),
    /// Conjunction.
    And(Vec<Test>),
    /// Disjunction.
    Or(Vec<Test>),
    /// Negation.
    Not(Box<Test>),
}

impl Test {
    /// Evaluate under bindings; an unbound variable makes the comparison
    /// false.
    pub fn eval(&self, bindings: &Bindings) -> bool {
        match self {
            Test::Cmp(op, a, b) => match (a.resolve(bindings), b.resolve(bindings)) {
                (Some(a), Some(b)) => op.apply(&a, &b),
                _ => false,
            },
            Test::And(ts) => ts.iter().all(|t| t.eval(bindings)),
            Test::Or(ts) => ts.iter().any(|t| t.eval(bindings)),
            Test::Not(t) => !t.eval(bindings),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact() -> Fact {
        Fact::new("violation")
            .with("pid", 12)
            .with("fps", 18.5)
            .with("host", "alpha")
    }

    #[test]
    fn const_and_cmp_tests() {
        let p = Pattern::new("violation")
            .slot_const("pid", 12)
            .slot_cmp("fps", CmpOp::Lt, 23.0);
        assert!(p.match_fact(&fact(), &Bindings::new()).is_some());

        let p2 = Pattern::new("violation").slot_cmp("fps", CmpOp::Gt, 23.0);
        assert!(p2.match_fact(&fact(), &Bindings::new()).is_none());
    }

    #[test]
    fn wrong_template_or_missing_slot_fails() {
        let p = Pattern::new("cpu-load");
        assert!(p.match_fact(&fact(), &Bindings::new()).is_none());
        let p = Pattern::new("violation").slot_const("nonexistent", 1);
        assert!(p.match_fact(&fact(), &Bindings::new()).is_none());
    }

    #[test]
    fn variable_binds_and_joins() {
        let p = Pattern::new("violation").slot_var("pid", "p");
        let b = p.match_fact(&fact(), &Bindings::new()).unwrap();
        assert_eq!(b.get("p"), Some(&Value::Int(12)));

        // Join: second match must agree with the existing binding.
        let other = Fact::new("violation").with("pid", 13).with("fps", 10.0);
        assert!(
            p.match_fact(&other, &b).is_none(),
            "pid mismatch under join"
        );
        assert!(p.match_fact(&fact(), &b).is_some(), "same pid joins");
    }

    #[test]
    fn failed_match_leaves_input_bindings_unchanged() {
        let p = Pattern::new("violation")
            .slot_var("pid", "p")
            .slot_cmp("fps", CmpOp::Gt, 100.0);
        let empty = Bindings::new();
        assert!(p.match_fact(&fact(), &empty).is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn test_conditions_evaluate() {
        let mut b = Bindings::new();
        b.insert("x".into(), Value::Float(5.0));
        b.insert("y".into(), Value::Int(10));
        assert!(Test::Cmp(CmpOp::Lt, Term::var("x"), Term::var("y")).eval(&b));
        assert!(Test::And(vec![
            Test::Cmp(CmpOp::Gt, Term::var("x"), Term::val(0)),
            Test::Cmp(CmpOp::Le, Term::var("y"), Term::val(10)),
        ])
        .eval(&b));
        assert!(Test::Or(vec![
            Test::Cmp(CmpOp::Gt, Term::var("x"), Term::val(100)),
            Test::Cmp(CmpOp::Eq, Term::var("y"), Term::val(10)),
        ])
        .eval(&b));
        assert!(Test::Not(Box::new(Test::Cmp(
            CmpOp::Eq,
            Term::var("x"),
            Term::var("y")
        )))
        .eval(&b));
    }

    #[test]
    fn unbound_variable_is_false() {
        let b = Bindings::new();
        assert!(!Test::Cmp(CmpOp::Eq, Term::var("zzz"), Term::val(1)).eval(&b));
    }
}
