//! A small vector of [`FactId`]s that stays inline for the common case.
//!
//! Activation and refraction keys record the facts matched by a rule's
//! positive condition elements — almost always 1–3 of them in the
//! manager rule sets — so the engine keys its agenda and refraction
//! memory on this type instead of heap-allocating a `Vec<FactId>` per
//! entry. Equality, hashing and ordering are slice-based (padding never
//! participates), and the ordering matches `Vec<FactId>`'s lexicographic
//! order exactly, which the conflict-resolution tie-break relies on.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

use crate::fact::FactId;

/// Inline capacity: rules with more positive patterns spill to the heap.
const INLINE: usize = 4;

/// A fact-id vector inline up to [`INLINE`] entries.
#[derive(Clone, Debug)]
pub enum IdVec {
    /// Up to `INLINE` ids stored in place.
    Inline {
        /// Number of live entries in `buf`.
        len: u8,
        /// Storage; entries past `len` are padding and never compared.
        buf: [FactId; INLINE],
    },
    /// Spilled storage for longer id vectors.
    Heap(Vec<FactId>),
}

impl IdVec {
    /// The empty id vector.
    pub fn new() -> Self {
        IdVec::Inline {
            len: 0,
            buf: [FactId(0); INLINE],
        }
    }

    /// Build from a slice, inline when it fits.
    pub fn from_slice(ids: &[FactId]) -> Self {
        if ids.len() <= INLINE {
            let mut buf = [FactId(0); INLINE];
            buf[..ids.len()].copy_from_slice(ids);
            IdVec::Inline {
                len: ids.len() as u8,
                buf,
            }
        } else {
            IdVec::Heap(ids.to_vec())
        }
    }

    /// The live entries.
    pub fn as_slice(&self) -> &[FactId] {
        match self {
            IdVec::Inline { len, buf } => &buf[..*len as usize],
            IdVec::Heap(v) => v,
        }
    }

    /// Append an id, spilling to the heap when inline capacity runs out.
    pub fn push(&mut self, id: FactId) {
        match self {
            IdVec::Inline { len, buf } => {
                if (*len as usize) < INLINE {
                    buf[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = buf.to_vec();
                    v.push(id);
                    *self = IdVec::Heap(v);
                }
            }
            IdVec::Heap(v) => v.push(id),
        }
    }

    /// Number of ids.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when no ids are recorded (a rule with an empty left-hand
    /// side).
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does the vector mention `id`?
    pub fn contains(&self, id: FactId) -> bool {
        self.as_slice().contains(&id)
    }

    /// Highest id — the activation's recency — or `FactId(0)` when empty.
    pub fn recency(&self) -> FactId {
        self.as_slice().iter().copied().max().unwrap_or(FactId(0))
    }
}

impl Default for IdVec {
    fn default() -> Self {
        IdVec::new()
    }
}

impl PartialEq for IdVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for IdVec {}

impl Hash for IdVec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for IdVec {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IdVec {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl From<&[FactId]> for IdVec {
    fn from(ids: &[FactId]) -> Self {
        IdVec::from_slice(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(ids: &[u64]) -> IdVec {
        let ids: Vec<FactId> = ids.iter().map(|&i| FactId(i)).collect();
        IdVec::from_slice(&ids)
    }

    #[test]
    fn inline_and_heap_agree_with_slices() {
        let short = iv(&[3, 1, 2]);
        assert!(matches!(short, IdVec::Inline { .. }));
        assert_eq!(short.as_slice(), &[FactId(3), FactId(1), FactId(2)]);
        let long = iv(&[1, 2, 3, 4, 5, 6]);
        assert!(matches!(long, IdVec::Heap(_)));
        assert_eq!(long.len(), 6);
        assert!(long.contains(FactId(6)));
        assert!(!long.contains(FactId(7)));
    }

    #[test]
    fn equality_and_hash_ignore_padding() {
        use std::collections::HashSet;
        let mut grown = IdVec::new();
        grown.push(FactId(9));
        grown.push(FactId(4));
        assert_eq!(grown, iv(&[9, 4]));
        let mut set = HashSet::new();
        set.insert(grown);
        assert!(set.contains(&iv(&[9, 4])));
    }

    #[test]
    fn push_spills_to_heap() {
        let mut v = IdVec::new();
        for i in 0..6 {
            v.push(FactId(i));
        }
        assert!(matches!(v, IdVec::Heap(_)));
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn ordering_matches_vec_lexicographic() {
        // Mixed inline/heap comparisons follow slice order, which is what
        // Vec<FactId> comparisons in the naive matcher use.
        assert!(iv(&[1, 2]) < iv(&[1, 3]));
        assert!(iv(&[1, 2]) < iv(&[1, 2, 0]));
        assert!(iv(&[2]) > iv(&[1, 9, 9, 9, 9, 9]));
        assert_eq!(iv(&[]).recency(), FactId(0));
        assert_eq!(iv(&[5, 11, 2]).recency(), FactId(11));
    }
}
