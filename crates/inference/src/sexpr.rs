//! Minimal s-expression reader used by the CLIPS-style rule format.

use std::fmt;

/// An s-expression: an atom or a list.
#[derive(Clone, Debug, PartialEq)]
pub enum Sexpr {
    /// A bare token (symbol, number, variable, operator).
    Atom(String),
    /// A double-quoted string literal (quotes stripped).
    Str(String),
    /// A parenthesised list.
    List(Vec<Sexpr>),
}

/// Parse error with character position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Sexpr {
    /// The atom text, if this is an atom.
    pub fn atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom(s) => Some(s),
            _ => None,
        }
    }

    /// The list elements, if this is a list.
    pub fn list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is an atom with exactly this text.
    pub fn is_atom(&self, text: &str) -> bool {
        matches!(self, Sexpr::Atom(s) if s == text)
    }
}

struct Reader<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b';' {
                // Comment to end of line.
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn read(&mut self) -> Result<Sexpr, ParseError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Err(self.err("unexpected end of input"));
        }
        match self.src[self.pos] {
            b'(' => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.pos >= self.src.len() {
                        return Err(self.err("unclosed '('"));
                    }
                    if self.src[self.pos] == b')' {
                        self.pos += 1;
                        return Ok(Sexpr::List(items));
                    }
                    items.push(self.read()?);
                }
            }
            b')' => Err(self.err("unexpected ')'")),
            b'"' => {
                self.pos += 1;
                let start = self.pos;
                let mut out = String::new();
                loop {
                    if self.pos >= self.src.len() {
                        return Err(ParseError {
                            pos: start,
                            msg: "unterminated string".into(),
                        });
                    }
                    match self.src[self.pos] {
                        b'"' => {
                            self.pos += 1;
                            return Ok(Sexpr::Str(out));
                        }
                        b'\\' if self.pos + 1 < self.src.len() => {
                            out.push(self.src[self.pos + 1] as char);
                            self.pos += 2;
                        }
                        c => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                    }
                }
            }
            _ => {
                let start = self.pos;
                while self.pos < self.src.len() {
                    let c = self.src[self.pos];
                    if c.is_ascii_whitespace() || c == b'(' || c == b')' || c == b'"' || c == b';' {
                        break;
                    }
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("non-utf8 atom"))?;
                Ok(Sexpr::Atom(text.to_string()))
            }
        }
    }
}

/// Parse one s-expression from the input.
pub fn parse_one(src: &str) -> Result<Sexpr, ParseError> {
    let mut r = Reader {
        src: src.as_bytes(),
        pos: 0,
    };
    let e = r.read()?;
    r.skip_ws();
    if r.pos != r.src.len() {
        return Err(r.err("trailing input after expression"));
    }
    Ok(e)
}

/// Parse a sequence of s-expressions (a whole rule file).
pub fn parse_many(src: &str) -> Result<Vec<Sexpr>, ParseError> {
    let mut r = Reader {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    loop {
        r.skip_ws();
        if r.pos >= r.src.len() {
            return Ok(out);
        }
        out.push(r.read()?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_lists() {
        let e = parse_one("(a b (c 1.5) \"hi\")").unwrap();
        let items = e.list().unwrap();
        assert_eq!(items[0], Sexpr::Atom("a".into()));
        assert_eq!(
            items[2],
            Sexpr::List(vec![Sexpr::Atom("c".into()), Sexpr::Atom("1.5".into())])
        );
        assert_eq!(items[3], Sexpr::Str("hi".into()));
    }

    #[test]
    fn comments_skipped() {
        let es = parse_many("; header\n(a) ; trailing\n(b)").unwrap();
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn string_escapes() {
        let e = parse_one(r#""a\"b""#).unwrap();
        assert_eq!(e, Sexpr::Str("a\"b".into()));
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_one("(a").unwrap_err().msg.contains("unclosed"));
        assert!(parse_one(")").unwrap_err().msg.contains("unexpected ')'"));
        assert!(parse_one("\"abc").unwrap_err().msg.contains("unterminated"));
        assert!(parse_one("(a) (b)").unwrap_err().msg.contains("trailing"));
    }

    #[test]
    fn empty_input_is_error_for_one_but_ok_for_many() {
        assert!(parse_one("   ").is_err());
        assert_eq!(parse_many("  ; nothing\n").unwrap().len(), 0);
    }

    #[test]
    fn nested_depth() {
        let e = parse_one("(((x)))").unwrap();
        let mut cur = &e;
        for _ in 0..3 {
            cur = &cur.list().unwrap()[0];
        }
        assert!(cur.is_atom("x"));
    }
}
