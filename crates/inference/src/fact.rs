//! Facts and the working memory (fact repository).

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// Identifies an asserted fact. Monotonically increasing; used for the
/// agenda's recency ordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub u64);

/// A structured fact: a template name plus named slots, e.g.
/// `(violation (pid 12) (frame-rate 18.5))`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fact {
    /// Template (relation) name.
    pub template: String,
    /// Named slot values, kept sorted for deterministic display.
    pub slots: BTreeMap<String, Value>,
}

impl Fact {
    /// Start building a fact for a template.
    pub fn new(template: impl Into<String>) -> Self {
        Fact {
            template: template.into(),
            slots: BTreeMap::new(),
        }
    }

    /// Builder-style slot insertion.
    pub fn with(mut self, slot: impl Into<String>, value: impl Into<Value>) -> Self {
        self.slots.insert(slot.into(), value.into());
        self
    }

    /// Read a slot.
    pub fn get(&self, slot: &str) -> Option<&Value> {
        self.slots.get(slot)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.template)?;
        for (k, v) in &self.slots {
            write!(f, " ({k} {v})")?;
        }
        write!(f, ")")
    }
}

/// Working memory: the engine's fact repository.
#[derive(Debug, Default)]
pub struct FactStore {
    facts: BTreeMap<FactId, Fact>,
    next_id: u64,
}

impl FactStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert a fact. Duplicate facts (same template and slots) are not
    /// re-asserted; the existing id is returned, mirroring CLIPS's
    /// duplicate-fact suppression.
    pub fn assert_fact(&mut self, fact: Fact) -> (FactId, bool) {
        if let Some((&id, _)) = self.facts.iter().find(|(_, f)| **f == fact) {
            return (id, false);
        }
        let id = FactId(self.next_id);
        self.next_id += 1;
        self.facts.insert(id, fact);
        (id, true)
    }

    /// Retract a fact by id; returns it if present.
    pub fn retract(&mut self, id: FactId) -> Option<Fact> {
        self.facts.remove(&id)
    }

    /// Look up a fact.
    pub fn get(&self, id: FactId) -> Option<&Fact> {
        self.facts.get(&id)
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are asserted.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterate facts in assertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts.iter().map(|(&id, f)| (id, f))
    }

    /// Iterate facts of one template.
    pub fn by_template<'a>(
        &'a self,
        template: &'a str,
    ) -> impl Iterator<Item = (FactId, &'a Fact)> + 'a {
        self.iter().filter(move |(_, f)| f.template == template)
    }

    /// Remove every fact of a template; returns how many were retracted.
    pub fn retract_template(&mut self, template: &str) -> usize {
        let ids: Vec<FactId> = self
            .facts
            .iter()
            .filter(|(_, f)| f.template == template)
            .map(|(&id, _)| id)
            .collect();
        let n = ids.len();
        for id in ids {
            self.facts.remove(&id);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(pid: i64, fps: f64) -> Fact {
        Fact::new("violation").with("pid", pid).with("fps", fps)
    }

    #[test]
    fn assert_and_get() {
        let mut s = FactStore::new();
        let (id, fresh) = s.assert_fact(violation(1, 20.0));
        assert!(fresh);
        assert_eq!(s.get(id).unwrap().get("pid"), Some(&Value::Int(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_facts_not_reasserted() {
        let mut s = FactStore::new();
        let (a, fresh_a) = s.assert_fact(violation(1, 20.0));
        let (b, fresh_b) = s.assert_fact(violation(1, 20.0));
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn retract_then_reassert_gets_new_id() {
        let mut s = FactStore::new();
        let (a, _) = s.assert_fact(violation(1, 20.0));
        assert!(s.retract(a).is_some());
        assert!(s.retract(a).is_none());
        let (b, fresh) = s.assert_fact(violation(1, 20.0));
        assert!(fresh);
        assert_ne!(a, b, "ids are never reused");
    }

    #[test]
    fn by_template_filters() {
        let mut s = FactStore::new();
        s.assert_fact(violation(1, 20.0));
        s.assert_fact(violation(2, 25.0));
        s.assert_fact(Fact::new("cpu-load").with("host", "a").with("load", 3.0));
        assert_eq!(s.by_template("violation").count(), 2);
        assert_eq!(s.by_template("cpu-load").count(), 1);
        assert_eq!(s.by_template("nothing").count(), 0);
    }

    #[test]
    fn retract_template_bulk() {
        let mut s = FactStore::new();
        s.assert_fact(violation(1, 20.0));
        s.assert_fact(violation(2, 25.0));
        s.assert_fact(Fact::new("other"));
        assert_eq!(s.retract_template("violation"), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn display_is_clips_like() {
        let f = violation(1, 20.0);
        assert_eq!(f.to_string(), "(violation (fps 20) (pid 1))");
    }
}
