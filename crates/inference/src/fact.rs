//! Facts and the working memory (fact repository).
//!
//! The store keeps an **alpha memory** per template — the interned
//! template name maps to the ordered list of live fact ids of that
//! template — so template-scoped access ([`FactStore::by_template`],
//! duplicate detection, the engine's incremental matcher) touches only
//! the facts that can possibly match instead of scanning the whole
//! working memory.
//!
//! Storage is deliberately **flat**: facts live in a slab addressed by
//! id (ids are monotonic and never reused, so the slab is an id-offset
//! ring whose dead prefix is reclaimed as old facts are retracted), each
//! alpha memory is a sorted `Vec<FactId>` (appending a fresh id keeps it
//! sorted because ids are monotonic; removal is a binary search plus a
//! contiguous shift), and duplicate detection is a per-template
//! fingerprint index instead of a linear slot-comparison scan. A
//! long-lived host manager asserting and retracting one violation per
//! report therefore does no tree rebalancing on the hot path, and the
//! per-violation cost stays flat as working memory grows.
//!
//! On top of the alpha memories sits an **equality-join index**
//! ([`FactStore::ids_with_slot`]): per template, per slot name, a map
//! from a loose value key to the sorted live ids holding that value.
//! The engine probes it when a condition element pins a slot to a
//! constant or an already-bound variable, shrinking a join from "every
//! fact of the template" to "facts whose slot can satisfy the test".
//! The key hashes Int and Float through the same normalized f64 bits so
//! it agrees with `loose_eq` (probing with `Int(3)` finds `Float(3.0)`);
//! collisions only widen the candidate list, never narrow it, and every
//! candidate is re-verified against the full pattern.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::value::Value;

/// Identifies an asserted fact. Monotonically increasing; used for the
/// agenda's recency ordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub u64);

/// An interned template name: a small integer symbol, stable for the
/// life of the store (templates are never un-interned, even when their
/// last fact is retracted). Rules cache these so matching compares u32s
/// rather than strings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TemplateId(pub u32);

/// A structured fact: a template name plus named slots, e.g.
/// `(violation (pid 12) (frame-rate 18.5))`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fact {
    /// Template (relation) name.
    pub template: String,
    /// Named slot values, kept sorted for deterministic display.
    pub slots: BTreeMap<String, Value>,
}

impl Fact {
    /// Start building a fact for a template.
    pub fn new(template: impl Into<String>) -> Self {
        Fact {
            template: template.into(),
            slots: BTreeMap::new(),
        }
    }

    /// Builder-style slot insertion.
    pub fn with(mut self, slot: impl Into<String>, value: impl Into<Value>) -> Self {
        self.slots.insert(slot.into(), value.into());
        self
    }

    /// Read a slot.
    pub fn get(&self, slot: &str) -> Option<&Value> {
        self.slots.get(slot)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.template)?;
        for (k, v) in &self.slots {
            write!(f, " ({k} {v})")?;
        }
        write!(f, ")")
    }
}

/// Hash one slot value for the equality-join index. Consistent with
/// [`Value::loose_eq`]: loosely equal values key equal, so `Int(3)` and
/// `Float(3.0)` share a numeric key (both hash the `f64` view, with
/// `-0.0` normalized to `0.0`). Distinct values may collide — the index
/// returns candidates, and callers re-verify with a slot comparison.
fn loose_value_key(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match v {
        Value::Sym(s) => {
            0u8.hash(&mut h);
            s.hash(&mut h);
        }
        Value::Str(s) => {
            1u8.hash(&mut h);
            s.hash(&mut h);
        }
        Value::Int(i) => {
            2u8.hash(&mut h);
            norm_f64_bits(*i as f64).hash(&mut h);
        }
        Value::Float(f) => {
            2u8.hash(&mut h);
            norm_f64_bits(*f).hash(&mut h);
        }
        Value::Bool(b) => {
            3u8.hash(&mut h);
            b.hash(&mut h);
        }
    }
    h.finish()
}

fn norm_f64_bits(f: f64) -> u64 {
    (if f == 0.0 { 0.0 } else { f }).to_bits()
}

/// Hash a fact's slots for the duplicate index. Consistent with the
/// derived slot equality used by duplicate suppression: equal slot maps
/// fingerprint equal. Floats need one normalization — `0.0 == -0.0`
/// under `f64` equality, so both must hash to the same bits.
fn slots_fingerprint(slots: &BTreeMap<String, Value>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    slots.len().hash(&mut h);
    for (k, v) in slots {
        k.hash(&mut h);
        match v {
            Value::Sym(s) => {
                0u8.hash(&mut h);
                s.hash(&mut h);
            }
            Value::Str(s) => {
                1u8.hash(&mut h);
                s.hash(&mut h);
            }
            Value::Int(i) => {
                2u8.hash(&mut h);
                i.hash(&mut h);
            }
            Value::Float(f) => {
                3u8.hash(&mut h);
                let f = if *f == 0.0 { 0.0 } else { *f };
                f.to_bits().hash(&mut h);
            }
            Value::Bool(b) => {
                4u8.hash(&mut h);
                b.hash(&mut h);
            }
        }
    }
    h.finish()
}

/// Working memory: the engine's fact repository, indexed by template.
#[derive(Debug, Default)]
pub struct FactStore {
    /// Fact slab: `slab[i]` holds the fact with id `base + i`.
    /// Retraction tombstones the entry; dead entries at the front are
    /// popped eagerly so memory tracks the live id span, not the
    /// lifetime assert count.
    slab: VecDeque<Option<Fact>>,
    /// Id of `slab[0]`; the next fresh id is `base + slab.len()`.
    base: u64,
    /// Live fact count (slab entries minus tombstones).
    live: usize,
    /// Interner: template name → symbol.
    tmpl_ids: HashMap<String, TemplateId>,
    /// Symbol → template name (reverse of `tmpl_ids`).
    tmpl_names: Vec<String>,
    /// Alpha memories: per-template live fact ids, in assertion order
    /// (fact ids are monotonic, so each list stays sorted). Indexed by
    /// `TemplateId`.
    alpha: Vec<Vec<FactId>>,
    /// Duplicate index: per-template map from slot fingerprint to the
    /// live ids carrying it (almost always one; collisions fall back to
    /// a slot comparison). Indexed by `TemplateId`.
    dup: Vec<HashMap<u64, Vec<FactId>>>,
    /// Equality-join index: per-template, slot name → loose value key →
    /// live ids whose slot carries that value. The engine's joins probe
    /// it when a pattern pins a slot to a constant or an already-bound
    /// variable, replacing the alpha-memory scan with a candidate-bucket
    /// walk. Indexed by `TemplateId`.
    eq_join: Vec<HashMap<String, HashMap<u64, Vec<FactId>>>>,
}

impl FactStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a template name, creating the symbol (and an empty alpha
    /// memory) on first sight.
    pub fn intern_template(&mut self, name: &str) -> TemplateId {
        if let Some(&tid) = self.tmpl_ids.get(name) {
            return tid;
        }
        let tid = TemplateId(self.tmpl_names.len() as u32);
        self.tmpl_ids.insert(name.to_string(), tid);
        self.tmpl_names.push(name.to_string());
        self.alpha.push(Vec::new());
        self.dup.push(HashMap::new());
        self.eq_join.push(HashMap::new());
        tid
    }

    /// Look up a template symbol without interning.
    pub fn template_id(&self, name: &str) -> Option<TemplateId> {
        self.tmpl_ids.get(name).copied()
    }

    /// The name behind a template symbol.
    pub fn template_name(&self, tid: TemplateId) -> &str {
        &self.tmpl_names[tid.0 as usize]
    }

    /// The alpha memory of a template: live fact ids in assertion order.
    pub fn ids_of(&self, tid: TemplateId) -> &[FactId] {
        self.alpha.get(tid.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// Facts of one template by symbol, in assertion order.
    pub fn facts_of(&self, tid: TemplateId) -> impl Iterator<Item = (FactId, &Fact)> {
        self.ids_of(tid)
            .iter()
            .map(move |&id| (id, self.get(id).expect("alpha ids are live")))
    }

    /// Candidate live ids of `tid` facts whose `slot` holds a value
    /// loosely equal to `v` (numeric coercion applies: probing with
    /// `Int(3)` finds facts holding `Float(3.0)`), in assertion order.
    /// The bucket is keyed by hash, so rare collisions can surface
    /// non-matching ids — callers must re-verify each candidate against
    /// the pattern, exactly as they would after an alpha-memory scan.
    pub fn ids_with_slot(&self, tid: TemplateId, slot: &str, v: &Value) -> &[FactId] {
        self.eq_join
            .get(tid.0 as usize)
            .and_then(|ej| ej.get(slot))
            .and_then(|by_val| by_val.get(&loose_value_key(v)))
            .map_or(&[], Vec::as_slice)
    }

    /// Assert a fact. Duplicate facts (same template and slots) are not
    /// re-asserted; the existing id is returned, mirroring CLIPS's
    /// duplicate-fact suppression.
    pub fn assert_fact(&mut self, fact: Fact) -> (FactId, bool) {
        let (id, fresh, _) = self.assert_fact_interned(fact);
        (id, fresh)
    }

    /// [`FactStore::assert_fact`], additionally returning the fact's
    /// template symbol (the engine's delta propagation keys on it).
    /// Duplicate detection is one fingerprint lookup, independent of how
    /// many facts of the template are live.
    pub fn assert_fact_interned(&mut self, fact: Fact) -> (FactId, bool, TemplateId) {
        let tid = self.intern_template(&fact.template);
        let fp = slots_fingerprint(&fact.slots);
        if let Some(ids) = self.dup[tid.0 as usize].get(&fp) {
            for &id in ids {
                if self.get(id).is_some_and(|f| f.slots == fact.slots) {
                    return (id, false, tid);
                }
            }
        }
        let id = FactId(self.base + self.slab.len() as u64);
        let ej = &mut self.eq_join[tid.0 as usize];
        for (slot, v) in &fact.slots {
            ej.entry(slot.clone())
                .or_default()
                .entry(loose_value_key(v))
                .or_default()
                .push(id);
        }
        self.slab.push_back(Some(fact));
        self.live += 1;
        self.alpha[tid.0 as usize].push(id);
        self.dup[tid.0 as usize].entry(fp).or_default().push(id);
        (id, true, tid)
    }

    /// Retract a fact by id; returns it if present.
    pub fn retract(&mut self, id: FactId) -> Option<Fact> {
        self.retract_interned(id).map(|(fact, _)| fact)
    }

    /// [`FactStore::retract`], additionally returning the template
    /// symbol of the retracted fact.
    pub fn retract_interned(&mut self, id: FactId) -> Option<(Fact, TemplateId)> {
        let ix = self.slot_ix(id)?;
        let fact = self.slab.get_mut(ix)?.take()?;
        self.live -= 1;
        let tid = self.tmpl_ids[&fact.template];
        let alpha = &mut self.alpha[tid.0 as usize];
        if let Ok(pos) = alpha.binary_search(&id) {
            alpha.remove(pos);
        }
        let fp = slots_fingerprint(&fact.slots);
        if let Some(ids) = self.dup[tid.0 as usize].get_mut(&fp) {
            ids.retain(|&x| x != id);
            if ids.is_empty() {
                self.dup[tid.0 as usize].remove(&fp);
            }
        }
        let ej = &mut self.eq_join[tid.0 as usize];
        for (slot, v) in &fact.slots {
            if let Some(by_val) = ej.get_mut(slot.as_str()) {
                let key = loose_value_key(v);
                if let Some(ids) = by_val.get_mut(&key) {
                    if let Ok(pos) = ids.binary_search(&id) {
                        ids.remove(pos);
                    }
                    if ids.is_empty() {
                        by_val.remove(&key);
                    }
                }
            }
        }
        self.reclaim_prefix();
        Some((fact, tid))
    }

    /// Look up a fact.
    pub fn get(&self, id: FactId) -> Option<&Fact> {
        self.slab.get(self.slot_ix(id)?)?.as_ref()
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no facts are asserted.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate facts in assertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        let base = self.base;
        self.slab
            .iter()
            .enumerate()
            .filter_map(move |(i, f)| f.as_ref().map(|f| (FactId(base + i as u64), f)))
    }

    /// Iterate facts of one template, in assertion order (via the
    /// template's alpha memory — no full-store scan).
    pub fn by_template<'a>(
        &'a self,
        template: &str,
    ) -> impl Iterator<Item = (FactId, &'a Fact)> + 'a {
        self.template_id(template)
            .into_iter()
            .flat_map(move |tid| self.facts_of(tid))
    }

    /// Remove every fact of a template; returns how many were retracted.
    pub fn retract_template(&mut self, template: &str) -> usize {
        let Some(tid) = self.template_id(template) else {
            return 0;
        };
        let ids = std::mem::take(&mut self.alpha[tid.0 as usize]);
        for &id in &ids {
            if let Some(slot) = self.slot_ix(id).and_then(|ix| self.slab.get_mut(ix)) {
                if slot.take().is_some() {
                    self.live -= 1;
                }
            }
        }
        self.dup[tid.0 as usize].clear();
        self.eq_join[tid.0 as usize].clear();
        self.reclaim_prefix();
        ids.len()
    }

    /// Slab offset of an id, if the id is at least as new as the
    /// reclaimed prefix (ids below `base` are long retracted).
    fn slot_ix(&self, id: FactId) -> Option<usize> {
        id.0.checked_sub(self.base).map(|off| off as usize)
    }

    /// Pop leading tombstones so the slab's footprint follows the live
    /// id span rather than the lifetime assert count.
    fn reclaim_prefix(&mut self) {
        while matches!(self.slab.front(), Some(None)) {
            self.slab.pop_front();
            self.base += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(pid: i64, fps: f64) -> Fact {
        Fact::new("violation").with("pid", pid).with("fps", fps)
    }

    #[test]
    fn assert_and_get() {
        let mut s = FactStore::new();
        let (id, fresh) = s.assert_fact(violation(1, 20.0));
        assert!(fresh);
        assert_eq!(s.get(id).unwrap().get("pid"), Some(&Value::Int(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_facts_not_reasserted() {
        let mut s = FactStore::new();
        let (a, fresh_a) = s.assert_fact(violation(1, 20.0));
        let (b, fresh_b) = s.assert_fact(violation(1, 20.0));
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn negative_zero_slot_is_a_duplicate_of_zero() {
        // 0.0 == -0.0 under f64 equality, so the fingerprint index must
        // agree with the slot comparison it fronts.
        let mut s = FactStore::new();
        let (a, _) = s.assert_fact(Fact::new("m").with("v", 0.0));
        let (b, fresh) = s.assert_fact(Fact::new("m").with("v", -0.0));
        assert!(!fresh);
        assert_eq!(a, b);
    }

    #[test]
    fn int_and_float_slots_are_distinct_facts() {
        // Duplicate suppression uses strict slot equality: Int(3) and
        // Float(3.0) are different facts even though they loose_eq.
        let mut s = FactStore::new();
        let (_, fresh_a) = s.assert_fact(Fact::new("m").with("v", 3i64));
        let (_, fresh_b) = s.assert_fact(Fact::new("m").with("v", 3.0));
        assert!(fresh_a);
        assert!(fresh_b);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn retract_then_reassert_gets_new_id() {
        let mut s = FactStore::new();
        let (a, _) = s.assert_fact(violation(1, 20.0));
        assert!(s.retract(a).is_some());
        assert!(s.retract(a).is_none());
        let (b, fresh) = s.assert_fact(violation(1, 20.0));
        assert!(fresh);
        assert_ne!(a, b, "ids are never reused");
    }

    #[test]
    fn by_template_filters() {
        let mut s = FactStore::new();
        s.assert_fact(violation(1, 20.0));
        s.assert_fact(violation(2, 25.0));
        s.assert_fact(Fact::new("cpu-load").with("host", "a").with("load", 3.0));
        assert_eq!(s.by_template("violation").count(), 2);
        assert_eq!(s.by_template("cpu-load").count(), 1);
        assert_eq!(s.by_template("nothing").count(), 0);
    }

    #[test]
    fn retract_template_bulk() {
        let mut s = FactStore::new();
        s.assert_fact(violation(1, 20.0));
        s.assert_fact(violation(2, 25.0));
        s.assert_fact(Fact::new("other"));
        assert_eq!(s.retract_template("violation"), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn display_is_clips_like() {
        let f = violation(1, 20.0);
        assert_eq!(f.to_string(), "(violation (fps 20) (pid 1))");
    }

    #[test]
    fn eq_join_index_probes_with_numeric_coercion() {
        // `loose_eq` coerces Int and Float, so the index key must too:
        // probing with Int(1) finds a fact whose slot holds Float(1.0).
        let mut s = FactStore::new();
        let (a, _, tid) = s.assert_fact_interned(Fact::new("m").with("pid", 1.0).with("x", "p"));
        let (b, _) = s.assert_fact(Fact::new("m").with("pid", 2i64).with("x", "q"));
        assert_eq!(s.ids_with_slot(tid, "pid", &Value::Int(1)), &[a]);
        assert_eq!(s.ids_with_slot(tid, "pid", &Value::Float(2.0)), &[b]);
        assert_eq!(
            s.ids_with_slot(tid, "pid", &Value::Int(3)),
            &[] as &[FactId]
        );
        assert_eq!(
            s.ids_with_slot(tid, "nope", &Value::Int(1)),
            &[] as &[FactId]
        );
    }

    #[test]
    fn eq_join_index_tracks_retract() {
        let mut s = FactStore::new();
        let (a, _, tid) = s.assert_fact_interned(violation(1, 20.0));
        let (b, _) = s.assert_fact(violation(2, 20.0));
        assert_eq!(s.ids_with_slot(tid, "fps", &Value::Float(20.0)), &[a, b]);
        s.retract(a);
        assert_eq!(s.ids_with_slot(tid, "fps", &Value::Float(20.0)), &[b]);
        assert_eq!(
            s.ids_with_slot(tid, "pid", &Value::Int(1)),
            &[] as &[FactId]
        );
        s.retract(b);
        assert_eq!(
            s.ids_with_slot(tid, "fps", &Value::Float(20.0)),
            &[] as &[FactId]
        );
    }

    #[test]
    fn eq_join_index_cleared_by_retract_template() {
        let mut s = FactStore::new();
        let (_, _, tid) = s.assert_fact_interned(violation(1, 20.0));
        s.assert_fact(violation(2, 25.0));
        s.retract_template("violation");
        assert_eq!(
            s.ids_with_slot(tid, "pid", &Value::Int(1)),
            &[] as &[FactId]
        );
        let (c, _) = s.assert_fact(violation(3, 30.0));
        assert_eq!(s.ids_with_slot(tid, "pid", &Value::Int(3)), &[c]);
    }

    #[test]
    fn alpha_memory_tracks_assert_and_retract() {
        let mut s = FactStore::new();
        let (a, _, tid) = s.assert_fact_interned(violation(1, 20.0));
        let (b, _) = s.assert_fact(violation(2, 25.0));
        assert_eq!(s.template_id("violation"), Some(tid));
        assert_eq!(s.template_name(tid), "violation");
        let ids: Vec<FactId> = s.ids_of(tid).to_vec();
        assert_eq!(ids, vec![a, b], "assertion order preserved");
        s.retract(a);
        assert!(!s.ids_of(tid).contains(&a));
        assert!(s.ids_of(tid).contains(&b));
        // The symbol survives the last retraction.
        s.retract(b);
        assert_eq!(s.template_id("violation"), Some(tid));
        assert_eq!(s.ids_of(tid).len(), 0);
    }

    #[test]
    fn slab_reclaims_dead_prefix() {
        // A long-lived assert/retract churn (one violation per report)
        // must not grow the slab with the lifetime assert count.
        let mut s = FactStore::new();
        for i in 0..1_000 {
            let (id, fresh) = s.assert_fact(violation(i, i as f64 + 0.5));
            assert!(fresh);
            s.retract(id);
        }
        assert!(s.is_empty());
        assert!(
            s.slab.len() <= 1,
            "dead prefix reclaimed, slab holds {} slots",
            s.slab.len()
        );
        assert_eq!(s.base, 1_000, "base tracks the retired id span");
        // Fresh ids continue monotonically after reclamation.
        let (id, _) = s.assert_fact(violation(7, 7.0));
        assert_eq!(id, FactId(1_000));
        assert_eq!(s.get(id).unwrap().get("pid"), Some(&Value::Int(7)));
    }
}
