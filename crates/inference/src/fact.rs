//! Facts and the working memory (fact repository).
//!
//! The store keeps an **alpha memory** per template — the interned
//! template name maps to the ordered set of live fact ids of that
//! template — so template-scoped access ([`FactStore::by_template`],
//! duplicate detection, the engine's incremental matcher) touches only
//! the facts that can possibly match instead of scanning the whole
//! working memory.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::value::Value;

/// Identifies an asserted fact. Monotonically increasing; used for the
/// agenda's recency ordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub u64);

/// An interned template name: a small integer symbol, stable for the
/// life of the store (templates are never un-interned, even when their
/// last fact is retracted). Rules cache these so matching compares u32s
/// rather than strings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TemplateId(pub u32);

/// A structured fact: a template name plus named slots, e.g.
/// `(violation (pid 12) (frame-rate 18.5))`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fact {
    /// Template (relation) name.
    pub template: String,
    /// Named slot values, kept sorted for deterministic display.
    pub slots: BTreeMap<String, Value>,
}

impl Fact {
    /// Start building a fact for a template.
    pub fn new(template: impl Into<String>) -> Self {
        Fact {
            template: template.into(),
            slots: BTreeMap::new(),
        }
    }

    /// Builder-style slot insertion.
    pub fn with(mut self, slot: impl Into<String>, value: impl Into<Value>) -> Self {
        self.slots.insert(slot.into(), value.into());
        self
    }

    /// Read a slot.
    pub fn get(&self, slot: &str) -> Option<&Value> {
        self.slots.get(slot)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.template)?;
        for (k, v) in &self.slots {
            write!(f, " ({k} {v})")?;
        }
        write!(f, ")")
    }
}

/// Shared empty alpha memory, returned for templates with no live facts.
static EMPTY_ALPHA: BTreeSet<FactId> = BTreeSet::new();

/// Working memory: the engine's fact repository, indexed by template.
#[derive(Debug, Default)]
pub struct FactStore {
    facts: BTreeMap<FactId, Fact>,
    next_id: u64,
    /// Interner: template name → symbol.
    tmpl_ids: HashMap<String, TemplateId>,
    /// Symbol → template name (reverse of `tmpl_ids`).
    tmpl_names: Vec<String>,
    /// Alpha memories: per-template live fact ids, in assertion order
    /// (fact ids are monotonic). Indexed by `TemplateId`.
    alpha: Vec<BTreeSet<FactId>>,
}

impl FactStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a template name, creating the symbol (and an empty alpha
    /// memory) on first sight.
    pub fn intern_template(&mut self, name: &str) -> TemplateId {
        if let Some(&tid) = self.tmpl_ids.get(name) {
            return tid;
        }
        let tid = TemplateId(self.tmpl_names.len() as u32);
        self.tmpl_ids.insert(name.to_string(), tid);
        self.tmpl_names.push(name.to_string());
        self.alpha.push(BTreeSet::new());
        tid
    }

    /// Look up a template symbol without interning.
    pub fn template_id(&self, name: &str) -> Option<TemplateId> {
        self.tmpl_ids.get(name).copied()
    }

    /// The name behind a template symbol.
    pub fn template_name(&self, tid: TemplateId) -> &str {
        &self.tmpl_names[tid.0 as usize]
    }

    /// The alpha memory of a template: live fact ids in assertion order.
    pub fn ids_of(&self, tid: TemplateId) -> &BTreeSet<FactId> {
        self.alpha.get(tid.0 as usize).unwrap_or(&EMPTY_ALPHA)
    }

    /// Facts of one template by symbol, in assertion order.
    pub fn facts_of(&self, tid: TemplateId) -> impl Iterator<Item = (FactId, &Fact)> {
        self.ids_of(tid)
            .iter()
            .map(move |&id| (id, &self.facts[&id]))
    }

    /// Assert a fact. Duplicate facts (same template and slots) are not
    /// re-asserted; the existing id is returned, mirroring CLIPS's
    /// duplicate-fact suppression.
    pub fn assert_fact(&mut self, fact: Fact) -> (FactId, bool) {
        let (id, fresh, _) = self.assert_fact_interned(fact);
        (id, fresh)
    }

    /// [`FactStore::assert_fact`], additionally returning the fact's
    /// template symbol (the engine's delta propagation keys on it).
    /// Duplicate detection scans only the template's alpha memory.
    pub fn assert_fact_interned(&mut self, fact: Fact) -> (FactId, bool, TemplateId) {
        let tid = self.intern_template(&fact.template);
        if let Some(&id) = self.alpha[tid.0 as usize]
            .iter()
            .find(|id| self.facts[id].slots == fact.slots)
        {
            return (id, false, tid);
        }
        let id = FactId(self.next_id);
        self.next_id += 1;
        self.facts.insert(id, fact);
        self.alpha[tid.0 as usize].insert(id);
        (id, true, tid)
    }

    /// Retract a fact by id; returns it if present.
    pub fn retract(&mut self, id: FactId) -> Option<Fact> {
        self.retract_interned(id).map(|(fact, _)| fact)
    }

    /// [`FactStore::retract`], additionally returning the template
    /// symbol of the retracted fact.
    pub fn retract_interned(&mut self, id: FactId) -> Option<(Fact, TemplateId)> {
        let fact = self.facts.remove(&id)?;
        let tid = self.tmpl_ids[&fact.template];
        self.alpha[tid.0 as usize].remove(&id);
        Some((fact, tid))
    }

    /// Look up a fact.
    pub fn get(&self, id: FactId) -> Option<&Fact> {
        self.facts.get(&id)
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are asserted.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterate facts in assertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts.iter().map(|(&id, f)| (id, f))
    }

    /// Iterate facts of one template, in assertion order (via the
    /// template's alpha memory — no full-store scan).
    pub fn by_template<'a>(
        &'a self,
        template: &str,
    ) -> impl Iterator<Item = (FactId, &'a Fact)> + 'a {
        self.template_id(template)
            .into_iter()
            .flat_map(move |tid| self.facts_of(tid))
    }

    /// Remove every fact of a template; returns how many were retracted.
    pub fn retract_template(&mut self, template: &str) -> usize {
        let Some(tid) = self.template_id(template) else {
            return 0;
        };
        let ids: Vec<FactId> = self.alpha[tid.0 as usize].iter().copied().collect();
        for id in &ids {
            self.facts.remove(id);
        }
        self.alpha[tid.0 as usize].clear();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(pid: i64, fps: f64) -> Fact {
        Fact::new("violation").with("pid", pid).with("fps", fps)
    }

    #[test]
    fn assert_and_get() {
        let mut s = FactStore::new();
        let (id, fresh) = s.assert_fact(violation(1, 20.0));
        assert!(fresh);
        assert_eq!(s.get(id).unwrap().get("pid"), Some(&Value::Int(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_facts_not_reasserted() {
        let mut s = FactStore::new();
        let (a, fresh_a) = s.assert_fact(violation(1, 20.0));
        let (b, fresh_b) = s.assert_fact(violation(1, 20.0));
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn retract_then_reassert_gets_new_id() {
        let mut s = FactStore::new();
        let (a, _) = s.assert_fact(violation(1, 20.0));
        assert!(s.retract(a).is_some());
        assert!(s.retract(a).is_none());
        let (b, fresh) = s.assert_fact(violation(1, 20.0));
        assert!(fresh);
        assert_ne!(a, b, "ids are never reused");
    }

    #[test]
    fn by_template_filters() {
        let mut s = FactStore::new();
        s.assert_fact(violation(1, 20.0));
        s.assert_fact(violation(2, 25.0));
        s.assert_fact(Fact::new("cpu-load").with("host", "a").with("load", 3.0));
        assert_eq!(s.by_template("violation").count(), 2);
        assert_eq!(s.by_template("cpu-load").count(), 1);
        assert_eq!(s.by_template("nothing").count(), 0);
    }

    #[test]
    fn retract_template_bulk() {
        let mut s = FactStore::new();
        s.assert_fact(violation(1, 20.0));
        s.assert_fact(violation(2, 25.0));
        s.assert_fact(Fact::new("other"));
        assert_eq!(s.retract_template("violation"), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn display_is_clips_like() {
        let f = violation(1, 20.0);
        assert_eq!(f.to_string(), "(violation (fps 20) (pid 1))");
    }

    #[test]
    fn alpha_memory_tracks_assert_and_retract() {
        let mut s = FactStore::new();
        let (a, _, tid) = s.assert_fact_interned(violation(1, 20.0));
        let (b, _) = s.assert_fact(violation(2, 25.0));
        assert_eq!(s.template_id("violation"), Some(tid));
        assert_eq!(s.template_name(tid), "violation");
        let ids: Vec<FactId> = s.ids_of(tid).iter().copied().collect();
        assert_eq!(ids, vec![a, b], "assertion order preserved");
        s.retract(a);
        assert!(!s.ids_of(tid).contains(&a));
        assert!(s.ids_of(tid).contains(&b));
        // The symbol survives the last retraction.
        s.retract(b);
        assert_eq!(s.template_id("violation"), Some(tid));
        assert_eq!(s.ids_of(tid).len(), 0);
    }
}
