//! Buggify: named, deterministically seeded fault points.
//!
//! The simulator's `FaultPlan` perturbs the network from the *outside*
//! (drop/dup/delay in flight); it cannot reach decisions taken *inside*
//! a manager — "skip this liveness sweep", "tear this frame mid-write",
//! "process this registration twice". Buggify, in the FoundationDB
//! tradition, puts a named coin-flip at each such decision:
//!
//! ```rust
//! if qos_buggify::buggify!("hm.reap.defer") {
//!     return; // chaos: pretend the sweep timer was late
//! }
//! ```
//!
//! Properties the rest of the workspace relies on:
//!
//! - **Off by default, free in release.** Nothing fires unless a test
//!   calls [`enable`]. In release builds (or with the `buggify-off`
//!   feature) every point compiles to the constant `false` and the
//!   optimizer deletes the fault arm entirely — see [`COMPILED_IN`].
//! - **Deterministic.** Whether evaluation `n` of point `p` fires is a
//!   pure function of `(seed, p, n)` — independent of every other
//!   point, so adding a new fault site never perturbs the schedule of
//!   existing ones. Same seed, same run.
//! - **Thread-local.** Worlds run one-per-thread in parallel tests;
//!   buggify state follows the same rule. Code that spawns its own
//!   threads snapshots [`config`] and [`adopt`]s it on the far side.
//! - **Scriptable.** [`force`] arms the next `n` evaluations of a point
//!   regardless of the dice — this is how regression tests replay a
//!   schedule that the model checker (or a previous chaos run) proved
//!   harmful — and [`suppress`] pins a point off.

use std::cell::RefCell;
use std::collections::HashMap;

/// Whether fault points exist in this build at all. Debug builds carry
/// them (so `cargo test` exercises chaos paths); release builds and
/// `buggify-off` builds compile every point to literal `false`.
pub const COMPILED_IN: bool = cfg!(all(debug_assertions, not(feature = "buggify-off")));

/// Runtime view of [`COMPILED_IN`] (convenient in tests that must skip
/// themselves under `--release` or `buggify-off`).
pub fn compiled_in() -> bool {
    COMPILED_IN
}

/// Default per-evaluation firing probability when [`enable`] is used
/// without an explicit one. Low enough that a system under chaos still
/// makes forward progress, high enough that a minute of simulated
/// traffic hits every point many times.
pub const DEFAULT_PROB: f64 = 0.1;

/// A snapshot of the activation state, for carrying across threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// World seed the per-point dice derive from.
    pub seed: u64,
    /// Per-evaluation firing probability in `[0, 1]`.
    pub prob: f64,
}

/// Per-point bookkeeping.
#[derive(Debug, Default, Clone)]
struct Point {
    /// Evaluations seen (indexes the deterministic dice stream).
    evals: u64,
    /// Evaluations that fired.
    fired: u64,
    /// Evaluations forced to fire regardless of the dice.
    forced: u64,
    /// Pinned off (wins over `forced` and the dice).
    suppressed: bool,
}

#[derive(Debug, Default)]
struct State {
    cfg: Option<Config>,
    points: HashMap<String, Point>,
    fired_total: u64,
}

thread_local! {
    static STATE: RefCell<State> = RefCell::new(State::default());
}

#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: one well-mixed u64 from one input word.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic die: does evaluation `n` of `name` fire under
/// `cfg`? Pure — the per-point streams are independent of evaluation
/// order across points.
#[inline]
fn roll(cfg: Config, name: &str, n: u64) -> bool {
    let word = mix(cfg.seed ^ fnv1a(name) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // 53 mantissa bits -> uniform in [0, 1), same recipe as qos-sim's Rng.
    let u = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < cfg.prob
}

/// Activate buggify on this thread with [`DEFAULT_PROB`]. Clears all
/// per-point state (counters, forces, suppressions).
pub fn enable(seed: u64) {
    enable_with(seed, DEFAULT_PROB);
}

/// Activate buggify on this thread with an explicit probability.
pub fn enable_with(seed: u64, prob: f64) {
    if !COMPILED_IN {
        return;
    }
    STATE.with(|s| {
        *s.borrow_mut() = State {
            cfg: Some(Config { seed, prob }),
            ..State::default()
        };
    });
}

/// Deactivate buggify on this thread and drop all per-point state.
pub fn disable() {
    if !COMPILED_IN {
        return;
    }
    STATE.with(|s| *s.borrow_mut() = State::default());
}

/// Is buggify active on this thread?
pub fn is_enabled() -> bool {
    COMPILED_IN && STATE.with(|s| s.borrow().cfg.is_some())
}

/// Snapshot the activation state (None when disabled), for handing to a
/// spawned thread which then calls [`adopt`].
pub fn config() -> Option<Config> {
    if !COMPILED_IN {
        return None;
    }
    STATE.with(|s| s.borrow().cfg)
}

/// Activate this thread from a snapshot taken by [`config`] on another.
/// Per-point state starts fresh (forces and suppressions are
/// thread-local scripts, not world state).
pub fn adopt(cfg: Config) {
    enable_with(cfg.seed, cfg.prob);
}

/// Force the next `n` evaluations of `name` to fire, dice regardless —
/// works even while buggify is otherwise disabled, so a regression test
/// can arm exactly one fault without enabling background chaos.
pub fn force(name: &str, n: u64) {
    if !COMPILED_IN {
        return;
    }
    STATE.with(|s| {
        s.borrow_mut()
            .points
            .entry(name.to_string())
            .or_default()
            .forced += n;
    });
}

/// Drop any script attached to `name` (pending forces, suppression).
/// Counters survive; the point goes back to plain dice behavior. Used
/// by harnesses that arm a force conditionally and must not leak it
/// into the next operation if the guarded site never evaluated.
pub fn clear(name: &str) {
    if !COMPILED_IN {
        return;
    }
    STATE.with(|s| {
        if let Some(p) = s.borrow_mut().points.get_mut(name) {
            p.forced = 0;
            p.suppressed = false;
        }
    });
}

/// Pin `name` off: it never fires on this thread until [`enable`] /
/// [`disable`] resets the state.
pub fn suppress(name: &str) {
    if !COMPILED_IN {
        return;
    }
    STATE.with(|s| {
        s.borrow_mut()
            .points
            .entry(name.to_string())
            .or_default()
            .suppressed = true;
    });
}

/// Evaluate the fault point `name`: should the caller take the fault
/// arm this time? Prefer the [`buggify!`] macro at call sites.
#[inline]
pub fn fire(name: &str) -> bool {
    if !COMPILED_IN {
        return false;
    }
    fire_slow(name)
}

#[inline(never)]
fn fire_slow(name: &str) -> bool {
    STATE.with(|s| {
        let mut guard = s.borrow_mut();
        let st = &mut *guard;
        let cfg = st.cfg;
        // When buggify is fully inactive and the point carries no
        // script (force/suppress), avoid allocating a record for it.
        if cfg.is_none() && !st.points.contains_key(name) {
            return false;
        }
        let p = st.points.entry(name.to_string()).or_default();
        let n = p.evals;
        p.evals += 1;
        if p.suppressed {
            return false;
        }
        let hit = if p.forced > 0 {
            p.forced -= 1;
            true
        } else {
            match cfg {
                Some(cfg) => roll(cfg, name, n),
                None => false,
            }
        };
        if hit {
            p.fired += 1;
            st.fired_total += 1;
        }
        hit
    })
}

/// Total evaluations that fired since the last [`enable`]/[`disable`].
pub fn fired_total() -> u64 {
    if !COMPILED_IN {
        return 0;
    }
    STATE.with(|s| s.borrow().fired_total)
}

/// Per-point `(name, fired)` counts for points that fired at least
/// once, sorted by name — chaos tests assert coverage with this.
pub fn points_hit() -> Vec<(String, u64)> {
    if !COMPILED_IN {
        return Vec::new();
    }
    STATE.with(|s| {
        let mut v: Vec<(String, u64)> = s
            .borrow()
            .points
            .iter()
            .filter(|(_, p)| p.fired > 0)
            .map(|(n, p)| (n.clone(), p.fired))
            .collect();
        v.sort();
        v
    })
}

/// Per-point `(name, evaluations)` counts for every point evaluated at
/// least once, sorted by name — proves a fault site is actually on a
/// hot path even when its dice never came up.
pub fn points_seen() -> Vec<(String, u64)> {
    if !COMPILED_IN {
        return Vec::new();
    }
    STATE.with(|s| {
        let mut v: Vec<(String, u64)> = s
            .borrow()
            .points
            .iter()
            .filter(|(_, p)| p.evals > 0)
            .map(|(n, p)| (n.clone(), p.evals))
            .collect();
        v.sort();
        v
    })
}

/// The fault-point macro. Reads as a question: "does the chaos layer
/// want the fault here, now?"
#[macro_export]
macro_rules! buggify {
    ($name:expr) => {
        $crate::fire($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the thread-local: `cargo test` runs
    /// tests on a thread pool, but each test body stays on one thread,
    /// so enable/disable pairs inside one test are safe.
    fn fresh(seed: u64, prob: f64) {
        disable();
        enable_with(seed, prob);
    }

    #[test]
    fn off_by_default_and_in_noop_builds() {
        disable();
        assert!(!is_enabled());
        assert!(!fire("some.point"));
        assert_eq!(fired_total(), 0);
        if !COMPILED_IN {
            // The noop-build contract: enable() is inert too.
            enable(42);
            assert!(!is_enabled());
            assert!(!fire("some.point"));
            assert!(config().is_none());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        if !compiled_in() {
            return;
        }
        let draw = |seed| {
            fresh(seed, 0.5);
            let v: Vec<bool> = (0..64).map(|_| fire("p.x")).collect();
            disable();
            v
        };
        assert_eq!(draw(7), draw(7), "same seed, same schedule");
        assert_ne!(draw(7), draw(8), "different seed, different schedule");
    }

    #[test]
    fn streams_are_independent_across_points() {
        if !compiled_in() {
            return;
        }
        // Draw a's stream alone...
        fresh(11, 0.5);
        let alone: Vec<bool> = (0..64).map(|_| fire("p.a")).collect();
        // ...then interleave with another point: a's stream must not move.
        fresh(11, 0.5);
        let interleaved: Vec<bool> = (0..64)
            .map(|_| {
                let _ = fire("p.b");
                fire("p.a")
            })
            .collect();
        disable();
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn probability_is_roughly_honored() {
        if !compiled_in() {
            return;
        }
        fresh(3, 0.25);
        let n = 10_000;
        let hits = (0..n).filter(|_| fire("p.freq")).count();
        disable();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn force_fires_without_enable_and_wins_over_dice() {
        if !compiled_in() {
            return;
        }
        disable();
        force("p.forced", 2);
        assert!(fire("p.forced"));
        assert!(fire("p.forced"));
        assert!(!fire("p.forced"), "budget of 2 exhausted");
        assert_eq!(fired_total(), 2);
        assert_eq!(points_hit(), vec![("p.forced".into(), 2)]);
        disable();
    }

    #[test]
    fn clear_drops_pending_scripts() {
        if !compiled_in() {
            return;
        }
        disable();
        force("p.cleared", 5);
        clear("p.cleared");
        assert!(!fire("p.cleared"), "force dropped before evaluation");
        suppress("p.cleared");
        clear("p.cleared");
        force("p.cleared", 1);
        assert!(fire("p.cleared"), "suppression dropped by clear");
        disable();
    }

    #[test]
    fn suppress_pins_a_point_off() {
        if !compiled_in() {
            return;
        }
        fresh(5, 1.0);
        suppress("p.quiet");
        force("p.quiet", 3);
        assert!(!fire("p.quiet"), "suppression beats force and p=1.0");
        assert!(fire("p.loud"), "other points unaffected");
        disable();
    }

    #[test]
    fn config_snapshot_adopts_across_threads() {
        if !compiled_in() {
            return;
        }
        fresh(9, 1.0);
        let snap = config().expect("enabled");
        let here: Vec<bool> = (0..8).map(|_| fire("p.t")).collect();
        let there = std::thread::spawn(move || {
            assert!(!is_enabled(), "fresh thread starts dark");
            adopt(snap);
            (0..8).map(|_| fire("p.t")).collect::<Vec<bool>>()
        })
        .join()
        .unwrap();
        disable();
        assert_eq!(here, there, "adopted thread replays the same stream");
    }

    #[test]
    fn points_seen_tracks_cold_points() {
        if !compiled_in() {
            return;
        }
        fresh(13, 0.0);
        for _ in 0..5 {
            assert!(!fire("p.cold"));
        }
        assert_eq!(points_hit(), vec![]);
        assert_eq!(points_seen(), vec![("p.cold".into(), 5)]);
        disable();
    }

    #[test]
    fn macro_expands_to_fire() {
        if !compiled_in() {
            return;
        }
        fresh(1, 1.0);
        assert!(buggify!("p.macro"));
        disable();
        assert!(!buggify!("p.macro"));
    }
}
