//! # qos-apps — instrumented workload models
//!
//! The applications the paper evaluates and instruments, rebuilt as
//! simulation process logic:
//!
//! * [`video`] — the MPEG-player-style streaming pipeline (server +
//!   fully instrumented client) behind Figure 3;
//! * [`loadgen`] — CPU hogs, duty-cycled generators and background
//!   daemons that produce the Figure 3 load-average sweep;
//! * [`webserver`] — an Apache-like request server with a response-time
//!   policy (Section 9's third-party instrumentation example);
//! * [`game`] — a DOOM-like fixed-tick render loop with a frame-rate
//!   policy (the other third-party example).

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod game;
pub mod loadgen;
pub mod video;
pub mod webserver;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::game::{game_fps_policy, Game, GameConfig};
    pub use crate::loadgen::{
        mix_for_target, spawn_mix, BackgroundDaemon, CpuHog, DutyLoadGen, LoadMix,
    };
    pub use crate::video::{
        example1_policy, Frame, VideoClient, VideoClientConfig, VideoClientStats, VideoServer,
        VideoServerConfig, VIDEO_PORT,
    };
    pub use crate::webserver::{
        response_time_policy, Request, RequestGen, WebServer, WebServerConfig, WEB_PORT,
    };
}

pub use prelude::*;
