//! An Apache-like request-serving workload — one of the third-party
//! applications the paper instrumented to demonstrate that adding probes
//! requires no QoS-management knowledge (Section 9, "Ease of Application
//! Development").
//!
//! A separate generator process issues requests with Poisson arrivals;
//! each request costs the server CPU; the instrumented response-time
//! gauge (measured from the request's send timestamp) feeds a
//! `response_time < bound` policy.

use qos_instrument::prelude::*;
use qos_manager::messages::{ViolationMsg, WireMsg};
use qos_manager::transport::send_ctrl;
use qos_policy::compile::CompiledPolicy;
use qos_sim::prelude::*;

/// Port the web server accepts requests on.
pub const WEB_PORT: Port = 210;

const TAG_POLL: u64 = 2;

/// A request on the wire; `sent_us` is stamped by the generator.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Issue timestamp at the generator (µs).
    pub sent_us: u64,
}

/// Poisson request generator aimed at a web server.
pub struct RequestGen {
    /// Destination server.
    pub dst: Endpoint,
    /// Mean arrival rate, requests/second.
    pub rate: f64,
    /// Requests issued.
    pub issued: u64,
}

impl RequestGen {
    /// Generator at `rate` requests/second.
    pub fn new(dst: Endpoint, rate: f64) -> Self {
        RequestGen {
            dst,
            rate,
            issued: 0,
        }
    }

    fn schedule(&self, ctx: &mut Ctx<'_>) {
        let gap = ctx.rng().exponential(1.0 / self.rate);
        ctx.set_timer(Dur::from_secs_f64(gap), 0);
    }
}

impl ProcessLogic for RequestGen {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => self.schedule(ctx),
            ProcEvent::Timer(_) => {
                self.issued += 1;
                ctx.send(
                    self.dst,
                    WEB_PORT,
                    512,
                    Request {
                        sent_us: ctx.now().as_micros(),
                    },
                );
                self.schedule(ctx);
            }
            _ => {}
        }
    }
}

/// Configuration of the web server workload.
#[derive(Debug, Clone)]
pub struct WebServerConfig {
    /// Mean CPU cost per request.
    pub cpu_per_request: Dur,
    /// Host manager to report violations to.
    pub host_manager: Option<Endpoint>,
}

impl Default for WebServerConfig {
    fn default() -> Self {
        WebServerConfig {
            cpu_per_request: Dur::from_micros(5_000),
            host_manager: None,
        }
    }
}

/// Metrics for experiments.
#[derive(Debug, Default)]
pub struct WebServerStats {
    /// Requests served.
    pub served: u64,
    /// Sum of response times (µs) for mean computation.
    pub total_response_us: u64,
    /// Worst response time seen (µs).
    pub max_response_us: u64,
    /// Violation reports sent.
    pub reports: u64,
    /// Housekeeping polls executed.
    pub polls: u64,
}

impl WebServerStats {
    /// Mean response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_response_us as f64 / self.served as f64 / 1_000.0
        }
    }
}

/// The instrumented web server process.
pub struct WebServer {
    cfg: WebServerConfig,
    /// Upper bound of the response-time policy (ms), reported to the
    /// manager so its rules can judge severity.
    bound_ms: f64,
    sensors: SensorSet,
    /// The server's coordinator.
    pub coordinator: Coordinator,
    policies: Vec<CompiledPolicy>,
    /// The request being served (its generator timestamp).
    serving: Option<u64>,
    /// Metrics.
    pub stats: WebServerStats,
}

impl WebServer {
    /// A server enforcing the given policies over `response_time` (ms).
    pub fn new(cfg: WebServerConfig, policies: Vec<CompiledPolicy>) -> Self {
        let mut sensors = SensorSet::new();
        sensors.add(AnySensor::Gauge(GaugeSensor::new(
            "response_sensor",
            "response_time",
        )));
        // The policy's upper bound on response_time, for manager-side
        // severity judgement.
        let bound_ms = policies
            .iter()
            .flat_map(|p| p.conditions.iter())
            .filter(|c| c.attr == "response_time")
            .map(|c| c.value)
            .fold(f64::INFINITY, f64::min);
        WebServer {
            cfg,
            bound_ms,
            sensors,
            coordinator: Coordinator::new(String::new()),
            policies,
            serving: None,
            stats: WebServerStats::default(),
        }
    }

    /// Begin serving the next queued request, if idle.
    fn maybe_serve(&mut self, ctx: &mut Ctx<'_>) {
        if self.serving.is_some() {
            return;
        }
        let Some(msg) = ctx.recv(WEB_PORT) else {
            return;
        };
        let Some(&req) = msg.payload.get::<Request>() else {
            return;
        };
        self.serving = Some(req.sent_us);
        let k = ctx.rng().normal(1.0, 0.2).clamp(0.3, 3.0);
        ctx.run(self.cfg.cpu_per_request.mul_f64(k));
    }

    fn report_violations(&mut self, ctx: &mut Ctx<'_>, triggered: Vec<usize>, now_us: u64) {
        for pix in triggered {
            if let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now_us) {
                self.stats.reports += 1;
                if let Some(hm) = self.cfg.host_manager {
                    send_ctrl(
                        ctx,
                        hm,
                        WEB_PORT,
                        WireMsg::Violation(ViolationMsg {
                            pid: ctx.pid(),
                            proc_name: "WebServer".into(),
                            policy: report.policy.clone(),
                            corr: report.corr,
                            readings: report.readings,
                            bounds: Some(("response_time".into(), 0.0, self.bound_ms)),
                            upstream: None,
                        }),
                    );
                }
            }
        }
    }
}

impl ProcessLogic for WebServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        let now_us = ctx.now().as_micros();
        match ev {
            ProcEvent::Start => {
                self.coordinator = Coordinator::new(qos_manager::host::pid_to_string(ctx.pid()));
                for p in self.policies.drain(..) {
                    self.coordinator.load_policy(p);
                }
                self.sensors.configure(self.coordinator.global_conditions());
                ctx.set_timer(Dur::from_secs(1), TAG_POLL);
            }
            ProcEvent::Readable(WEB_PORT) => {
                self.maybe_serve(ctx);
            }
            ProcEvent::Timer(TAG_POLL) => {
                self.stats.polls += 1;
                let polled = self.coordinator.poll(now_us);
                self.report_violations(ctx, polled, now_us);
                ctx.set_timer(Dur::from_secs(1), TAG_POLL);
            }
            ProcEvent::BurstDone => {
                if let Some(sent_us) = self.serving.take() {
                    let resp_us = now_us.saturating_sub(sent_us);
                    self.stats.served += 1;
                    self.stats.total_response_us += resp_us;
                    self.stats.max_response_us = self.stats.max_response_us.max(resp_us);
                    // Probe: response time in milliseconds.
                    let mut triggered = Vec::new();
                    if let Some(g) = self.sensors.gauge("response_time") {
                        for a in g.sample(resp_us as f64 / 1_000.0, now_us) {
                            triggered.extend(self.coordinator.on_alarm(&a));
                        }
                    }
                    self.report_violations(ctx, triggered, now_us);
                }
                // The next request is served from its own deferred
                // Readable event; issuing the blocking burst here would
                // starve the poll timer behind back-to-back service.
            }
            _ => {}
        }
    }
}

/// A `response_time < bound_ms` policy for the web server.
pub fn response_time_policy(bound_ms: f64) -> CompiledPolicy {
    let src = format!(
        "oblig WebResponseTime {{ \
           subject (...)/WebServer/qosl_coordinator \
           target response_sensor, (...)QoSHostManager \
           on not (response_time < {bound_ms}) \
           do response_sensor->read(out response_time); \
              (...)QoSHostManager->notify(response_time); }}"
    );
    qos_policy::compile::compile(&qos_policy::parser::parse_policy(&src).expect("static"))
        .expect("static compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::CpuHog;

    fn spawn_pair(w: &mut World, h: HostId, cfg: WebServerConfig, rate: f64) -> Pid {
        let ws = w.spawn(
            h,
            ProcConfig::new("WebServer").port(WEB_PORT, 1 << 20),
            WebServer::new(cfg, vec![response_time_policy(50.0)]),
        );
        let dst = Endpoint::new(h, WEB_PORT);
        w.spawn(h, ProcConfig::new("RequestGen"), RequestGen::new(dst, rate));
        ws
    }

    #[test]
    fn idle_host_meets_response_bound() {
        let mut w = World::new(5);
        let h = w.add_host("web", 1 << 16);
        let ws = spawn_pair(&mut w, h, WebServerConfig::default(), 50.0);
        w.run_for(Dur::from_secs(60));
        let s: &WebServer = w.logic(ws).unwrap();
        assert!(s.stats.served > 2_000, "served {}", s.stats.served);
        assert!(
            s.stats.mean_response_ms() < 20.0,
            "mean {}",
            s.stats.mean_response_ms()
        );
        assert_eq!(s.coordinator.violation_count(0), 0);
    }

    #[test]
    fn contended_host_violates_response_bound() {
        let mut w = World::new(5);
        let h = w.add_host("web", 1 << 16);
        // ~90% CPU demand: queueing delays compound under contention.
        let ws = spawn_pair(
            &mut w,
            h,
            WebServerConfig {
                cpu_per_request: Dur::from_micros(8_000),
                ..WebServerConfig::default()
            },
            112.0,
        );
        for _ in 0..6 {
            w.spawn(h, ProcConfig::new("hog"), CpuHog::new());
        }
        w.run_for(Dur::from_secs(60));
        let s: &WebServer = w.logic(ws).unwrap();
        assert!(
            s.coordinator.violation_count(0) >= 1,
            "mean response {} ms",
            s.stats.mean_response_ms()
        );
        assert!(s.stats.max_response_us > 50_000);
    }
}
