//! The video streaming workload: an MPEG-player-style client and a frame
//! server, standing in for the Berkeley software MPEG decoder the paper's
//! evaluation used.
//!
//! The client is a fully *instrumented process*: it embeds the
//! `qos-instrument` sensors (fps, jitter, socket buffer), a coordinator
//! with the Example 1 policy, and it registers with its QoS Host Manager
//! at initialisation. Frames arrive over the (simulated) network into its
//! socket buffer; each is decoded (a CPU burst) and displayed (firing the
//! frame probe of Example 2).
//!
//! The dynamics that matter for Figure 3 arise naturally: while the
//! client keeps up it sleeps between frames and retains its interactive
//! scheduling boost; once decode demand exceeds its CPU share the socket
//! buffer backs up, the client stops sleeping, loses the boost, decays to
//! a CPU-bound priority and collapses — unless the QoS Host Manager's CPU
//! resource manager intervenes.

use qos_instrument::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use qos_telemetry::{Counter, Gauge, Histogram, Stage, Telemetry};

use qos_manager::messages::{
    AgentRequest, RegisterMsg, Upstream, ViolationMsg, WireMsg, REGISTRATION_HEARTBEAT_PERIOD,
};
use qos_manager::transport::{decode_ctrl, send_ctrl};
use qos_policy::compile::CompiledPolicy;
use qos_sim::prelude::*;
use qos_sim::stats::Series;

/// Port a video client receives frames on.
pub const VIDEO_PORT: Port = 100;

/// A video frame on the wire.
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    /// Sequence number.
    pub seq: u64,
    /// Capture timestamp at the server.
    pub sent_us: u64,
}

/// Timer tags used by the video processes.
const TAG_NEXT_FRAME: u64 = 1;
const TAG_POLL: u64 = 2;
const TAG_AGENT_RETRY: u64 = 3;
const TAG_HEARTBEAT: u64 = 4;

/// First retry delay of the Policy Agent handshake; doubles per attempt.
const AGENT_RETRY_INITIAL: Dur = Dur::from_millis(200);
/// Unanswered Policy Agent requests tolerated before the client gives up
/// on distribution and falls back to its built-in Example 1 policy.
const AGENT_MAX_ATTEMPTS: u32 = 5;

/// Configuration of a [`VideoServer`].
#[derive(Debug, Clone)]
pub struct VideoServerConfig {
    /// Destination client endpoint.
    pub client: Endpoint,
    /// Frames per second offered.
    pub fps: f64,
    /// Frame size on the wire, bytes.
    pub frame_bytes: u32,
    /// CPU cost to produce one frame.
    pub cpu_per_frame: Dur,
    /// Frames emitted per production tick (1 = smooth pacing; higher
    /// values deliver the same mean rate in bursts, degrading jitter
    /// while leaving the frame rate intact — exercises the jitter leg of
    /// Example 1's policy).
    pub burst: u32,
}

impl Default for VideoServerConfig {
    fn default() -> Self {
        VideoServerConfig {
            client: Endpoint::new(HostId(0), VIDEO_PORT),
            fps: 30.0,
            frame_bytes: 12_000,
            cpu_per_frame: Dur::from_micros(2_000),
            burst: 1,
        }
    }
}

/// The frame server: produces frames at a fixed rate, each costing CPU.
/// If the server host is overloaded, frames fall behind schedule — the
/// "server machine problem" fault mode of Section 7.
pub struct VideoServer {
    cfg: VideoServerConfig,
    seq: u64,
    next_due: SimTime,
    /// Frames sent.
    pub sent: u64,
}

impl VideoServer {
    /// New server.
    pub fn new(cfg: VideoServerConfig) -> Self {
        VideoServer {
            cfg,
            seq: 0,
            next_due: SimTime::ZERO,
            sent: 0,
        }
    }

    /// Change the per-frame CPU cost at run time (fault injection: a
    /// degraded encode path makes the server CPU-hungry).
    pub fn set_cpu_per_frame(&mut self, cost: Dur) {
        self.cfg.cpu_per_frame = cost;
    }

    fn interval(&self) -> Dur {
        Dur::from_secs_f64(self.cfg.burst.max(1) as f64 / self.cfg.fps)
    }
}

impl ProcessLogic for VideoServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => {
                self.next_due = ctx.now() + self.interval();
                ctx.set_timer(self.interval(), TAG_NEXT_FRAME);
            }
            ProcEvent::Timer(TAG_NEXT_FRAME) => {
                // Produce the frame (CPU), then ship it on completion.
                ctx.run(self.cfg.cpu_per_frame);
            }
            ProcEvent::BurstDone => {
                for _ in 0..self.cfg.burst.max(1) {
                    self.seq += 1;
                    self.sent += 1;
                    ctx.send(
                        self.cfg.client,
                        VIDEO_PORT,
                        self.cfg.frame_bytes,
                        Frame {
                            seq: self.seq,
                            sent_us: ctx.now().as_micros(),
                        },
                    );
                }
                // Keep to the schedule, absorbing any processing delay.
                self.next_due += self.interval();
                let delay = self.next_due.since(ctx.now());
                ctx.set_timer(delay, TAG_NEXT_FRAME);
            }
            _ => {}
        }
    }
}

/// Configuration of a [`VideoClient`].
#[derive(Debug, Clone)]
pub struct VideoClientConfig {
    /// Port frames arrive on.
    pub video_port: Port,
    /// CPU cost to decode + display one frame.
    pub decode_cost: Dur,
    /// Relative jitter of the decode cost (0.1 = ±10% 1σ).
    pub decode_jitter: f64,
    /// The host manager endpoint to register and report to.
    pub host_manager: Option<Endpoint>,
    /// The upstream server identity (for escalation).
    pub upstream: Option<Upstream>,
    /// Application name used at registration.
    pub application: String,
    /// User role / weight for administrative policies.
    pub role: String,
    /// Relative importance under differentiated administrative rules.
    pub weight: f64,
    /// Interval of the housekeeping timer (sensor ticks, coordinator
    /// poll, buffer sampling).
    pub poll_interval: Dur,
    /// Install the proactive buffer-growth trend sensor (the Section 10
    /// proactive-QoS extension).
    pub proactive: bool,
    /// Policy Agent endpoint: when set (and no policies were passed at
    /// construction), the client registers over the network at startup
    /// and loads whatever the agent resolves for its role — the full
    /// Section 6 distribution path inside the simulation.
    pub policy_agent: Option<Endpoint>,
    /// Telemetry handle (inert by default). When enabled the client
    /// mints a correlation id per violation episode, emits
    /// Detect/Report/BackInSpec stage events and samples `video.*`
    /// gauges each poll.
    pub telemetry: Telemetry,
}

impl Default for VideoClientConfig {
    fn default() -> Self {
        VideoClientConfig {
            video_port: VIDEO_PORT,
            decode_cost: Dur::from_micros(30_000),
            decode_jitter: 0.05,
            host_manager: None,
            upstream: None,
            application: "VideoPlayback".into(),
            role: "*".into(),
            weight: 1.0,
            poll_interval: Dur::from_millis(500),
            proactive: false,
            policy_agent: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Client-side metrics for experiments.
#[derive(Debug, Default)]
pub struct VideoClientStats {
    /// Frames decoded and displayed.
    pub displayed: u64,
    /// Frames received.
    pub received: u64,
    /// Violation reports sent to the host manager.
    pub reports: u64,
    /// When the coordinator finished loading its policies (µs), for the
    /// in-sim registration-latency measurement. 0 until loaded.
    pub policies_loaded_at_us: u64,
    /// Housekeeping polls executed.
    pub polls: u64,
    /// Policies re-notified by poll.
    pub poll_renotifies: u64,
    /// Policy Agent requests re-sent after a timeout (lost request or
    /// lost reply).
    pub agent_retries: u64,
    /// True when the agent never answered and the client loaded its
    /// built-in fallback policy instead.
    pub used_policy_fallback: bool,
    /// Heartbeat re-registrations sent to the host manager.
    pub heartbeats: u64,
    /// Displayed-fps series, one point per poll interval.
    pub fps_series: Series,
}

/// Decode-cost multipliers per quality level (0 = full quality). The
/// quality actuator walks down this ladder when the manager asks the
/// application to adapt under overload (Section 10).
pub const QUALITY_LADDER: [f64; 3] = [1.0, 0.65, 0.45];

/// The instrumented video client.
pub struct VideoClient {
    cfg: VideoClientConfig,
    sensors: SensorSet,
    coordinator: Coordinator,
    actuators: ActuatorSet,
    /// Current quality level (index into [`QUALITY_LADDER`]); shared with
    /// the quality actuator.
    quality: Arc<AtomicU8>,
    policies: Vec<CompiledPolicy>,
    decoding: Option<Frame>,
    policies_loaded: bool,
    agent_attempts: u32,
    agent_backoff: Dur,
    /// Metrics.
    pub stats: VideoClientStats,
    displayed_at_last_poll: u64,
    last_poll: SimTime,
    /// Resolved telemetry series (None while telemetry is disabled).
    probes: Option<VideoProbes>,
    /// Detect timestamp per open correlation id, for the MTTR histogram.
    detected_at: HashMap<u64, u64>,
}

/// The client's resolved telemetry series, one registry lookup each at
/// setup instead of per sample.
struct VideoProbes {
    fps: Gauge,
    quality: Gauge,
    observations: Gauge,
    suppressions: Gauge,
    reports: Counter,
    mttr: Histogram,
}

impl VideoClient {
    /// A client that will enforce the given compiled policies (as
    /// delivered by the Policy Agent).
    pub fn new(cfg: VideoClientConfig, policies: Vec<CompiledPolicy>) -> Self {
        let mut sensors = SensorSet::video_standard();
        if cfg.proactive {
            sensors.add(AnySensor::Trend(TrendSensor::new(
                "trend_sensor",
                "buffer_growth",
                2_000_000,
            )));
        }
        // The quality actuator (Section 5.1): the management plane's
        // handle for application-level adaptation.
        let quality = Arc::new(AtomicU8::new(0));
        let mut actuators = ActuatorSet::new();
        let q = Arc::clone(&quality);
        actuators.add(FnActuator::new(
            "quality_actuator",
            move |command, _value| match command {
                "degrade" => {
                    let cur = q.load(Ordering::Relaxed);
                    if (cur as usize) < QUALITY_LADDER.len() - 1 {
                        q.store(cur + 1, Ordering::Relaxed);
                    }
                    true
                }
                "restore" => {
                    q.store(0, Ordering::Relaxed);
                    true
                }
                _ => false,
            },
        ));
        VideoClient {
            cfg,
            sensors,
            coordinator: Coordinator::new(String::new()),
            actuators,
            quality,
            policies,
            decoding: None,
            policies_loaded: false,
            agent_attempts: 0,
            agent_backoff: AGENT_RETRY_INITIAL,
            stats: VideoClientStats::default(),
            displayed_at_last_poll: 0,
            last_poll: SimTime::ZERO,
            probes: None,
            detected_at: HashMap::new(),
        }
    }

    /// Current quality level (0 = full).
    pub fn quality(&self) -> u8 {
        self.quality.load(Ordering::Relaxed)
    }

    /// The client's sensor set (for inspection in tests/experiments).
    pub fn sensors(&self) -> &SensorSet {
        &self.sensors
    }

    /// The client's coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Idempotent: the agent handshake is at-least-once (retries can
    /// cross a slow reply in flight), so a duplicate delivery must not
    /// double-load policies into the coordinator.
    fn load_policies(&mut self, policies: Vec<CompiledPolicy>, now_us: u64) {
        if self.policies_loaded {
            return;
        }
        self.policies_loaded = true;
        for p in policies {
            self.coordinator.load_policy(p);
        }
        let missing = self.sensors.configure(self.coordinator.global_conditions());
        debug_assert!(missing.is_empty(), "unmonitorable attributes: {missing:?}");
        self.stats.policies_loaded_at_us = now_us;
    }

    fn registration(&self, ctx: &Ctx<'_>) -> RegisterMsg {
        RegisterMsg {
            pid: ctx.pid(),
            control_port: self.cfg.video_port,
            executable: "VideoApplication".into(),
            application: self.cfg.application.clone(),
            role: self.cfg.role.clone(),
            weight: self.cfg.weight,
            heartbeat: Some(REGISTRATION_HEARTBEAT_PERIOD),
        }
    }

    fn send_agent_request(&mut self, ctx: &mut Ctx<'_>) {
        let Some(agent) = self.cfg.policy_agent else {
            return;
        };
        self.agent_attempts += 1;
        send_ctrl(
            ctx,
            agent,
            self.cfg.video_port,
            WireMsg::AgentRequest(AgentRequest {
                pid: ctx.pid(),
                reply_port: self.cfg.video_port,
                registration: self.registration(ctx),
            }),
        );
        ctx.set_timer(self.agent_backoff, TAG_AGENT_RETRY);
        self.agent_backoff = self.agent_backoff.mul_f64(2.0);
    }

    fn setup(&mut self, ctx: &mut Ctx<'_>) {
        // Initialise instrumentation: load policies (or request them from
        // the Policy Agent), configure sensors, register with the QoS
        // Host Manager (the ~400 µs the paper measures in the prototype
        // happens here).
        self.coordinator = Coordinator::new(qos_manager::host::pid_to_string(ctx.pid()));
        if self.policies.is_empty() && self.cfg.policy_agent.is_some() {
            self.send_agent_request(ctx);
        } else {
            let policies = std::mem::take(&mut self.policies);
            self.load_policies(policies, ctx.now().as_micros());
        }
        if let Some(hm) = self.cfg.host_manager {
            let reg = self.registration(ctx);
            send_ctrl(ctx, hm, VIDEO_PORT, WireMsg::Register(reg));
            ctx.set_timer(REGISTRATION_HEARTBEAT_PERIOD, TAG_HEARTBEAT);
        }
        if self.cfg.telemetry.is_enabled() {
            let label = qos_manager::host::pid_to_string(ctx.pid());
            let t = &self.cfg.telemetry;
            self.probes = Some(VideoProbes {
                fps: t.gauge("video.fps", &label),
                quality: t.gauge("video.quality_level", &label),
                observations: t.gauge("video.sensor_observations", &label),
                suppressions: t.gauge("video.spike_suppressions", &label),
                reports: t.counter("video.reports", &label),
                mttr: t.histogram("video.mttr_us", &label),
            });
        }
        ctx.set_timer(self.cfg.poll_interval, TAG_POLL);
    }

    fn dispatch_alarms(&mut self, ctx: &mut Ctx<'_>, alarms: Vec<AlarmEvent>, now_us: u64) {
        let mut triggered = Vec::new();
        for a in &alarms {
            let newly = self.coordinator.on_alarm(a);
            if self.cfg.telemetry.is_enabled() {
                // A violation episode begins here: mint the correlation
                // id that detection, diagnosis and adaptation will share.
                for &pix in &newly {
                    let corr = self.cfg.telemetry.next_corr();
                    self.coordinator.set_corr(pix, corr);
                    self.detected_at.insert(corr, now_us);
                    let policy = self.coordinator.policy(pix).name.clone();
                    let component = qos_manager::host::pid_to_string(ctx.pid());
                    let value = a.value;
                    self.cfg.telemetry.stage(
                        now_us,
                        corr,
                        Stage::Detect,
                        &component,
                        &policy,
                        || vec![("sensor_value".into(), value)],
                    );
                }
            }
            triggered.extend(newly);
        }
        for pix in triggered {
            self.notify(ctx, pix, now_us);
        }
        self.note_recoveries(ctx, now_us);
    }

    /// Emit BackInSpec events (and the MTTR histogram sample) for every
    /// episode the coordinator closed since the last alarm batch.
    fn note_recoveries(&mut self, ctx: &Ctx<'_>, now_us: u64) {
        let recovered = self.coordinator.take_recovered();
        if !self.cfg.telemetry.is_enabled() {
            return;
        }
        for (pix, corr) in recovered {
            if corr == 0 {
                continue;
            }
            let detect_us = self.detected_at.remove(&corr);
            if let (Some(d), Some(p)) = (detect_us, self.probes.as_ref()) {
                p.mttr.record(now_us.saturating_sub(d));
            }
            let policy = self.coordinator.policy(pix).name.clone();
            let component = qos_manager::host::pid_to_string(ctx.pid());
            self.cfg
                .telemetry
                .stage(
                    now_us,
                    corr,
                    Stage::BackInSpec,
                    &component,
                    &policy,
                    || match detect_us {
                        Some(d) => vec![("mttr_us".into(), now_us.saturating_sub(d) as f64)],
                        None => Vec::new(),
                    },
                );
        }
    }

    fn notify(&mut self, ctx: &mut Ctx<'_>, policy_ix: usize, now_us: u64) {
        let Some(report) = self
            .coordinator
            .execute_actions(policy_ix, &self.sensors, now_us)
        else {
            return;
        };
        let Some(hm) = self.cfg.host_manager else {
            return;
        };
        // Requirement bounds on the primary attribute, for the manager's
        // severity computation.
        let compiled = self.coordinator.policy(policy_ix);
        let primary = report.readings.first().map(|(a, _)| a.clone());
        let bounds = primary.as_ref().map(|attr| {
            let mut lo = f64::NEG_INFINITY;
            let mut hi = f64::INFINITY;
            for c in compiled.conditions.iter().filter(|c| &c.attr == attr) {
                use qos_policy::ast::CmpOp::*;
                match c.op {
                    Gt | Ge => lo = lo.max(c.value),
                    Lt | Le => hi = hi.min(c.value),
                    _ => {}
                }
            }
            (attr.clone(), lo, hi)
        });
        self.stats.reports += 1;
        if let Some(p) = self.probes.as_ref() {
            p.reports.inc();
        }
        if self.cfg.telemetry.is_enabled() {
            let component = qos_manager::host::pid_to_string(ctx.pid());
            let readings = report.readings.clone();
            self.cfg.telemetry.stage(
                now_us,
                report.corr,
                Stage::Report,
                &component,
                &report.policy,
                || readings,
            );
        }
        send_ctrl(
            ctx,
            hm,
            VIDEO_PORT,
            WireMsg::Violation(ViolationMsg {
                pid: ctx.pid(),
                proc_name: "VideoApplication".into(),
                policy: report.policy.clone(),
                corr: report.corr,
                readings: report.readings,
                bounds,
                upstream: self.cfg.upstream,
            }),
        );
    }

    fn sample_buffer(&mut self, ctx: &mut Ctx<'_>, now_us: u64) {
        let (_, bytes) = ctx.buffer_len(self.cfg.video_port);
        if let Some(b) = self.sensors.buffer() {
            let alarms = b.sample(bytes as f64, now_us);
            self.dispatch_alarms(ctx, alarms, now_us);
        }
        if let Some(t) = self.sensors.trend() {
            let alarms = t.sample(bytes as f64, now_us);
            self.dispatch_alarms(ctx, alarms, now_us);
        }
    }
}

impl ProcessLogic for VideoClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        let now_us = ctx.now().as_micros();
        match ev {
            ProcEvent::Start => self.setup(ctx),
            ProcEvent::Readable(port) if port == self.cfg.video_port => {
                // Example 5's probe: the socket queue length *before*
                // consuming, i.e. including this frame.
                self.sample_buffer(ctx, now_us);
                let Some(msg) = ctx.recv(port) else { return };
                match decode_ctrl(&msg) {
                    Ok(Some(WireMsg::Adapt(adapt))) => {
                        // Management-directed application adaptation.
                        self.actuators
                            .actuate(&adapt.actuator, &adapt.command, adapt.value);
                        return;
                    }
                    Ok(Some(WireMsg::AgentReply(reply))) => {
                        // Policies arriving from the Policy Agent.
                        self.load_policies(reply.policies, now_us);
                        return;
                    }
                    // Other control messages aren't meant for a client;
                    // corrupt frames are dropped (the manager counts its
                    // own — here there is nothing to do but move on).
                    Ok(Some(_)) | Err(_) => return,
                    // Not a control message: fall through to app payloads.
                    Ok(None) => {}
                }
                let Some(&frame) = msg.payload.get::<Frame>() else { return };
                self.stats.received += 1;
                debug_assert!(self.decoding.is_none(), "serial decode pipeline");
                self.decoding = Some(frame);
                let quality = QUALITY_LADDER
                    [self.quality.load(Ordering::Relaxed) as usize % QUALITY_LADDER.len()];
                let jitter = self.cfg.decode_jitter;
                let cost = if jitter > 0.0 {
                    let k = ctx.rng().normal(1.0, jitter).clamp(0.5, 2.0);
                    self.cfg.decode_cost.mul_f64(k * quality)
                } else {
                    self.cfg.decode_cost.mul_f64(quality)
                };
                ctx.run(cost);
            }
            ProcEvent::BurstDone
                // Frame decoded + displayed: Example 2's probe fires.
                if self.decoding.take().is_some() => {
                    self.stats.displayed += 1;
                    let mut alarms = Vec::new();
                    if let Some(f) = self.sensors.fps() {
                        alarms.extend(f.frame_displayed(now_us));
                    }
                    if let Some(j) = self.sensors.jitter() {
                        alarms.extend(j.frame_displayed(now_us));
                    }
                    self.dispatch_alarms(ctx, alarms, now_us);
                }
            ProcEvent::Timer(TAG_POLL) => {
                self.stats.polls += 1;
                // Housekeeping: stalled-stream detection, buffer sample,
                // persistent-violation renotification, fps recording.
                let mut alarms = Vec::new();
                if let Some(f) = self.sensors.fps() {
                    alarms.extend(f.tick(now_us));
                }
                self.dispatch_alarms(ctx, alarms, now_us);
                self.sample_buffer(ctx, now_us);
                for pix in self.coordinator.poll(now_us) {
                    self.stats.poll_renotifies += 1;
                    self.notify(ctx, pix, now_us);
                }
                // Record displayed fps over the poll window. Poll timers
                // can bunch when the process was starved (they are
                // delivered signal-like, ahead of queued I/O): windows
                // shorter than half the poll interval are folded into the
                // next one rather than producing inflated rate points.
                let dt = ctx.now().since(self.last_poll).as_secs_f64();
                if dt >= self.cfg.poll_interval.as_secs_f64() / 2.0 {
                    let frames = self.stats.displayed - self.displayed_at_last_poll;
                    let fps = frames as f64 / dt;
                    self.stats.fps_series.push(ctx.now(), fps);
                    self.displayed_at_last_poll = self.stats.displayed;
                    self.last_poll = ctx.now();
                    if let Some(p) = self.probes.as_ref() {
                        p.fps.set(fps);
                        p.quality.set(self.quality.load(Ordering::Relaxed) as f64);
                        p.observations.set(self.sensors.total_observations() as f64);
                        p.suppressions.set(self.sensors.total_suppressions() as f64);
                    }
                }
                ctx.set_timer(self.cfg.poll_interval, TAG_POLL);
            }
            ProcEvent::Timer(TAG_AGENT_RETRY) => {
                // The registration handshake is a retrying protocol: a
                // lost request or reply costs one backoff interval, not
                // the whole management plane. After AGENT_MAX_ATTEMPTS
                // silent rounds the Policy Agent is declared unreachable
                // and the client falls back to its built-in local policy
                // — degraded (no role-specific policies) but managed.
                if self.policies_loaded {
                    // Reply arrived before the timer; nothing to do.
                } else if self.agent_attempts < AGENT_MAX_ATTEMPTS {
                    self.stats.agent_retries += 1;
                    self.send_agent_request(ctx);
                } else {
                    self.stats.used_policy_fallback = true;
                    self.load_policies(vec![example1_policy()], now_us);
                }
            }
            ProcEvent::Timer(TAG_HEARTBEAT) => {
                // Periodic re-registration: liveness heartbeat for the
                // host manager, and state repair — a manager that crashed
                // and restarted rebuilds its registry from these within
                // one period (registration is idempotent on the manager
                // side, so at-least-once delivery is safe).
                if let Some(hm) = self.cfg.host_manager {
                    self.stats.heartbeats += 1;
                    let reg = self.registration(ctx);
                    send_ctrl(ctx, hm, VIDEO_PORT, WireMsg::Register(reg));
                    ctx.set_timer(REGISTRATION_HEARTBEAT_PERIOD, TAG_HEARTBEAT);
                }
            }
            _ => {}
        }
    }
}

/// Compile the paper's Example 1 policy (the standard video QoS
/// requirement: 25 ± 2 fps, jitter < 1.25).
pub fn example1_policy() -> CompiledPolicy {
    let src = r#"
    oblig NotifyQoSViolation {
      subject (...)/VideoApplication/qosl_coordinator
      target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
      on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
      do fps_sensor->read(out frame_rate);
         jitter_sensor->read(out jitter_rate);
         buffer_sensor->read(out buffer_size);
         (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
    }"#;
    qos_policy::compile::compile(&qos_policy::parser::parse_policy(src).expect("static policy"))
        .expect("static policy compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-host world with a fast LAN between them.
    fn world() -> (World, HostId, HostId) {
        let mut w = World::new(42);
        let server_host = w.add_host("server", 1 << 16);
        let client_host = w.add_host("client", 1 << 16);
        let hop = w
            .net_mut()
            .add_hop("lan", 10_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
        w.net_mut()
            .set_route_symmetric(server_host, client_host, vec![hop]);
        (w, server_host, client_host)
    }

    #[test]
    fn unloaded_client_displays_at_stream_rate() {
        let (mut w, sh, ch) = world();
        let client = w.spawn(
            ch,
            ProcConfig::new("VideoApplication").port(VIDEO_PORT, 1 << 20),
            VideoClient::new(VideoClientConfig::default(), vec![example1_policy()]),
        );
        w.spawn(
            sh,
            ProcConfig::new("VideoServer"),
            VideoServer::new(VideoServerConfig {
                client: Endpoint::new(ch, VIDEO_PORT),
                ..VideoServerConfig::default()
            }),
        );
        w.run_for(Dur::from_secs(30));
        let c: &VideoClient = w.logic(client).unwrap();
        // 30 fps offered, decode 30 ms -> keeps up (just barely).
        let fps = c
            .stats
            .fps_series
            .mean_from(SimTime::from_micros(5_000_000));
        assert!(
            fps > 25.0,
            "unloaded client should display ~30 fps, got {fps}"
        );
        // At most the in-flight frame separates received from displayed.
        assert!(c.stats.received - c.stats.displayed <= 1);
    }

    #[test]
    fn slow_decoder_backs_up_buffer_and_reports() {
        let (mut w, sh, ch) = world();
        let cfg = VideoClientConfig {
            decode_cost: Dur::from_millis(60), // can only do ~16 fps
            ..VideoClientConfig::default()
        };
        let client = w.spawn(
            ch,
            ProcConfig::new("VideoApplication").port(VIDEO_PORT, 1 << 20),
            VideoClient::new(cfg, vec![example1_policy()]),
        );
        w.spawn(
            sh,
            ProcConfig::new("VideoServer"),
            VideoServer::new(VideoServerConfig {
                client: Endpoint::new(ch, VIDEO_PORT),
                ..VideoServerConfig::default()
            }),
        );
        w.run_for(Dur::from_secs(20));
        let c: &VideoClient = w.logic(client).unwrap();
        let fps = c
            .stats
            .fps_series
            .mean_from(SimTime::from_micros(5_000_000));
        assert!(fps < 20.0, "overloaded decoder, got {fps}");
        // The coordinator noticed (no host manager configured, so reports
        // are counted but unsent — violation tracking still works).
        assert!(c.coordinator().violation_count(0) >= 1);
        // Socket buffer backed up at some point.
        let buf_max = c.sensors().read_attr("buffer_size").unwrap_or(0.0);
        assert!(buf_max > 0.0);
    }

    #[test]
    fn server_keeps_schedule_when_unloaded() {
        let (mut w, sh, ch) = world();
        let client = w.spawn(
            ch,
            ProcConfig::new("VideoApplication").port(VIDEO_PORT, 1 << 20),
            VideoClient::new(VideoClientConfig::default(), vec![example1_policy()]),
        );
        let server = w.spawn(
            sh,
            ProcConfig::new("VideoServer"),
            VideoServer::new(VideoServerConfig {
                client: Endpoint::new(ch, VIDEO_PORT),
                fps: 30.0,
                ..VideoServerConfig::default()
            }),
        );
        w.run_for(Dur::from_secs(10));
        let s: &VideoServer = w.logic(server).unwrap();
        assert!((s.sent as i64 - 300).abs() <= 2, "sent {}", s.sent);
        let c: &VideoClient = w.logic(client).unwrap();
        assert!(c.stats.received >= s.sent - 5);
    }
}
