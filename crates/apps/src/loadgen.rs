//! Load generators: the competing conventional workloads of the paper's
//! evaluation ("video throughput dropped dramatically under an increasing
//! CPU load"). Figure 3's x-axis — the host's 1-minute load average — is
//! produced by a mix of full-time CPU hogs and one duty-cycled fractional
//! hog.

use qos_sim::prelude::*;

/// A CPU-bound process: chains long bursts forever, contributing ~1.0 to
//  the load average and sinking to the weak end of the TS range.
#[derive(Debug, Default)]
pub struct CpuHog {
    /// Bursts completed.
    pub bursts: u64,
}

impl CpuHog {
    /// New hog.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Burst length for hogs: long enough that quantum expiry (not burst
/// completion) dominates their scheduling.
const HOG_BURST: Dur = Dur::from_secs(10);

impl ProcessLogic for CpuHog {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => ctx.run(HOG_BURST),
            ProcEvent::BurstDone => {
                self.bursts += 1;
                ctx.run(HOG_BURST);
            }
            _ => {}
        }
    }
}

/// A duty-cycled load generator: busy for `duty` of each `period`,
/// contributing ~`duty` to the load average. Used for the fractional part
/// of a target load.
#[derive(Debug)]
pub struct DutyLoadGen {
    /// Fraction of time busy, `(0, 1]`.
    pub duty: f64,
    /// Cycle period.
    pub period: Dur,
}

impl DutyLoadGen {
    /// Generator with a 1-second period.
    pub fn new(duty: f64) -> Self {
        DutyLoadGen {
            duty: duty.clamp(0.01, 1.0),
            period: Dur::from_secs(1),
        }
    }
}

impl ProcessLogic for DutyLoadGen {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start | ProcEvent::Timer(_) => {
                // Jitter the cycle length ±25% so the generator does not
                // phase-lock with the 1 s load-average sampler (a
                // perfectly periodic 1 s cycle would alias to a load of
                // exactly 0 or 1 depending on phase).
                let k = ctx.rng().range_f64(0.75, 1.25);
                ctx.run(self.period.mul_f64(self.duty * k));
            }
            ProcEvent::BurstDone => {
                let k = ctx.rng().range_f64(0.75, 1.25);
                ctx.set_timer(self.period.mul_f64((1.0 - self.duty) * k), 0);
            }
            _ => {}
        }
    }
}

/// Light background daemons producing the paper's idle-machine baseline
/// load of ~0.7: short periodic bursts from several processes.
#[derive(Debug)]
pub struct BackgroundDaemon {
    /// Busy fraction of this daemon.
    pub duty: f64,
}

impl ProcessLogic for BackgroundDaemon {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start | ProcEvent::Timer(_) => {
                let k = ctx.rng().range_f64(0.5, 1.5);
                ctx.run(Dur::from_millis(100).mul_f64(self.duty * k));
            }
            ProcEvent::BurstDone => {
                let k = ctx.rng().range_f64(0.5, 1.5);
                ctx.set_timer(Dur::from_millis(100).mul_f64((1.0 - self.duty) * k), 0);
            }
            _ => {}
        }
    }
}

/// The mix of generators that produces a target load average on an
/// otherwise-idle host: whole hogs plus one duty-cycled generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadMix {
    /// Number of full-time hogs.
    pub hogs: u32,
    /// Duty of the fractional generator (0 = none).
    pub fraction: f64,
}

/// Compute the generator mix for a target load average, given the load
/// the host already carries (e.g. the video client + daemons).
pub fn mix_for_target(target_load: f64, existing: f64) -> LoadMix {
    let need = (target_load - existing).max(0.0);
    let hogs = need.floor() as u32;
    let fraction = need - hogs as f64;
    LoadMix {
        hogs,
        fraction: if fraction < 0.02 { 0.0 } else { fraction },
    }
}

/// Spawn a load mix on a host.
pub fn spawn_mix(world: &mut World, host: HostId, mix: LoadMix) -> Vec<Pid> {
    let mut pids = Vec::new();
    for _ in 0..mix.hogs {
        pids.push(world.spawn(host, ProcConfig::new("cpuhog"), CpuHog::new()));
    }
    if mix.fraction > 0.0 {
        pids.push(world.spawn(
            host,
            ProcConfig::new("fractional-hog"),
            DutyLoadGen::new(mix.fraction),
        ));
    }
    pids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_arithmetic() {
        let m = mix_for_target(3.0, 0.7);
        assert_eq!(m.hogs, 2);
        assert!((m.fraction - 0.3).abs() < 1e-9, "fraction {}", m.fraction);
        assert_eq!(
            mix_for_target(0.7, 0.7),
            LoadMix {
                hogs: 0,
                fraction: 0.0
            }
        );
        assert_eq!(
            mix_for_target(1.0, 2.0),
            LoadMix {
                hogs: 0,
                fraction: 0.0
            }
        );
        let m = mix_for_target(10.0, 0.7);
        assert_eq!(m.hogs, 9);
        assert!((m.fraction - 0.3).abs() < 1e-9);
    }

    #[test]
    fn hogs_produce_their_load() {
        let mut w = World::new(7);
        let h = w.add_host("a", 1 << 16);
        spawn_mix(
            &mut w,
            h,
            LoadMix {
                hogs: 3,
                fraction: 0.0,
            },
        );
        w.run_for(Dur::from_secs(300));
        let load = w.host(h).load_avg();
        assert!((load - 3.0).abs() < 0.3, "load {load}");
    }

    #[test]
    fn duty_generator_produces_fractional_load() {
        let mut w = World::new(7);
        let h = w.add_host("a", 1 << 16);
        w.spawn(h, ProcConfig::new("d"), DutyLoadGen::new(0.5));
        w.run_for(Dur::from_secs(300));
        let load = w.host(h).load_avg();
        assert!((load - 0.5).abs() < 0.2, "load {load}");
        // And it consumed ~50% CPU.
        let pid = Pid { host: h, local: 0 };
        let cpu = w.host(h).proc_cpu_time(pid).unwrap().as_secs_f64();
        assert!((cpu - 150.0).abs() < 15.0, "cpu {cpu}");
    }

    #[test]
    fn background_daemons_hit_baseline() {
        let mut w = World::new(7);
        let h = w.add_host("a", 1 << 16);
        for _ in 0..7 {
            w.spawn(h, ProcConfig::new("daemon"), BackgroundDaemon { duty: 0.1 });
        }
        w.run_for(Dur::from_secs(300));
        let load = w.host(h).load_avg();
        assert!((0.4..1.4).contains(&load), "baseline load {load}");
    }
}
