//! A DOOM-like game-loop workload — the other third-party application the
//! paper reports instrumenting (Section 9). A fixed-tick render loop whose
//! frame rate is monitored exactly like the video player's, but with no
//! network leg: all faults are local CPU contention.

use qos_instrument::prelude::*;
use qos_manager::messages::{RegisterMsg, ViolationMsg, WireMsg};
use qos_manager::transport::send_ctrl;
use qos_policy::compile::CompiledPolicy;
use qos_sim::prelude::*;

const TAG_TICK: u64 = 1;
const TAG_POLL: u64 = 2;

/// Configuration of the game loop.
#[derive(Debug, Clone)]
pub struct GameConfig {
    /// Target frames per second.
    pub target_fps: f64,
    /// CPU cost to simulate + render one frame.
    pub frame_cost: Dur,
    /// Host manager to register and report to.
    pub host_manager: Option<Endpoint>,
    /// Weight for differentiated administrative policies.
    pub weight: f64,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            target_fps: 35.0,
            frame_cost: Dur::from_micros(12_000),
            host_manager: None,
            weight: 1.0,
        }
    }
}

/// The instrumented game process.
pub struct Game {
    cfg: GameConfig,
    sensors: SensorSet,
    coordinator: Coordinator,
    policies: Vec<CompiledPolicy>,
    rendering: bool,
    next_due: SimTime,
    /// Frames rendered.
    pub frames: u64,
    /// Violation reports sent.
    pub reports: u64,
}

impl Game {
    /// A game enforcing the given frame-rate policies.
    pub fn new(cfg: GameConfig, policies: Vec<CompiledPolicy>) -> Self {
        let mut sensors = SensorSet::new();
        sensors.add(AnySensor::Fps(FpsSensor::new("fps_sensor", 1_000_000)));
        Game {
            cfg,
            sensors,
            coordinator: Coordinator::new(String::new()),
            policies,
            rendering: false,
            next_due: SimTime::ZERO,
            frames: 0,
            reports: 0,
        }
    }

    /// The game's coordinator (for experiment inspection).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Current displayed frame rate.
    pub fn current_fps(&self, now_us: u64) -> f64 {
        self.sensors.fps().map_or(0.0, |f| f.current_fps(now_us))
    }

    fn interval(&self) -> Dur {
        Dur::from_secs_f64(1.0 / self.cfg.target_fps)
    }

    fn handle_alarms(&mut self, ctx: &mut Ctx<'_>, alarms: Vec<AlarmEvent>, now_us: u64) {
        let mut triggered = Vec::new();
        for a in &alarms {
            triggered.extend(self.coordinator.on_alarm(a));
        }
        for pix in triggered {
            self.notify(ctx, pix, now_us);
        }
    }

    fn notify(&mut self, ctx: &mut Ctx<'_>, pix: usize, now_us: u64) {
        let Some(report) = self.coordinator.execute_actions(pix, &self.sensors, now_us) else {
            return;
        };
        let Some(hm) = self.cfg.host_manager else {
            return;
        };
        // Bounds for the manager's severity computation.
        let compiled = self.coordinator.policy(pix);
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for c in compiled
            .conditions
            .iter()
            .filter(|c| c.attr == "frame_rate")
        {
            use qos_policy::ast::CmpOp::*;
            match c.op {
                Gt | Ge => lo = lo.max(c.value),
                Lt | Le => hi = hi.min(c.value),
                _ => {}
            }
        }
        self.reports += 1;
        send_ctrl(
            ctx,
            hm,
            201,
            WireMsg::Violation(ViolationMsg {
                pid: ctx.pid(),
                proc_name: "Game".into(),
                policy: report.policy.clone(),
                corr: report.corr,
                readings: report.readings,
                bounds: Some(("frame_rate".into(), lo, hi)),
                upstream: None,
            }),
        );
    }
}

impl ProcessLogic for Game {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        let now_us = ctx.now().as_micros();
        match ev {
            ProcEvent::Start => {
                self.coordinator = Coordinator::new(qos_manager::host::pid_to_string(ctx.pid()));
                for p in self.policies.drain(..) {
                    self.coordinator.load_policy(p);
                }
                self.sensors.configure(self.coordinator.global_conditions());
                if let Some(hm) = self.cfg.host_manager {
                    send_ctrl(
                        ctx,
                        hm,
                        201,
                        WireMsg::Register(RegisterMsg {
                            pid: ctx.pid(),
                            control_port: 201,
                            executable: "Game".into(),
                            application: "Game".into(),
                            role: "player".into(),
                            weight: self.cfg.weight,
                            // One-shot registration: the game does not
                            // heartbeat, so the manager never reaps it.
                            heartbeat: None,
                        }),
                    );
                }
                self.next_due = ctx.now() + self.interval();
                ctx.set_timer(self.interval(), TAG_TICK);
                ctx.set_timer(Dur::from_millis(500), TAG_POLL);
            }
            ProcEvent::Timer(TAG_TICK) if !self.rendering => {
                self.rendering = true;
                ctx.run(self.cfg.frame_cost);
            }
            ProcEvent::Timer(TAG_POLL) => {
                let mut alarms = Vec::new();
                if let Some(f) = self.sensors.fps() {
                    alarms.extend(f.tick(now_us));
                }
                self.handle_alarms(ctx, alarms, now_us);
                for pix in self.coordinator.poll(now_us) {
                    self.notify(ctx, pix, now_us);
                }
                ctx.set_timer(Dur::from_millis(500), TAG_POLL);
            }
            ProcEvent::BurstDone if self.rendering => {
                self.rendering = false;
                self.frames += 1;
                let mut alarms = Vec::new();
                if let Some(f) = self.sensors.fps() {
                    alarms.extend(f.frame_displayed(now_us));
                }
                self.handle_alarms(ctx, alarms, now_us);
                // Next frame: immediately if behind schedule.
                self.next_due += self.interval();
                let delay = self.next_due.since(ctx.now());
                ctx.set_timer(delay, TAG_TICK);
            }
            _ => {}
        }
    }
}

/// A `frame_rate = target(+tol)(-tol)` policy for the game.
pub fn game_fps_policy(target: f64, tol: f64) -> CompiledPolicy {
    let src = format!(
        "oblig GameFrameRate {{ \
           subject (...)/Game/qosl_coordinator \
           target fps_sensor, (...)QoSHostManager \
           on not (frame_rate = {target}(+{tol})(-{tol})) \
           do fps_sensor->read(out frame_rate); \
              (...)QoSHostManager->notify(frame_rate); }}"
    );
    qos_policy::compile::compile(&qos_policy::parser::parse_policy(&src).expect("static"))
        .expect("static compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::CpuHog;

    #[test]
    fn idle_game_hits_target_fps() {
        let mut w = World::new(3);
        let h = w.add_host("game", 1 << 16);
        let g = w.spawn(
            h,
            ProcConfig::new("Game"),
            Game::new(GameConfig::default(), vec![game_fps_policy(35.0, 10.0)]),
        );
        w.run_for(Dur::from_secs(20));
        let game: &Game = w.logic(g).unwrap();
        let fps = game.frames as f64 / 20.0;
        assert!((fps - 35.0).abs() < 2.0, "fps {fps}");
        assert_eq!(game.coordinator().violation_count(0), 0);
    }

    #[test]
    fn loaded_game_detects_violation() {
        let mut w = World::new(3);
        let h = w.add_host("game", 1 << 16);
        // 28 ms of CPU per 28.6 ms frame: ~98% demand. Any scheduling
        // delay puts the loop behind, it stops sleeping, loses its
        // interactivity boost and collapses — the Figure 3 regime.
        let g = w.spawn(
            h,
            ProcConfig::new("Game"),
            Game::new(
                GameConfig {
                    frame_cost: Dur::from_millis(28),
                    ..GameConfig::default()
                },
                vec![game_fps_policy(35.0, 5.0)],
            ),
        );
        for _ in 0..8 {
            w.spawn(h, ProcConfig::new("hog"), CpuHog::new());
        }
        w.run_for(Dur::from_secs(30));
        let game: &Game = w.logic(g).unwrap();
        let fps = game.frames as f64 / 30.0;
        assert!(fps < 30.0, "fps {fps}");
        assert!(game.coordinator().violation_count(0) >= 1);
    }
}
