//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the statistical benchmark harness is replaced by a
//! minimal wall-clock one with the same call surface
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `Bencher::iter`). Each benchmark runs a calibrated
//! number of iterations and prints mean time per iteration; there is no
//! statistical analysis, outlier rejection, or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver; collects and prints simple timings.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// No-op kept for CLI compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        run_one(&name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Run a benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&name, self.sample_size, self.measurement_time, &mut wrapped);
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build from a function name plus a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, samples: usize, budget: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: time a single iteration, then size the batch so all
    // samples together fit roughly in the measurement budget.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let total_iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let batch = (total_iters / samples as u64).max(1);

    let mut best = Duration::MAX;
    let mut sum = Duration::ZERO;
    let mut n = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / (batch as u32);
        best = best.min(per);
        sum += b.elapsed;
        n += batch;
    }
    let mean = if n > 0 {
        sum / (n as u32)
    } else {
        Duration::ZERO
    };
    println!("bench {name:<50} mean {mean:>12.3?}  best {best:>12.3?}  ({n} iters)");
}

/// Collect benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
