//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external synchronisation crate is replaced by a thin
//! wrapper over `std::sync` exposing the same (non-poisoning) call
//! surface the workspace uses: `Mutex::lock`, `RwLock::read`,
//! `RwLock::write`. Poisoning is deliberately swallowed — like
//! `parking_lot`, a panicked writer does not make the lock unusable.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in an rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
