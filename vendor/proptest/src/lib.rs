//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the property-testing framework is replaced by a small
//! deterministic re-implementation of the surface the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   `arg in strategy` and `arg: Type` bindings;
//! * [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`];
//! * range strategies for integers and floats, tuple strategies,
//!   `prop_map`, [`collection::vec`], char-class string "regexes"
//!   (`"[a-z][a-z0-9_]{0,9}"`), and [`bool::ANY`].
//!
//! Differences from real proptest: sampling is derived from a fixed
//! per-test seed (fully deterministic run to run — there is no
//! persistence file), and failing cases are reported but **not
//! shrunk**. The generated values for a failing case are printed on
//! panic, which is what a reproduction needs from CI.

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    /// Splitmix64 generator: tiny, seedable, good enough for test-case
    /// generation (the simulator has its own xoshiro for modelling).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one named test case index; stable across runs.
        pub fn for_case(test: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Number of cases to run per property (no other knobs).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Cases sampled per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Prints the generated values of the current case if the test body
    /// panics (poor man's substitute for shrinking: at least the inputs
    /// that failed are visible).
    pub struct CaseReporter {
        header: String,
        values: Vec<String>,
        armed: bool,
    }

    impl CaseReporter {
        /// Reporter for one (test, case) pair.
        pub fn new(test: &str, case: u32) -> Self {
            CaseReporter {
                header: format!("{test} case #{case}"),
                values: Vec::new(),
                armed: true,
            }
        }

        /// Record one generated binding.
        pub fn record<T: std::fmt::Debug>(&mut self, name: &str, value: &T) {
            self.values.push(format!("  {name} = {value:?}"));
        }

        /// The case passed; do not report on drop.
        pub fn ok(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!("proptest failure in {}:", self.header);
                for v in &self.values {
                    eprintln!("{v}");
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + rng.below(span as u128) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    (lo as i128 + rng.below(span as u128) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn gen(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$ix:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.gen(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&'static str` char-class patterns: a sequence of `[class]` or
    /// literal-char atoms, each optionally followed by `{m}` / `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn gen(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // Atom: a char class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid char range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Quantifier: {m} or {m,n}; default exactly one.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("quantifier min"),
                        b.parse().expect("quantifier max"),
                    ),
                    None => {
                        let n: usize = body.parse().expect("quantifier");
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let n = lo + rng.below((hi - lo + 1) as u128) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u128) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vectors of `elem` with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + rng.below(span as u128) as usize;
            (0..n).map(|_| self.elem.gen(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// The any-bool strategy (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn gen(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    //! `arg: Type` bindings in [`crate::proptest!`] use this.

    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define deterministic property tests; see crate docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let mut __reporter =
                        $crate::test_runner::CaseReporter::new(stringify!($name), __case);
                    $crate::__prop_bind!(__rng, __reporter; $($args)*);
                    { $body }
                    __reporter.ok();
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident, $rep:ident;) => {};
    ($rng:ident, $rep:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::gen(&($strat), &mut $rng);
        $rep.record(stringify!($name), &$name);
    };
    ($rng:ident, $rep:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::gen(&($strat), &mut $rng);
        $rep.record(stringify!($name), &$name);
        $crate::__prop_bind!($rng, $rep; $($rest)*);
    };
    ($rng:ident, $rep:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $rep.record(stringify!($name), &$name);
    };
    ($rng:ident, $rep:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $rep.record(stringify!($name), &$name);
        $crate::__prop_bind!($rng, $rep; $($rest)*);
    };
}

/// `assert!` that also reports the generated case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that also reports the generated case on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that also reports the generated case on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.25..0.75f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn arbitrary_binding_and_tuples(seed: u64, pair in (0u16..4, 1usize..9)) {
            let _ = seed;
            prop_assert!(pair.0 < 4);
            prop_assert!((1..9).contains(&pair.1));
        }

        #[test]
        fn vec_and_pattern_strategies(
            xs in crate::collection::vec(0u32..10, 2..6),
            s in "[a-z][a-z0-9_]{0,9}",
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(!s.is_empty() && s.len() <= 10);
            prop_assert!(s.chars().next().expect("nonempty").is_ascii_lowercase());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honoured(b in crate::bool::ANY) {
            let _ = b;
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let sample = |case| {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            ("[a-f]{8}".gen(&mut rng), (0u64..1000).gen(&mut rng))
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(3), sample(4), "different cases should differ");
    }
}
