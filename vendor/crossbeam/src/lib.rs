//! Offline stand-in for the `crossbeam` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external crate is replaced by a thin wrapper over std
//! exposing the call surface the workspace uses:
//!
//! * [`channel`] — `unbounded`/`bounded` MPSC channels with cloneable
//!   senders (`std::sync::mpsc` underneath);
//! * [`thread`] — `scope`/`spawn` scoped threads
//!   (`std::thread::scope` underneath; the spawned closure receives the
//!   scope as its argument, as crossbeam's does).

/// Multi-producer single-consumer channels (crossbeam-channel subset).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel; cloneable.
    pub struct Sender<T>(Flavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Send without blocking; fails if the channel is full or closed.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                Flavor::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// The channel is closed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// `try_send` failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// All senders disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// `recv_timeout` failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the timeout.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    /// `try_recv` failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders dropped.
        Disconnected,
    }
}

/// Scoped threads (crossbeam-utils subset over `std::thread::scope`).
pub mod thread {
    use std::any::Any;

    /// A scope handle; spawned closures receive a reference to it, as
    /// with crossbeam's scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before
    /// this returns. Unlike crossbeam, a panicking child propagates its
    /// panic here instead of surfacing through the `Err` arm — callers
    /// treating `Err` as fatal behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TrySendError};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn unbounded_roundtrip_with_cloned_sender() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
    }

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }
}
