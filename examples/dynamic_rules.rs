//! Dynamic rule distribution (Sections 6 and 9): the rules driving a QoS
//! Host Manager are data, changeable while the system runs — no
//! recompilation, no restart.
//!
//! A running host manager receives a `RuleUpdateMsg` that removes the
//! escalation rule and installs a custom variant; the change takes effect
//! on the very next violation.
//!
//! Run with: `cargo run --release -p qos-core --example dynamic_rules`

use qos_core::prelude::*;

struct RuleInjector {
    hm: Endpoint,
    update: Option<RuleUpdateMsg>,
}

impl ProcessLogic for RuleInjector {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => ctx.set_timer(Dur::from_secs(30), 0),
            ProcEvent::Timer(_) => {
                if let Some(update) = self.update.take() {
                    println!(
                        "*** t={:.0}s: distributing rule update ***",
                        ctx.now().as_secs_f64()
                    );
                    send_ctrl(ctx, self.hm, 99, WireMsg::RuleUpdate(update));
                }
            }
            _ => {}
        }
    }
}

fn main() {
    let cfg = TestbedConfig {
        seed: 11,
        managed: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    let hm_pid = tb.client_hm.expect("managed testbed");

    // At t=30s, swap the local-CPU-starvation rule for a version that
    // also records an audit fact; remove the memory rule entirely.
    let update = RuleUpdateMsg {
        add: Some(
            r#"
            (defrule local-cpu-starvation
              (declare (salience 10))
              (violation (pid ?p) (fps ?f) (lo ?lo) (buffer ?b) (weight ?w))
              (threshold (name buffer-cutoff) (value ?bt))
              (test (< ?f ?lo))
              (test (> ?b ?bt))
              =>
              (assert (audit (pid ?p) (fps ?f)))
              (call adjust-cpu ?p ?f ?lo 1)
              (retract 0))
            "#
            .to_string(),
        ),
        remove: vec!["memory-shortfall".to_string()],
    };
    tb.world.spawn(
        tb.client_host,
        ProcConfig::new("rule-injector"),
        RuleInjector {
            hm: Endpoint::new(tb.client_host, HOST_MANAGER_PORT),
            update: Some(update),
        },
    );

    {
        let hm: &QosHostManager = tb.world.logic(hm_pid).expect("host manager");
        println!("rules before update: {:?}", hm.rule_names());
    }

    // Load arrives after the update so the new rule set handles it.
    tb.world.run_for(Dur::from_secs(35));
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 5,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(45));

    let hm: &QosHostManager = tb.world.logic(hm_pid).expect("host manager");
    println!("rules after update:  {:?}", hm.rule_names());
    assert!(!hm.rule_names().iter().any(|n| n == "memory-shortfall"));
    println!(
        "rule updates applied: {}; violations handled: {}; boosts issued: {}",
        hm.stats.rule_updates, hm.stats.violations, hm.stats.cpu_boosts
    );
    // The swapped rule's audit trail proves the new version is live.
    let audits = hm_audit_count(hm);
    println!("audit facts recorded by the NEW rule version: {audits}");
    assert!(audits > 0, "the updated rule must have fired");

    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(20));
    println!(
        "service under the updated rule set: {:.1} fps",
        (tb.displayed(0) - d0) as f64 / 20.0
    );
}

fn hm_audit_count(hm: &QosHostManager) -> usize {
    hm.facts_of("audit")
}
