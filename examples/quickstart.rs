//! Quickstart: the complete system in ~40 lines.
//!
//! Builds the standard managed testbed — a video server streaming to an
//! instrumented client with the paper's Example 1 policy (25 ± 2 fps),
//! QoS host managers on both hosts — drops a pile of CPU hogs onto the
//! client host, and shows the QoS Host Manager pulling the client back
//! into specification.
//!
//! Run with: `cargo run --release -p qos-core --example quickstart`

use qos_core::prelude::*;

fn main() {
    // A managed testbed: client host + server host + management host,
    // policies distributed from the repository through the Policy Agent.
    // Telemetry rides along so the violation lifecycles the manager
    // resolves are visible at the end.
    let telemetry = Telemetry::enabled();
    let cfg = TestbedConfig {
        seed: 42,
        managed: true,
        telemetry: telemetry.clone(),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);

    println!(
        "policy under enforcement:\n{}\n",
        EXAMPLE1_SOURCE.replace("} ", "}\n")
    );

    let mut phases = Table::new(&["phase", "fps", "note"]);

    // Healthy playback.
    tb.world.run_for(Dur::from_secs(20));
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(10));
    phases.row(&[
        "healthy".into(),
        f((tb.displayed(0) - d0) as f64 / 10.0, 1),
        "policy target 25 +/- 2".into(),
    ]);

    // Contention arrives: five CPU-bound competitors.
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 5,
            fraction: 0.0,
        },
    );
    let d1 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(10));
    phases.row(&[
        "loaded".into(),
        f((tb.displayed(0) - d1) as f64 / 10.0, 1),
        "while the manager reacts".into(),
    ]);

    // The feedback loop settles.
    tb.world.run_for(Dur::from_secs(20));
    let d2 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(30));
    let recovered = (tb.displayed(0) - d2) as f64 / 30.0;
    phases.row(&["recovered".into(), f(recovered, 1), "loop settled".into()]);
    println!("{}", phases.render());

    let hm = tb.client_hm_stats().expect("managed testbed");
    let boost = tb
        .world
        .host(tb.client_host)
        .proc_upri(tb.clients[0])
        .unwrap_or(0);
    println!(
        "\nQoS Host Manager: {} violation reports handled, {} CPU boosts issued; \
         client now runs at priority boost +{boost}",
        hm.violations, hm.cpu_boosts
    );
    assert!(recovered > 23.0, "the QoS floor must hold");

    // What the management plane did, stage by stage.
    println!("\n{}", telemetry_summary(&telemetry));
}
