//! The policy administration workflow (Sections 6 and 7): an
//! administrator defines the information model, adds policies through the
//! management application (which runs the integrity checks before
//! anything enters the repository), browses them, scopes them by user
//! role, and exports the whole repository as LDIF.
//!
//! Run with: `cargo run --release -p qos-core --example policy_admin`

use qos_core::policy::model::video_example_model;
use qos_core::prelude::*;
use qos_core::repository::prelude::*;

fn main() {
    // 1. The information model: sensors, executables, applications.
    let (model, _, _) = video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).expect("fresh repository");
    println!("information model stored:");
    for s in model.sensors() {
        println!("  sensor {:14} collects {:?}", s.name, s.attributes);
    }

    // 2. Add a valid policy through the management application.
    let app = ManagementApp;
    app.add_policy(
        &mut repo,
        &StoredPolicy {
            name: "NotifyQoSViolation".into(),
            application: "VideoPlayback".into(),
            executable: "VideoApplication".into(),
            role: "*".into(),
            source: EXAMPLE1_SOURCE.into(),
            enabled: true,
        },
    )
    .expect("the paper's Example 1 policy is valid");
    println!("\nadded policy 'NotifyQoSViolation' (Example 1) for all roles");

    // A lecturer-specific variant with a stricter requirement.
    app.add_policy(
        &mut repo,
        &StoredPolicy {
            name: "LecturerQoS".into(),
            application: "VideoPlayback".into(),
            executable: "VideoApplication".into(),
            role: "lecturer".into(),
            source: role_policy_source("LecturerQoS", 28.0),
            enabled: true,
        },
    )
    .expect("valid role-scoped policy");
    println!("added policy 'LecturerQoS' scoped to role 'lecturer'");

    // 3. Integrity checking refuses a policy over an unmonitored
    // attribute (Section 7's check).
    let bad = StoredPolicy {
        name: "Bogus".into(),
        application: "VideoPlayback".into(),
        executable: "VideoApplication".into(),
        role: "*".into(),
        source: "oblig Bogus { subject s on not (colour_depth > 8) \
                 do fps_sensor->read(out frame_rate); }"
            .into(),
        enabled: true,
    };
    match app.add_policy(&mut repo, &bad) {
        Err(e) => println!("\nrejected policy 'Bogus': {e}"),
        Ok(()) => unreachable!("integrity check must refuse it"),
    }

    // 4. Browse.
    println!("\nrepository contents:");
    for p in app.list_policies(&repo) {
        println!(
            "  {:20} app={:14} exec={:17} role={:9} enabled={}",
            p.name, p.application, p.executable, p.role, p.enabled
        );
    }

    // 5. Role-based resolution: what would each user's session receive?
    let mut agent = PolicyAgent::new();
    for role in ["student", "lecturer"] {
        let res = agent.register(
            &repo,
            &Registration {
                process: format!("session-{role}"),
                executable: "VideoApplication".into(),
                application: "VideoPlayback".into(),
                role: role.into(),
            },
        );
        let names: Vec<&str> = res.policies.iter().map(|p| p.name.as_str()).collect();
        println!(
            "\nrole '{role}' receives {} policies: {names:?}",
            names.len()
        );
    }

    // 6. LDIF export — the prototype's upload format.
    let ldif = app.export_ldif(&repo);
    println!("\nLDIF export ({} bytes); first entries:", ldif.len());
    for line in ldif.lines().take(12) {
        println!("  {line}");
    }
}
