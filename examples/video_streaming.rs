//! Distributed fault localization: the Section 5.3 / Example 5 story,
//! end to end.
//!
//! A video client streams from a server across a switched network, with
//! QoS host managers on both hosts and a QoS Domain Manager overseeing
//! the domain. Mid-run, cross traffic congests the data-path switch. The
//! client's buffer-length sensor shows an *empty* socket buffer (frames
//! are not arriving — the client is keeping up), so the host manager
//! escalates instead of boosting locally; the domain manager queries the
//! server-side host manager, finds the server healthy, concludes the
//! network is at fault by elimination, and reroutes traffic onto the
//! backup path.
//!
//! Run with: `cargo run --release -p qos-core --example video_streaming`

use qos_core::prelude::*;

fn fps_over(tb: &mut Testbed, secs: u64) -> f64 {
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(secs));
    (tb.displayed(0) - d0) as f64 / secs as f64
}

fn main() {
    let cfg = TestbedConfig {
        seed: 7,
        managed: true,
        domain: true, // deploy the QoS Domain Manager
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);

    tb.world.run_for(Dur::from_secs(10));
    println!("healthy playback:      {:.1} fps", fps_over(&mut tb, 20));

    // Fault injection: heavy cross traffic on the data-path switch.
    println!("\n*** injecting 97% cross-traffic load on the data switch ***\n");
    let hop = tb.primary_hop;
    tb.world.net_mut().set_bg_util(hop, 0.97);

    println!("during congestion:     {:.1} fps", fps_over(&mut tb, 15));
    println!("after adaptation:      {:.1} fps", fps_over(&mut tb, 30));

    let hm = tb.client_hm_stats().expect("managed testbed");
    println!("\ndiagnosis trail:");
    println!(
        "  client host manager escalated {} alert(s) to the domain manager",
        hm.domain_alerts
    );
    println!(
        "  (local CPU boosts issued: {} — correctly none)",
        hm.cpu_boosts
    );
    for action in tb.domain_actions() {
        match action {
            DomainAction::Reroute { a, b } => {
                println!("  domain manager: network fault between h{} and h{} -> rerouted to backup path", a.0, b.0)
            }
            DomainAction::BoostServer { pid } => {
                println!("  domain manager: server {pid} starved -> boosted")
            }
            DomainAction::BoostServerMemory { pid } => {
                println!("  domain manager: server {pid} thrashing -> resident set grown")
            }
        }
    }
    let dropped = tb.world.net().hop_stats(hop).dropped;
    println!("  packets dropped at the congested switch: {dropped}");
    assert!(tb
        .domain_actions()
        .iter()
        .any(|a| matches!(a, DomainAction::Reroute { .. })));
}
