//! Interconnecting QoS Domain Managers (Section 9's open question, made
//! concrete): two administrative domains, each with its own domain
//! manager; a video stream crosses the boundary; a fault on the far side
//! must be located by the *peer* domain.
//!
//! Nothing here is hand-wired: both host managers find their domain
//! managers through the discovery plane, and the domain managers learn
//! each other from discovery route pushes — domain A and domain B are
//! leaves under a root manager, so A's alert about a host it does not
//! cover climbs to the root and descends to B along discovered routes.
//!
//! Domain A owns the client host; domain B owns the server host. When the
//! client's buffer-empty violation escalates, A discovers the stream's
//! upstream is not under its management and forwards the alert upward; B
//! queries its own host manager, diagnoses the starved server and
//! boosts it.
//!
//! Run with: `cargo run --release -p qos-core --example federated_domains`

use std::collections::HashMap;

use qos_core::prelude::*;
use qos_core::sim::World;

fn main() {
    let mut w = World::new(2001);
    let ch = w.add_host("client", 1 << 16);
    let sh = w.add_host("server", 1 << 16);
    let ma = w.add_host("mgmt-a", 1 << 16);
    let mb = w.add_host("mgmt-b", 1 << 16);
    let mr = w.add_host("mgmt-root", 1 << 16);
    let data = w.net_mut().add_hop(
        "data",
        10_000_000.0,
        Dur::from_millis(1),
        Dur::from_millis(500),
    );
    let ctrl = w
        .net_mut()
        .add_hop("ctrl", 1_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
    w.net_mut().set_route_symmetric(ch, sh, vec![data]);
    let mgmt_pairs = [
        (ch, ma),
        (sh, mb),
        (ma, mb),
        (ch, mb),
        (sh, ma),
        (ch, mr),
        (sh, mr),
        (ma, mr),
        (mb, mr),
    ];
    for (a, b) in mgmt_pairs {
        w.net_mut().set_route_symmetric(a, b, vec![ctrl]);
    }

    let mgr = SchedClass::RealTime {
        rtpri: 50,
        budget: None,
    };

    // The discovery plane: client host pinned to domain A, server host
    // to domain B; both domains are leaves under the root d0.
    let disc_ep = Endpoint::new(mr, DISCOVERY_PORT);
    let mut disc = DiscoveryServer::new(DISCOVERY_LEASE);
    disc.core.pin(ch, DomainId(1));
    disc.core.pin(sh, DomainId(2));
    w.spawn(
        mr,
        ProcConfig::new("DiscoveryServer")
            .class(mgr)
            .port(DISCOVERY_PORT, 1 << 20),
        disc,
    );
    w.spawn(
        mr,
        ProcConfig::new("QoSDomainManager-Root")
            .class(mgr)
            .port(DOMAIN_MANAGER_PORT, 1 << 20),
        QosDomainManager::new(HashMap::new()).with_federation(DomainId(0), None, disc_ep),
    );

    // Host managers join their domains through discovery — no endpoint
    // is wired in; domain managers start with *empty* registries and
    // learn their shards from route pushes.
    w.spawn(
        ch,
        ProcConfig::new("QoSHostManager")
            .class(mgr)
            .port(HOST_MANAGER_PORT, 1 << 20),
        QosHostManager::new(None).with_discovery(disc_ep, 0xA),
    );
    w.spawn(
        sh,
        ProcConfig::new("QoSHostManager")
            .class(mgr)
            .port(HOST_MANAGER_PORT, 1 << 20),
        QosHostManager::new(None).with_discovery(disc_ep, 0xB),
    );
    let dm_a = w.spawn(
        ma,
        ProcConfig::new("QoSDomainManager-A")
            .class(mgr)
            .port(DOMAIN_MANAGER_PORT, 1 << 20),
        QosDomainManager::new(HashMap::new()).with_federation(
            DomainId(1),
            Some(DomainId(0)),
            disc_ep,
        ),
    );
    let dm_b = w.spawn(
        mb,
        ProcConfig::new("QoSDomainManager-B")
            .class(mgr)
            .port(DOMAIN_MANAGER_PORT, 1 << 20),
        QosDomainManager::new(HashMap::new()).with_federation(
            DomainId(2),
            Some(DomainId(0)),
            disc_ep,
        ),
    );

    let server_pid = Pid { host: sh, local: 1 };
    let client = w.spawn(
        ch,
        ProcConfig::new("VideoApplication").port(VIDEO_PORT, 1 << 16),
        VideoClient::new(
            VideoClientConfig {
                host_manager: Some(Endpoint::new(ch, HOST_MANAGER_PORT)),
                upstream: Some(Upstream {
                    host: sh,
                    pid: server_pid,
                }),
                ..VideoClientConfig::default()
            },
            vec![example1_policy()],
        ),
    );
    let server = w.spawn(
        sh,
        ProcConfig::new("VideoServer"),
        VideoServer::new(VideoServerConfig {
            client: Endpoint::new(ch, VIDEO_PORT),
            ..VideoServerConfig::default()
        }),
    );

    let fps_over = |w: &mut World, secs: u64| {
        let d0 = w.logic::<VideoClient>(client).unwrap().stats.displayed;
        w.run_for(Dur::from_secs(secs));
        (w.logic::<VideoClient>(client).unwrap().stats.displayed - d0) as f64 / secs as f64
    };

    w.run_for(Dur::from_secs(10));
    println!(
        "healthy cross-domain stream: {:.1} fps",
        fps_over(&mut w, 20)
    );

    println!("\n*** fault injected on the server host (domain B) ***\n");
    for _ in 0..30 {
        w.spawn(
            sh,
            ProcConfig::new("storm"),
            DutyLoadGen {
                duty: 0.25,
                period: Dur::from_millis(60),
            },
        );
    }
    w.logic_mut::<VideoServer>(server)
        .unwrap()
        .set_cpu_per_frame(Dur::from_millis(25));

    println!(
        "during the fault:            {:.1} fps",
        fps_over(&mut w, 20)
    );
    println!(
        "after cross-domain recovery: {:.1} fps",
        fps_over(&mut w, 40)
    );

    let a: &QosDomainManager = w.logic(dm_a).unwrap();
    let b: &QosDomainManager = w.logic(dm_b).unwrap();
    println!(
        "\ndomain A: {} alerts received, {} forwarded toward the root, {} own actions",
        a.stats.alerts,
        a.stats.forwarded,
        a.stats.actions.len()
    );
    println!(
        "domain B: {} alerts received, actions: {:?}",
        b.stats.alerts, b.stats.actions
    );
    assert!(a.stats.forwarded >= 1);
    assert!(b
        .stats
        .actions
        .iter()
        .any(|x| matches!(x, DomainAction::BoostServer { .. })));
}
