//! Administrative requirements under contention (Sections 2 and 3.1).
//!
//! Three video sessions on one host together demand more CPU than exists.
//! The administrative constraints decide who suffers:
//!
//! * **fair share** — every application degrades equally;
//! * **differentiated** — each user role carries its own QoS requirement
//!   (the Section 6 `UserRole` mechanism): the lecturer's session gets a
//!   22 fps policy, the assistant's 14 fps, the student's 8 fps, and the
//!   managers hold each near its own target using real-time CPU units.
//!
//! Run with: `cargo run --release -p qos-core --example multi_app_contention`

use qos_core::prelude::*;

fn main() {
    println!("three 30-fps video sessions, one CPU (aggregate demand ~180%)\n");

    let fair = contention(2026, AdminRules::FairShare);
    let diff = contention(2026, AdminRules::Differentiated);

    let roles = ["student", "assistant", "lecturer"];
    let targets = ["25 +/- 2", "25 +/- 2", "25 +/- 2"];
    let dtargets = ["8 +/- 2", "14 +/- 2", "22 +/- 2"];

    println!("fair share (all sessions run the same 25 +/- 2 policy):");
    for r in &fair {
        println!(
            "  {:9}  target {:9}  ->  {:5.1} fps",
            roles[r.client], targets[r.client], r.fps
        );
    }

    println!("\ndifferentiated (role-scoped policies from the repository):");
    for r in &diff {
        println!(
            "  {:9}  target {:9}  ->  {:5.1} fps",
            roles[r.client], dtargets[r.client], r.fps
        );
    }

    let spread = |rows: &[ContentionRow]| {
        let max = rows.iter().map(|r| r.fps).fold(f64::MIN, f64::max);
        let min = rows.iter().map(|r| r.fps).fold(f64::MAX, f64::min);
        max - min
    };
    println!(
        "\nfair share degrades everyone equally (spread {:.1} fps); \
         differentiation orders service by role (spread {:.1} fps)",
        spread(&fair),
        spread(&diff)
    );
    assert!(diff[2].fps > diff[0].fps, "lecturer must beat student");
}
