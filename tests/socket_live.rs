//! Live mode across real OS process boundaries: an instrumented process
//! in a *child process* talks to a `LiveHostManager` in this process over
//! a Unix-domain socket, reproducing the Section 7 overhead shape
//! (initialisation + registration is orders of magnitude more expensive
//! than a steady-state instrumentation pass) and surviving manager death
//! and restart via the transport's reconnect-with-greeting machinery.
//!
//! The child is this same test binary re-executed with `--exact
//! child_entry` and `SOCKQOS_CHILD` set; it prints `CHILD key value`
//! lines that the parent parses.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use qos_core::prelude::*;
use qos_core::repository::agent::Registration;

fn temp_sock(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qos-sl-{}-{name}.sock", std::process::id()))
}

fn child_command(mode: &str, addr: &std::path::Path) -> Command {
    let mut cmd = Command::new(std::env::current_exe().expect("test binary path"));
    cmd.args(["child_entry", "--exact", "--nocapture"])
        .env("SOCKQOS_CHILD", mode)
        .env("SOCKQOS_ADDR", addr)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// Parse `CHILD key value` lines out of the child's (libtest-framed)
/// stdout. libtest prints `test child_entry ... ` without a trailing
/// newline, so the first marker can share its line with that prefix —
/// search for the marker anywhere in the line, not just at the start.
fn child_values(stdout: &[u8]) -> std::collections::HashMap<String, f64> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter_map(|l| {
            let rest = &l[l.find("CHILD ")? + "CHILD ".len()..];
            let (k, v) = rest.split_once(' ')?;
            Some((k.to_string(), v.trim().parse().ok()?))
        })
        .collect()
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// Child-process entry point. A no-op under the normal test run; the
/// real work happens only when the parent re-executes the binary with
/// `SOCKQOS_CHILD` set.
#[test]
fn child_entry() {
    let Ok(mode) = std::env::var("SOCKQOS_CHILD") else {
        return;
    };
    let addr = SockAddr::Uds(
        std::env::var("SOCKQOS_ADDR")
            .expect("child needs an address")
            .into(),
    );
    let (repo, mut agent) = standard_live_repo();
    match mode.as_str() {
        "overhead" => {
            // E2 shape: full initialisation (agent registration, policy
            // load, sensor config, manager announce) per process.
            let iters = 30u32;
            let t0 = Instant::now();
            let mut procs = Vec::new();
            for i in 0..iters {
                let reg = Registration {
                    process: format!("sock:{i}"),
                    executable: "VideoApplication".into(),
                    application: "VideoPlayback".into(),
                    role: "*".into(),
                };
                let t = SocketTransport::connect_retry(addr.clone(), Duration::from_secs(5))
                    .expect("manager listening");
                procs.push(
                    LiveProcess::start(&reg, &repo, &mut agent, Box::new(t))
                        .expect("manager reachable"),
                );
            }
            let init_us = t0.elapsed().as_micros() as f64 / iters as f64;

            // E3 shape: steady-state instrumentation pass, QoS met.
            let p = procs.last_mut().expect("at least one process");
            let passes = 100_000u64;
            let t0 = Instant::now();
            let mut sent = 0usize;
            for i in 0..passes {
                sent += p.buffer_pass(100 + (i & 0xff));
            }
            let pass_us = t0.elapsed().as_micros() as f64 / passes as f64;
            assert_eq!(sent, 0, "happy path must not notify");

            // A handful of real violations, then a barrier so the parent
            // sees them the moment we exit.
            for k in 0..5 {
                p.report(ViolationReport {
                    policy: "NotifyQoSViolation".into(),
                    process: "sock:last".into(),
                    at_us: k,
                    corr: 0,
                    readings: vec![
                        ("frame_rate".into(), 15.0),
                        ("buffer_size".into(), 50_000.0),
                    ],
                });
            }
            assert!(p.sync(), "manager must ack the barrier over the socket");
            let mut out = std::io::stdout().lock();
            writeln!(out, "CHILD init_us {init_us}").unwrap();
            writeln!(out, "CHILD pass_us {pass_us}").unwrap();
            writeln!(out, "CHILD sent {}", p.reports_sent()).unwrap();
        }
        "reconnect" => {
            let reg = Registration {
                process: "sock:reconnect".into(),
                executable: "VideoApplication".into(),
                application: "VideoPlayback".into(),
                role: "*".into(),
            };
            let t = SocketTransport::connect_retry(addr, Duration::from_secs(5))
                .expect("manager listening");
            let mut p = LiveProcess::start(&reg, &repo, &mut agent, Box::new(t))
                .expect("manager reachable");
            let report = |k: u64| ViolationReport {
                policy: "NotifyQoSViolation".into(),
                process: "sock:reconnect".into(),
                at_us: k,
                corr: 0,
                readings: vec![
                    ("frame_rate".into(), 15.0),
                    ("buffer_size".into(), 50_000.0),
                ],
            };
            p.report(report(0));
            assert!(p.sync(), "first manager acks");
            println!("CHILD phase1 1");
            // Keep reporting while the parent kills and restarts the
            // manager: some reports drop into the void, then the
            // transport reconnects (replaying the registration greeting)
            // and delivery resumes. Stop once a post-drop sync succeeds.
            let mut recovered = false;
            for k in 1..200u64 {
                p.report(report(k));
                if p.reports_dropped() > 0 && p.sync() {
                    recovered = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            assert!(recovered, "transport must reconnect to the new manager");
            println!("CHILD dropped {}", p.reports_dropped());
            println!("CHILD sent {}", p.reports_sent());
        }
        other => panic!("unknown child mode {other:?}"),
    }
}

#[test]
fn overhead_shape_reproduces_across_os_processes() {
    let path = temp_sock("overhead");
    let _ = std::fs::remove_file(&path);
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .spawn()
        .expect("bind UDS listener");

    let out = child_command("overhead", &path)
        .output()
        .expect("run child process");
    assert!(
        out.status.success(),
        "child failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let vals = child_values(&out.stdout);
    let init_us = vals["init_us"];
    let pass_us = vals["pass_us"];
    let sent = vals["sent"] as u64;

    // The child synced before exiting, so the manager has seen
    // everything; registrations may still need the last conn thread to
    // drain, hence the short poll.
    assert!(
        wait_until(Duration::from_secs(5), || {
            mgr.stats.registrations.load(Ordering::Relaxed) == 30
        }),
        "all 30 child processes registered over the socket: {}",
        mgr.stats.registrations.load(Ordering::Relaxed)
    );
    assert_eq!(mgr.stats.violations.load(Ordering::Relaxed), sent);
    assert!(sent >= 5, "child delivered its violations: {sent}");
    assert_eq!(mgr.stats.decode_errors.load(Ordering::Relaxed), 0);

    let mut t = Table::new(&[
        "measurement",
        "paper (UltraSparc, 2000)",
        "measured (2 OS processes, UDS)",
    ]);
    t.row(&[
        "init + registration".into(),
        "~400 us".into(),
        format!("{init_us:.1} us"),
    ]);
    t.row(&[
        "instrumentation pass (QoS met)".into(),
        "~11 us".into(),
        format!("{pass_us:.3} us"),
    ]);
    println!("Section 7 overhead shape, manager and process in separate OS processes");
    println!("{}", t.render());
    // The paper's qualitative shape: initialisation dwarfs a steady-state
    // pass (~36x there). Socket registration adds a round trip, so only
    // the ordering is asserted, not the ratio.
    assert!(
        init_us > pass_us * 5.0,
        "init ({init_us:.1} us) must dominate a pass ({pass_us:.3} us)"
    );
    mgr.shutdown();
}

#[test]
fn manager_death_and_restart_is_survived_across_os_processes() {
    let path = temp_sock("reconnect");
    let _ = std::fs::remove_file(&path);
    let mgr1 = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .spawn()
        .expect("bind UDS listener");

    let child = child_command("reconnect", &path)
        .spawn()
        .expect("spawn child process");

    // Phase 1: the child registered and delivered through manager #1.
    assert!(
        wait_until(Duration::from_secs(10), || {
            mgr1.stats.violations.load(Ordering::Relaxed) >= 1
        }),
        "first manager receives the child's violation"
    );
    assert_eq!(mgr1.stats.registrations.load(Ordering::Relaxed), 1);

    // Kill the manager process-side: listener, conn threads and manager
    // thread all go away; the UDS file is removed.
    mgr1.shutdown();
    std::thread::sleep(Duration::from_millis(300));

    // Restart on the same address. The child's transport reconnects with
    // backoff and replays its registration greeting, so the fresh
    // manager re-learns the process without any help.
    let mgr2 = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .spawn()
        .expect("rebind UDS listener");
    assert!(
        wait_until(Duration::from_secs(20), || {
            mgr2.stats.registrations.load(Ordering::Relaxed) >= 1
                && mgr2.stats.violations.load(Ordering::Relaxed) >= 1
        }),
        "restarted manager re-learns the process from the replayed greeting \
         (reg {} viol {})",
        mgr2.stats.registrations.load(Ordering::Relaxed),
        mgr2.stats.violations.load(Ordering::Relaxed)
    );

    let out = child.wait_with_output().expect("child exit");
    assert!(
        out.status.success(),
        "child failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let vals = child_values(&out.stdout);
    assert!(
        vals["dropped"] >= 1.0,
        "the outage must have cost something"
    );
    assert!(vals["sent"] >= 2.0, "delivery resumed after reconnect");
    mgr2.shutdown();
    let _ = std::fs::remove_file(&path);
}
