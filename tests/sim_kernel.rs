//! Edge-case tests for the simulation kernel through its public API:
//! scheduling corners, socket saturation, syscall semantics, rerouting,
//! and determinism under composition.

use qos_core::sim::prelude::*;

/// A process that runs one configurable burst per timer tick.
struct Periodic {
    period: Dur,
    work: Dur,
    completions: u64,
}

impl ProcessLogic for Periodic {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start | ProcEvent::Timer(_) => ctx.run(self.work),
            ProcEvent::BurstDone => {
                self.completions += 1;
                ctx.set_timer(self.period, 0);
            }
            _ => {}
        }
    }
}

struct Hog;
impl ProcessLogic for Hog {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        if matches!(ev, ProcEvent::Start | ProcEvent::BurstDone) {
            ctx.run(Dur::from_secs(1000));
        }
    }
}

#[test]
fn run_until_advances_time_even_without_events() {
    let mut w = World::new(1);
    let _ = w.add_host("a", 16);
    w.run_until(SimTime::from_micros(5_000_000));
    assert_eq!(w.now(), SimTime::from_micros(5_000_000));
    w.run_for(Dur::from_secs(1));
    assert_eq!(w.now(), SimTime::from_micros(6_000_000));
}

#[test]
fn zero_length_burst_completes_immediately() {
    struct ZeroBurst {
        done: bool,
    }
    impl ProcessLogic for ZeroBurst {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => ctx.run(Dur::ZERO),
                ProcEvent::BurstDone => self.done = true,
                _ => {}
            }
        }
    }
    let mut w = World::new(1);
    let h = w.add_host("a", 16);
    let p = w.spawn(h, ProcConfig::new("z"), ZeroBurst { done: false });
    w.run_for(Dur::from_millis(1));
    assert!(w.logic::<ZeroBurst>(p).unwrap().done);
    assert_eq!(w.host(h).proc_cpu_time(p), Some(Dur::ZERO));
}

#[test]
fn socket_saturation_counts_drops_and_delivery_resumes() {
    struct SlowSink {
        received: u64,
    }
    impl ProcessLogic for SlowSink {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Readable(port) = ev {
                if ctx.recv(port).is_some() {
                    self.received += 1;
                    // 100 ms per message: far slower than arrivals.
                    ctx.run(Dur::from_millis(100));
                }
            }
        }
    }
    struct Blaster {
        dst: Endpoint,
    }
    impl ProcessLogic for Blaster {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start | ProcEvent::Timer(_) => {
                    // 100 messages/s of 1 kB.
                    ctx.send(self.dst, 1, 1_000, 0u8);
                    ctx.set_timer(Dur::from_millis(10), 0);
                }
                _ => {}
            }
        }
    }
    let mut w = World::new(2);
    let a = w.add_host("a", 1 << 10);
    let b = w.add_host("b", 1 << 10);
    let hop = w
        .net_mut()
        .add_hop("lan", 10_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
    w.net_mut().set_route_symmetric(a, b, vec![hop]);
    // Tiny 4 kB buffer: 4 messages.
    let sink = w.spawn(
        b,
        ProcConfig::new("sink").port(9, 4_000),
        SlowSink { received: 0 },
    );
    w.spawn(
        a,
        ProcConfig::new("blaster"),
        Blaster {
            dst: Endpoint::new(b, 9),
        },
    );
    w.run_for(Dur::from_secs(10));
    let received = w.logic::<SlowSink>(sink).unwrap().received;
    let dropped = w.host(b).socket_dropped(9);
    // Sink serves ~10/s; blaster sends 100/s; the rest must be dropped.
    assert!((80..=105).contains(&received), "received {received}");
    assert!(dropped > 800, "dropped {dropped}");
    assert!(received + dropped <= 1_001);
}

#[test]
fn priocntl_on_waiting_process_applies_at_wake() {
    struct Booster {
        target: Pid,
    }
    impl ProcessLogic for Booster {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Start = ev {
                // Target is Waiting (it starts with a long timer).
                ctx.priocntl(self.target, PriocntlCmd::SetUpri(60));
                ctx.exit();
            }
        }
    }
    struct LateStarter {
        completions: u64,
    }
    impl ProcessLogic for LateStarter {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => ctx.set_timer(Dur::from_secs(2), 0),
                ProcEvent::Timer(_) => ctx.run(Dur::from_millis(500)),
                ProcEvent::BurstDone => self.completions += 1,
                _ => {}
            }
        }
    }
    let mut w = World::new(3);
    let h = w.add_host("a", 1 << 10);
    let late = w.spawn(h, ProcConfig::new("late"), LateStarter { completions: 0 });
    for _ in 0..4 {
        w.spawn(h, ProcConfig::new("hog"), Hog);
    }
    w.spawn(h, ProcConfig::new("boost"), Booster { target: late });
    w.run_for(Dur::from_secs(4));
    // With +60 it preempts the hogs on wake and finishes its 500 ms burst
    // promptly (2.0s wake + 0.5s work, small slack for hog quanta).
    let l = w.logic::<LateStarter>(late).unwrap();
    assert_eq!(l.completions, 1);
    let cpu = w.host(h).proc_cpu_time(late).unwrap();
    assert_eq!(cpu, Dur::from_millis(500));
}

#[test]
fn kill_parked_rt_process_is_clean() {
    struct Killer {
        victim: Pid,
    }
    impl ProcessLogic for Killer {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => ctx.set_timer(Dur::from_millis(2_500), 0),
                ProcEvent::Timer(_) => {
                    ctx.kill(self.victim);
                    ctx.exit();
                }
                _ => {}
            }
        }
    }
    let mut w = World::new(4);
    let h = w.add_host("a", 1 << 10);
    // A budgeted RT hog: exhausts 200 ms within each second, then parks.
    let rt = w.spawn(
        h,
        ProcConfig::new("rt").class(SchedClass::RealTime {
            rtpri: 9,
            budget: Some(RtBudget {
                per_window: Dur::from_millis(200),
                window: Dur::from_secs(1),
            }),
        }),
        Hog,
    );
    w.spawn(h, ProcConfig::new("killer"), Killer { victim: rt });
    w.run_for(Dur::from_secs(5));
    assert_eq!(w.host(h).proc_state(rt), Some(ProcState::Dead));
    // It was killed mid-window (2.5 s): two full windows plus part of the
    // third were charged.
    let cpu = w.host(h).proc_cpu_time(rt).unwrap().as_secs_f64();
    assert!((0.4..=0.7).contains(&cpu), "rt cpu {cpu}");
    // The host keeps running fine afterwards.
    let p = w.spawn(
        h,
        ProcConfig::new("p"),
        Periodic {
            period: Dur::from_millis(50),
            work: Dur::from_millis(1),
            completions: 0,
        },
    );
    w.run_for(Dur::from_secs(2));
    assert!(w.logic::<Periodic>(p).unwrap().completions > 30);
}

#[test]
fn reroute_syscall_redirects_traffic() {
    struct Sender {
        dst: Endpoint,
    }
    impl ProcessLogic for Sender {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start | ProcEvent::Timer(_) => {
                    ctx.send(self.dst, 1, 1_000, 0u8);
                    ctx.set_timer(Dur::from_millis(20), 0);
                }
                _ => {}
            }
        }
    }
    struct Rerouter {
        a: HostId,
        b: HostId,
        to: HopId,
    }
    impl ProcessLogic for Rerouter {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => ctx.set_timer(Dur::from_secs(5), 0),
                ProcEvent::Timer(_) => {
                    ctx.reroute(self.a, self.b, vec![self.to]);
                    ctx.exit();
                }
                _ => {}
            }
        }
    }
    struct Sink;
    impl ProcessLogic for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Readable(p) = ev {
                let _ = ctx.recv(p);
            }
        }
    }
    let mut w = World::new(5);
    let a = w.add_host("a", 1 << 10);
    let b = w.add_host("b", 1 << 10);
    let primary = w.net_mut().add_hop(
        "primary",
        1_000_000.0,
        Dur::from_millis(1),
        Dur::from_secs(1),
    );
    let backup = w.net_mut().add_hop(
        "backup",
        1_000_000.0,
        Dur::from_millis(1),
        Dur::from_secs(1),
    );
    w.net_mut().set_route_symmetric(a, b, vec![primary]);
    w.spawn(b, ProcConfig::new("sink").port(9, 1 << 16), Sink);
    w.spawn(
        a,
        ProcConfig::new("send"),
        Sender {
            dst: Endpoint::new(b, 9),
        },
    );
    w.spawn(
        a,
        ProcConfig::new("rerouter"),
        Rerouter { a, b, to: backup },
    );
    w.run_for(Dur::from_secs(10));
    let p = w.net().hop_stats(primary);
    let bk = w.net().hop_stats(backup);
    // ~250 packets at 50/s before the reroute, the rest after.
    assert!((200..300).contains(&(p.delivered as i64)), "primary {p:?}");
    assert!((200..300).contains(&(bk.delivered as i64)), "backup {bk:?}");
    assert_eq!(p.dropped + bk.dropped, 0);
}

#[test]
fn competing_hosts_do_not_interact() {
    // Identical workloads on two hosts in one world behave identically to
    // the same workload alone: hosts are isolated except via the network.
    fn completions(two_hosts: bool) -> u64 {
        let mut w = World::new(6);
        let a = w.add_host("a", 1 << 10);
        let pa = w.spawn(
            a,
            ProcConfig::new("p"),
            Periodic {
                period: Dur::from_millis(40),
                work: Dur::from_millis(10),
                completions: 0,
            },
        );
        w.spawn(a, ProcConfig::new("hog"), Hog);
        if two_hosts {
            let b = w.add_host("b", 1 << 10);
            w.spawn(
                b,
                ProcConfig::new("p"),
                Periodic {
                    period: Dur::from_millis(40),
                    work: Dur::from_millis(10),
                    completions: 0,
                },
            );
            for _ in 0..5 {
                w.spawn(b, ProcConfig::new("hog"), Hog);
            }
        }
        w.run_for(Dur::from_secs(30));
        w.logic::<Periodic>(pa).unwrap().completions
    }
    // Note: not exactly equal (RNG streams fork in creation order), but
    // the second host's heavy load must not slow host a's process.
    let alone = completions(false);
    let shared = completions(true);
    assert!(
        (alone as i64 - shared as i64).abs() <= alone as i64 / 10,
        "host isolation: alone {alone}, shared-world {shared}"
    );
}

#[test]
fn timers_fire_in_order_with_multiple_outstanding() {
    struct MultiTimer {
        fired: Vec<u64>,
    }
    impl ProcessLogic for MultiTimer {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    ctx.set_timer(Dur::from_millis(30), 3);
                    ctx.set_timer(Dur::from_millis(10), 1);
                    ctx.set_timer(Dur::from_millis(20), 2);
                }
                ProcEvent::Timer(tag) => self.fired.push(tag),
                _ => {}
            }
        }
    }
    let mut w = World::new(7);
    let h = w.add_host("a", 16);
    let p = w.spawn(h, ProcConfig::new("t"), MultiTimer { fired: Vec::new() });
    w.run_for(Dur::from_millis(100));
    assert_eq!(w.logic::<MultiTimer>(p).unwrap().fired, vec![1, 2, 3]);
}

#[test]
fn rt_process_unaffected_by_ts_starvation_boosts() {
    // An unbudgeted RT process gets exactly its demand no matter how many
    // TS hogs exist.
    let mut w = World::new(8);
    let h = w.add_host("a", 1 << 10);
    let rt = w.spawn(
        h,
        ProcConfig::new("rt").class(SchedClass::RealTime {
            rtpri: 20,
            budget: None,
        }),
        Periodic {
            period: Dur::from_millis(20),
            work: Dur::from_millis(10),
            completions: 0,
        },
    );
    for _ in 0..10 {
        w.spawn(h, ProcConfig::new("hog"), Hog);
    }
    w.run_for(Dur::from_secs(20));
    let c = w.logic::<Periodic>(rt).unwrap().completions;
    // One completion per ~30 ms cycle.
    assert!((600..=700).contains(&c), "completions {c}");
}

#[test]
fn trace_records_process_logs_when_enabled() {
    struct Chatty;
    impl ProcessLogic for Chatty {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start | ProcEvent::Timer(_) => {
                    ctx.log(|| format!("tick at {}", ctx_now_placeholder()));
                    ctx.set_timer(Dur::from_millis(100), 0);
                }
                _ => {}
            }
        }
    }
    fn ctx_now_placeholder() -> &'static str {
        "work"
    }
    // Disabled by default: nothing recorded.
    let mut w = World::new(1);
    let h = w.add_host("a", 16);
    w.spawn(h, ProcConfig::new("chatty"), Chatty);
    w.run_for(Dur::from_secs(1));
    assert!(w.trace().is_none());

    // Enabled with a small capacity: bounded, oldest evicted.
    let mut w = World::new(1);
    let h = w.add_host("a", 16);
    w.enable_trace(5);
    let pid = w.spawn(h, ProcConfig::new("chatty"), Chatty);
    w.run_for(Dur::from_secs(2));
    let trace = w.trace().expect("enabled");
    let entries: Vec<_> = trace.entries().collect();
    assert_eq!(entries.len(), 5, "bounded at capacity");
    assert!(entries
        .iter()
        .all(|(_, p, line)| *p == pid && line.contains("tick")));
    // Entries are in time order and the oldest were evicted.
    assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
    assert!(entries[0].0 > SimTime::from_micros(1_000_000));
    assert!(trace.render().lines().count() == 5);
}
