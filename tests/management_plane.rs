//! Integration tests for the management plane inside the simulation:
//! host managers, the domain manager, dynamic rule distribution and the
//! memory resource manager, spanning `qos-manager`, `qos-inference` and
//! `qos-sim`.

use qos_core::prelude::*;
use qos_core::sim::memory::PAGE_FAULT_COST;

#[test]
fn host_manager_processes_violations_in_sim() {
    let cfg = TestbedConfig {
        seed: 60,
        managed: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 5,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(60));
    let hm = tb.client_hm_stats().unwrap();
    assert!(hm.registrations >= 1, "client registered at startup");
    assert!(hm.violations >= 3, "violations flowed: {}", hm.violations);
    assert!(hm.cpu_boosts >= 1);
    // The scheduler actually carries the boost.
    let upri = tb
        .world
        .host(tb.client_host)
        .proc_upri(tb.clients[0])
        .unwrap();
    assert!(upri > 0, "upri {upri}");
}

#[test]
fn rule_update_message_changes_running_manager() {
    let cfg = TestbedConfig {
        seed: 61,
        managed: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    let hm_pid = tb.client_hm.unwrap();

    struct Updater {
        hm: Endpoint,
    }
    impl ProcessLogic for Updater {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Start = ev {
                send_ctrl(
                    ctx,
                    self.hm,
                    98,
                    WireMsg::RuleUpdate(RuleUpdateMsg {
                        add: Some(
                            "(defrule custom-rule (never (matches ?x)) => (call noop ?x))".into(),
                        ),
                        remove: vec!["over-achieving".into()],
                    }),
                );
                ctx.exit();
            }
        }
    }
    tb.world.spawn(
        tb.client_host,
        ProcConfig::new("updater"),
        Updater {
            hm: Endpoint::new(tb.client_host, HOST_MANAGER_PORT),
        },
    );
    tb.world.run_for(Dur::from_secs(2));
    let hm: &QosHostManager = tb.world.logic(hm_pid).unwrap();
    assert_eq!(hm.stats.rule_updates, 1);
    let names = hm.rule_names();
    assert!(names.iter().any(|n| n == "custom-rule"));
    assert!(!names.iter().any(|n| n == "over-achieving"));
}

#[test]
fn stats_query_roundtrip_through_the_network() {
    // The domain manager's query path, in isolation: a prober asks a
    // host manager for stats and receives the reply.
    struct Prober {
        hm: Endpoint,
        got: Option<(f64, u64)>,
    }
    impl ProcessLogic for Prober {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    send_ctrl(
                        ctx,
                        self.hm,
                        77,
                        WireMsg::StatsQuery(StatsQueryMsg {
                            reply_to: Endpoint::new(ctx.host_id(), 77),
                            correlation: 42,
                        }),
                    );
                }
                ProcEvent::Readable(77) => {
                    let msg = ctx.recv(77).unwrap();
                    let Ok(Some(WireMsg::StatsReply(r))) = decode_ctrl(&msg) else {
                        panic!("expected a stats reply");
                    };
                    self.got = Some((r.load_avg, r.correlation));
                }
                _ => {}
            }
        }
    }
    let cfg = TestbedConfig {
        seed: 62,
        managed: true,
        domain: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.server_host,
        LoadMix {
            hogs: 4,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(120)); // let the load average build
    let prober = tb.world.spawn(
        tb.mgmt_host,
        ProcConfig::new("prober").port(77, 1 << 16),
        Prober {
            hm: Endpoint::new(tb.server_host, HOST_MANAGER_PORT),
            got: None,
        },
    );
    tb.world.run_for(Dur::from_secs(2));
    let p: &Prober = tb.world.logic(prober).unwrap();
    let (load, corr) = p.got.expect("reply received");
    assert_eq!(corr, 42);
    assert!(load > 3.0, "server load visible over the network: {load}");
}

#[test]
fn memory_manager_grows_a_thrashing_resident_set() {
    // A host with scarce memory: the client's working set cannot be fully
    // resident, page faults slow every decode burst, fps violates, and
    // the memory rule grows the resident set.
    struct TransientHog;
    impl ProcessLogic for TransientHog {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => ctx.set_timer(Dur::from_secs(20), 0),
                ProcEvent::Timer(_) => ctx.exit(), // frames return to the pool
                _ => {}
            }
        }
    }
    let mut w = World::new(63);
    let ch = w.add_host("client", 1000); // 1000 frames of memory
    let sh = w.add_host("server", 1 << 16);
    let hop = w
        .net_mut()
        .add_hop("lan", 10_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
    w.net_mut().set_route_symmetric(ch, sh, vec![hop]);
    let hm = w.spawn(
        ch,
        ProcConfig::new("QoSHostManager")
            .class(SchedClass::RealTime {
                rtpri: 50,
                budget: None,
            })
            .port(HOST_MANAGER_PORT, 1 << 20),
        QosHostManager::new(None),
    );
    // A memory hog holds 400 frames when the client starts, so the
    // client's 800-page working set cannot be fully resident. The hog
    // exits at t=20s; the memory manager can then grow the client.
    w.spawn(ch, ProcConfig::new("memhog").working_set(400), TransientHog);
    let client_cfg = VideoClientConfig {
        host_manager: Some(Endpoint::new(ch, HOST_MANAGER_PORT)),
        ..VideoClientConfig::default()
    };
    let client = w.spawn(
        ch,
        ProcConfig::new("VideoApplication")
            .working_set(800)
            .port(VIDEO_PORT, 1 << 16),
        VideoClient::new(client_cfg, vec![example1_policy()]),
    );
    w.spawn(
        sh,
        ProcConfig::new("VideoServer"),
        VideoServer::new(VideoServerConfig {
            client: Endpoint::new(ch, VIDEO_PORT),
            ..VideoServerConfig::default()
        }),
    );
    let deficit_before = w.host(ch).proc_mem(client).unwrap().deficit();
    assert!(deficit_before > 0, "scenario must start with a deficit");
    w.run_for(Dur::from_secs(60));
    let hm_logic: &QosHostManager = w.logic(hm).unwrap();
    assert!(
        hm_logic.stats.mem_adjustments >= 1,
        "memory rule fired: {:?}",
        hm_logic.stats
    );
    let mem = w.host(ch).proc_mem(client).unwrap();
    assert!(
        mem.deficit() < deficit_before,
        "resident set grew: {} -> {}",
        deficit_before,
        mem.deficit()
    );
    assert!(mem.faults > 0, "page faults were charged");
    let _ = PAGE_FAULT_COST; // referenced to document the cost model
}

#[test]
fn manager_survives_malformed_messages() {
    // Garbage payloads to the host manager port must be ignored, not
    // crash the manager.
    struct Garbler {
        hm: Endpoint,
    }
    impl ProcessLogic for Garbler {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Start = ev {
                ctx.send(self.hm, 5, 64, "not a management message".to_string());
                ctx.send(self.hm, 5, 64, 12345u64);
                ctx.exit();
            }
        }
    }
    let cfg = TestbedConfig {
        seed: 64,
        managed: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.spawn(
        tb.client_host,
        ProcConfig::new("garbler"),
        Garbler {
            hm: Endpoint::new(tb.client_host, HOST_MANAGER_PORT),
        },
    );
    tb.world.run_for(Dur::from_secs(30));
    // The system still works afterwards.
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 5,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(60));
    assert!(tb.client_hm_stats().unwrap().cpu_boosts > 0);
}

#[test]
fn managed_webserver_recovers_response_times() {
    use qos_core::apps::webserver::{
        response_time_policy, RequestGen, WebServer, WebServerConfig, WEB_PORT,
    };

    let mut w = World::new(71);
    let h = w.add_host("web", 1 << 16);
    let hm_pid = w.spawn(
        h,
        ProcConfig::new("QoSHostManager")
            .class(SchedClass::RealTime {
                rtpri: 50,
                budget: None,
            })
            .port(HOST_MANAGER_PORT, 1 << 20),
        QosHostManager::new(None),
    );
    // A realistic kernel accept queue (~64 requests): excess arrivals are
    // tail-dropped instead of accumulating minutes of backlog.
    let ws = w.spawn(
        h,
        ProcConfig::new("WebServer").port(WEB_PORT, 1 << 15),
        WebServer::new(
            WebServerConfig {
                cpu_per_request: Dur::from_micros(8_000),
                host_manager: Some(Endpoint::new(h, HOST_MANAGER_PORT)),
            },
            vec![response_time_policy(50.0)],
        ),
    );
    w.spawn(
        h,
        ProcConfig::new("RequestGen"),
        RequestGen::new(Endpoint::new(h, WEB_PORT), 90.0),
    );
    for _ in 0..6 {
        w.spawn(h, ProcConfig::new("hog"), CpuHog::new());
    }
    // Let contention bite and the manager respond.
    w.run_for(Dur::from_secs(120));
    let hm: &QosHostManager = w.logic(hm_pid).unwrap();
    assert!(
        hm.stats.violations >= 1,
        "web server must have reported: {:?}",
        hm.stats
    );
    assert!(
        hm.stats.nudges >= 1,
        "response-time rule must have nudged: {:?}",
        hm.stats
    );
    let upri = w.host(h).proc_upri(ws).unwrap();
    assert!(upri > 0, "server priority raised: {upri}");
    // Steady-state responses are healthy again.
    w.run_for(Dur::from_secs(60)); // drain the residual backlog
    let s: &WebServer = w.logic(ws).unwrap();
    let before = s.stats.served;
    let before_total = s.stats.total_response_us;
    w.run_for(Dur::from_secs(30));
    let s: &WebServer = w.logic(ws).unwrap();
    let recent_ms = (s.stats.total_response_us - before_total) as f64
        / (s.stats.served - before).max(1) as f64
        / 1_000.0;
    assert!(recent_ms < 50.0, "recent mean response {recent_ms} ms");
}

#[test]
fn managed_game_recovers_frame_rate() {
    use qos_core::apps::game::{game_fps_policy, Game, GameConfig};

    let mut w = World::new(72);
    let h = w.add_host("game", 1 << 16);
    let _hm = w.spawn(
        h,
        ProcConfig::new("QoSHostManager")
            .class(SchedClass::RealTime {
                rtpri: 50,
                budget: None,
            })
            .port(HOST_MANAGER_PORT, 1 << 20),
        QosHostManager::new(None),
    );
    let g = w.spawn(
        h,
        ProcConfig::new("Game").port(201, 1 << 16),
        Game::new(
            GameConfig {
                frame_cost: Dur::from_millis(25),
                host_manager: Some(Endpoint::new(h, HOST_MANAGER_PORT)),
                ..GameConfig::default()
            },
            vec![game_fps_policy(35.0, 5.0)],
        ),
    );
    for _ in 0..6 {
        w.spawn(h, ProcConfig::new("hog"), CpuHog::new());
    }
    w.run_for(Dur::from_secs(60));
    let frames_before = w.logic::<Game>(g).unwrap().frames;
    w.run_for(Dur::from_secs(30));
    let fps = (w.logic::<Game>(g).unwrap().frames - frames_before) as f64 / 30.0;
    assert!(fps > 30.0, "managed game holds its target: {fps}");
    assert!(w.host(h).proc_upri(g).unwrap() > 0);
}

#[test]
fn cross_domain_alert_is_forwarded_to_the_peer_domain_manager() {
    use qos_core::apps::video::{
        example1_policy, VideoClient, VideoClientConfig, VideoServer, VideoServerConfig, VIDEO_PORT,
    };
    use std::collections::HashMap;

    // Two administrative domains: A = {client host}, B = {server host},
    // each with its own domain manager on its own management host. The
    // stream crosses the domain boundary; a server-side fault must be
    // localized by B after A forwards the alert (Section 9's
    // "Interconnecting QoS Domain Managers").
    let mut w = World::new(81);
    let ch = w.add_host("client", 1 << 16);
    let sh = w.add_host("server", 1 << 16);
    let ma = w.add_host("mgmt-a", 1 << 16);
    let mb = w.add_host("mgmt-b", 1 << 16);
    let data = w.net_mut().add_hop(
        "data",
        10_000_000.0,
        Dur::from_millis(1),
        Dur::from_millis(500),
    );
    let ctrl = w
        .net_mut()
        .add_hop("ctrl", 1_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
    w.net_mut().set_route_symmetric(ch, sh, vec![data]);
    for (a, b) in [(ch, ma), (sh, mb), (ma, mb), (ch, mb), (sh, ma)] {
        w.net_mut().set_route_symmetric(a, b, vec![ctrl]);
    }

    let mgr_class = SchedClass::RealTime {
        rtpri: 50,
        budget: None,
    };
    // Host managers.
    let _hm_c = w.spawn(
        ch,
        ProcConfig::new("QoSHostManager")
            .class(mgr_class)
            .port(HOST_MANAGER_PORT, 1 << 20),
        QosHostManager::new(Some(Endpoint::new(ma, DOMAIN_MANAGER_PORT))),
    );
    let _hm_s = w.spawn(
        sh,
        ProcConfig::new("QoSHostManager")
            .class(mgr_class)
            .port(HOST_MANAGER_PORT, 1 << 20),
        QosHostManager::new(Some(Endpoint::new(mb, DOMAIN_MANAGER_PORT))),
    );
    // Domain manager A covers only the client host; B only the server
    // host; A knows B is the peer for the server host.
    let mut hms_a = HashMap::new();
    hms_a.insert(ch, Endpoint::new(ch, HOST_MANAGER_PORT));
    let mut dm_a_logic = QosDomainManager::new(hms_a);
    dm_a_logic.add_peer(sh, Endpoint::new(mb, DOMAIN_MANAGER_PORT));
    let dm_a = w.spawn(
        ma,
        ProcConfig::new("QoSDomainManager")
            .class(mgr_class)
            .port(DOMAIN_MANAGER_PORT, 1 << 20),
        dm_a_logic,
    );
    let mut hms_b = HashMap::new();
    hms_b.insert(sh, Endpoint::new(sh, HOST_MANAGER_PORT));
    let dm_b = w.spawn(
        mb,
        ProcConfig::new("QoSDomainManager")
            .class(mgr_class)
            .port(DOMAIN_MANAGER_PORT, 1 << 20),
        QosDomainManager::new(hms_b),
    );

    // The cross-domain stream.
    let server_pid = Pid { host: sh, local: 1 };
    let client = w.spawn(
        ch,
        ProcConfig::new("VideoApplication").port(VIDEO_PORT, 1 << 16),
        VideoClient::new(
            VideoClientConfig {
                host_manager: Some(Endpoint::new(ch, HOST_MANAGER_PORT)),
                upstream: Some(Upstream {
                    host: sh,
                    pid: server_pid,
                }),
                ..VideoClientConfig::default()
            },
            vec![example1_policy()],
        ),
    );
    let server = w.spawn(
        sh,
        ProcConfig::new("VideoServer"),
        VideoServer::new(VideoServerConfig {
            client: Endpoint::new(ch, VIDEO_PORT),
            ..VideoServerConfig::default()
        }),
    );
    assert_eq!(server, server_pid);

    w.run_for(Dur::from_secs(30));
    // Server-side fault in domain B: interactive storm + degraded encode.
    for _ in 0..30 {
        w.spawn(
            sh,
            ProcConfig::new("storm"),
            DutyLoadGen {
                duty: 0.25,
                period: Dur::from_millis(60),
            },
        );
    }
    w.logic_mut::<VideoServer>(server)
        .unwrap()
        .set_cpu_per_frame(Dur::from_millis(25));
    w.run_for(Dur::from_secs(60));

    let a: &QosDomainManager = w.logic(dm_a).unwrap();
    let b: &QosDomainManager = w.logic(dm_b).unwrap();
    assert!(a.stats.alerts >= 1, "A received the client-side alert");
    assert!(
        a.stats.forwarded >= 1,
        "A forwarded across the domain boundary"
    );
    assert!(
        a.stats.actions.is_empty(),
        "A itself must not act on a foreign host"
    );
    assert!(b.stats.alerts >= 1, "B received the forwarded alert");
    assert!(
        b.stats
            .actions
            .iter()
            .any(|x| matches!(x, DomainAction::BoostServer { .. })),
        "B localized the server fault: {:?}",
        b.stats.actions
    );
    // Service recovered end to end.
    let d0 = w.logic::<VideoClient>(client).unwrap().stats.displayed;
    w.run_for(Dur::from_secs(30));
    let fps = (w.logic::<VideoClient>(client).unwrap().stats.displayed - d0) as f64 / 30.0;
    assert!(fps > 25.0, "cross-domain recovery: {fps}");
}
