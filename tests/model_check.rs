//! Explicit-state model checking of the registration/heartbeat/reap
//! protocol.
//!
//! The model under check is [`PureHost`] (the small-model abstraction of
//! one process's lifecycle inside `host.rs`) embedded in an adversarial
//! environment: an unreliable control channel with bounded loss and
//! duplication budgets, a process that may crash silently, and a manager
//! that may crash and restart with empty volatile state. A breadth-first
//! search over every reachable state proves two properties the paper's
//! enforcement architecture depends on:
//!
//! - **No lost resource** (quiescent): once the dust settles — budgets
//!   spent, messages drained, reaps done — every resource grant in the
//!   manager's ledger belongs to a registered process. Nothing leaks.
//! - **No double adaptation** (safety): one violation report never
//!   triggers two adaptations within a grant epoch, no matter how the
//!   transport duplicates or reorders it.
//!
//! Seeded-bug tests re-introduce three historical/candidate defects via
//! [`Bugs`] and assert the checker catches each with a shortest, printed
//! counterexample trace. Conformance tests replay op sequences against
//! the pure model and a real `QosHostManager` in lockstep so the model
//! cannot drift from the code it abstracts.
//!
//! ## Channel fidelity
//!
//! The environment encodes what the real carriers actually guarantee,
//! not an arbitrarily hostile network: registrations travel as
//! connection greetings on a reliable FIFO stream (they are never lost
//! independently — only a manager crash kills them, along with every
//! other in-flight frame on the connection), and a violation can only
//! arrive after the current manager incarnation has seen a greeting
//! (`LiveProcess` replays its greeting on every reconnect). Violations
//! themselves are fire-and-forget: they can be lost (full queue, dead
//! connection) and duplicated (re-notify, frame redelivery).

use qos_check::{check, CheckConfig, Invariant, Model, Outcome};
use qos_core::prelude::*;
use qos_core::wire::messages::{DiscAssignMsg, DiscLeaseAckMsg};

/// Grace periods in the checked model (small-model parameter; the
/// conformance suite separately pins the pure model to the real
/// tracker's [`real_grace`]).
const GRACE: u8 = 2;
/// Heartbeat periods the environment may let elapse.
const PERIODS: u8 = 5;
/// In-flight copies of any one message the channel can hold.
const MAX_INFLIGHT: u8 = 2;

/// The lifecycle protocol embedded in its adversarial environment.
struct Lifecycle {
    bugs: Bugs,
    /// When false, the "reaped-grants-are-released" safety net is
    /// removed so a release leak is caught only by the quiescent
    /// no-lost-resource invariant (used to demonstrate that the
    /// quiescent machinery finds leaks on its own).
    release_safety_net: bool,
}

impl Lifecycle {
    fn nominal() -> Self {
        Lifecycle {
            bugs: Bugs::default(),
            release_safety_net: true,
        }
    }

    fn with_bugs(bugs: Bugs) -> Self {
        Lifecycle {
            bugs,
            release_safety_net: true,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct S {
    host: PureHost,
    /// The instrumented process is alive (sends heartbeats/violations).
    proc_up: bool,
    /// The current manager incarnation has seen a registration — the
    /// FIFO greeting guarantee: no violation delivery before this.
    greeting_seen: bool,
    /// Registration/heartbeat frames in flight.
    reg_inflight: u8,
    /// Violation report copies in flight, per report id.
    vio_inflight: [u8; MAX_REPORTS],
    /// Next fresh violation report id.
    next_report: u8,
    /// Ghost: reports the manager adapted to in this grant epoch.
    adapted: [bool; MAX_REPORTS],
    /// Ghost: some report triggered two adaptations in one epoch.
    double_adapt: bool,
    /// Remaining nondeterminism budgets.
    periods_left: u8,
    losses_left: u8,
    dups_left: u8,
    mgr_crashes_left: u8,
}

impl std::fmt::Debug for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let h = &self.host;
        let flag = |b: bool, c: char| if b { c } else { '-' };
        write!(
            f,
            "host[{}{}{}{}{} od={}] proc={} greet={} reg>{} vio>{:?} sent={} adapted={:?}{} \
             budget[t={} loss={} dup={} crash={}]",
            flag(h.registered, 'R'),
            flag(h.tracked, 'T'),
            flag(h.pending_reap, 'P'),
            flag(h.holds_grant, 'G'),
            flag(h.tombstoned, 'X'),
            h.overdue,
            if self.proc_up { "up" } else { "dead" },
            if self.greeting_seen { "y" } else { "n" },
            self.reg_inflight,
            self.vio_inflight,
            self.next_report,
            self.adapted,
            if self.double_adapt { " DOUBLE" } else { "" },
            self.periods_left,
            self.losses_left,
            self.dups_left,
            self.mgr_crashes_left,
        )
    }
}

#[derive(Clone, Copy, Debug)]
enum A {
    /// The process sends a registration/heartbeat frame.
    SendRegister,
    /// The channel duplicates an in-flight registration (greeting
    /// replay / frame redelivery).
    DupRegister,
    /// The manager receives a registration.
    DeliverRegister,
    /// The process sends a fresh violation report.
    SendViolation,
    /// The channel loses an in-flight violation copy.
    LoseViolation(usize),
    /// The channel duplicates an in-flight violation copy.
    DupViolation(usize),
    /// The manager receives a violation copy.
    DeliverViolation(usize),
    /// A heartbeat period elapses with no registration processed.
    AdvancePeriod,
    /// A full liveness sweep: declare overdue dead, then reclaim.
    Sweep,
    /// A sweep interrupted between declare and reclaim.
    SweepPartial,
    /// The process dies silently.
    ProcCrash,
    /// The manager crashes and restarts empty; in-flight frames die
    /// with the connections.
    MgrCrash,
}

impl Model for Lifecycle {
    type State = S;
    type Action = A;

    fn init_states(&self) -> Vec<S> {
        vec![S {
            host: PureHost::with_bugs(GRACE, self.bugs),
            proc_up: true,
            greeting_seen: false,
            reg_inflight: 0,
            vio_inflight: [0; MAX_REPORTS],
            next_report: 0,
            adapted: [false; MAX_REPORTS],
            double_adapt: false,
            periods_left: PERIODS,
            losses_left: 1,
            dups_left: 1,
            mgr_crashes_left: 1,
        }]
    }

    fn actions(&self, s: &S, out: &mut Vec<A>) {
        if s.proc_up && s.reg_inflight < MAX_INFLIGHT {
            out.push(A::SendRegister);
        }
        if s.dups_left > 0 && s.reg_inflight > 0 && s.reg_inflight < MAX_INFLIGHT {
            out.push(A::DupRegister);
        }
        if s.reg_inflight > 0 {
            out.push(A::DeliverRegister);
        }
        if s.proc_up && (s.next_report as usize) < MAX_REPORTS {
            out.push(A::SendViolation);
        }
        for r in 0..MAX_REPORTS {
            if s.vio_inflight[r] > 0 {
                if s.losses_left > 0 {
                    out.push(A::LoseViolation(r));
                }
                if s.dups_left > 0 && s.vio_inflight[r] < MAX_INFLIGHT {
                    out.push(A::DupViolation(r));
                }
                if s.greeting_seen {
                    out.push(A::DeliverViolation(r));
                }
            }
        }
        if s.periods_left > 0 {
            out.push(A::AdvancePeriod);
        }
        let declarable = s.host.tracked && s.host.overdue > s.host.grace;
        if declarable || s.host.pending_reap {
            out.push(A::Sweep);
        }
        if declarable && !s.host.pending_reap {
            out.push(A::SweepPartial);
        }
        if s.proc_up {
            out.push(A::ProcCrash);
        }
        if s.mgr_crashes_left > 0 {
            out.push(A::MgrCrash);
        }
    }

    fn next(&self, s: &S, a: &A) -> Option<S> {
        let mut n = s.clone();
        match *a {
            A::SendRegister => n.reg_inflight += 1,
            A::DupRegister => {
                n.reg_inflight += 1;
                n.dups_left -= 1;
            }
            A::DeliverRegister => {
                n.reg_inflight -= 1;
                n.host.deliver_register();
                n.greeting_seen = true;
            }
            A::SendViolation => {
                n.vio_inflight[n.next_report as usize] += 1;
                n.next_report += 1;
            }
            A::LoseViolation(r) => {
                n.vio_inflight[r] -= 1;
                n.losses_left -= 1;
            }
            A::DupViolation(r) => {
                n.vio_inflight[r] += 1;
                n.dups_left -= 1;
            }
            A::DeliverViolation(r) => {
                n.vio_inflight[r] -= 1;
                if n.host.deliver_violation(r) {
                    if n.adapted[r] {
                        n.double_adapt = true;
                    }
                    n.adapted[r] = true;
                }
            }
            A::AdvancePeriod => {
                n.periods_left -= 1;
                n.host.advance_period();
            }
            A::Sweep => {
                n.host.sweep();
                if n.host.tombstoned {
                    // A reclaim ended the grant epoch: adapting again
                    // after a future re-registration is legitimate.
                    n.adapted = [false; MAX_REPORTS];
                }
            }
            A::SweepPartial => n.host.sweep_partial(),
            A::ProcCrash => n.proc_up = false,
            A::MgrCrash => {
                n.mgr_crashes_left -= 1;
                n.host.crash_restart();
                // Connections die with the manager process; so does
                // everything in flight on them. The next incarnation
                // sees a greeting before any violation.
                n.reg_inflight = 0;
                n.vio_inflight = [0; MAX_REPORTS];
                n.greeting_seen = false;
                n.adapted = [false; MAX_REPORTS];
            }
        }
        Some(n)
    }

    fn invariants(&self) -> Vec<Invariant<Self>> {
        let mut invs = vec![
            Invariant::new("tracked-implies-registered", |_: &Lifecycle, s: &S| {
                !s.host.tracked || s.host.registered
            }),
            Invariant::new("no-double-adaptation", |_: &Lifecycle, s: &S| {
                !s.double_adapt
            }),
        ];
        if self.release_safety_net {
            invs.push(Invariant::new(
                "reaped-grants-are-released",
                |_: &Lifecycle, s: &S| !s.host.tombstoned || !s.host.holds_grant,
            ));
        }
        invs
    }

    fn quiescent_invariants(&self) -> Vec<Invariant<Self>> {
        vec![Invariant::new(
            "no-lost-resource",
            |_: &Lifecycle, s: &S| !s.host.holds_grant || s.host.registered,
        )]
    }
}

// ---------------------------------------------------------------------
// Exhaustive checks
// ---------------------------------------------------------------------

#[test]
fn nominal_protocol_proves_both_invariants() {
    let out = check(&Lifecycle::nominal(), CheckConfig::default());
    let r = out.report();
    println!(
        "model check (nominal): {} states, {} transitions, depth {}, {} quiescent states",
        r.states, r.transitions, r.depth, r.quiescent
    );
    if let Some(trace) = out.trace_string() {
        panic!("nominal protocol violated an invariant:\n{trace}");
    }
    assert!(!r.truncated, "exploration must be exhaustive: {r:?}");
    assert!(
        r.states > 10_000,
        "suspiciously small state space ({} states): the environment \
         is not exercising the protocol",
        r.states
    );
    assert!(r.transitions > r.states, "{r:?}");
    assert!(
        r.quiescent > 0,
        "no quiescent states means no-lost-resource was never checked"
    );
}

// ---------------------------------------------------------------------
// Seeded bugs: the checker must catch each, with a printed trace
// ---------------------------------------------------------------------

/// Expect a violation of `invariant` and return the printed trace.
fn expect_violation(model: &Lifecycle, invariant: &str) -> String {
    let out = check(model, CheckConfig::default());
    match &out {
        Outcome::Pass(r) => panic!("seeded bug went undetected: {r:?}"),
        Outcome::Violation { invariant: got, .. } => {
            let trace = out.trace_string().expect("violation has a trace");
            println!("{trace}");
            assert_eq!(
                *got, invariant,
                "wrong invariant tripped; counterexample:\n{trace}"
            );
            trace
        }
    }
}

#[test]
fn seeded_reap_register_race_is_caught() {
    let trace = expect_violation(
        &Lifecycle::with_bugs(Bugs {
            register_ignores_pending: true,
            ..Bugs::default()
        }),
        "tracked-implies-registered",
    );
    // The shortest counterexample must thread the needle: a partial
    // sweep, then a registration inside the reap window.
    assert!(trace.contains("SweepPartial"), "{trace}");
    assert!(trace.contains("DeliverRegister"), "{trace}");
}

#[test]
fn seeded_release_leak_is_caught_by_safety_net() {
    let trace = expect_violation(
        &Lifecycle::with_bugs(Bugs {
            skip_release_on_reap: true,
            ..Bugs::default()
        }),
        "reaped-grants-are-released",
    );
    assert!(trace.contains("Sweep"), "{trace}");
}

#[test]
fn seeded_release_leak_is_caught_at_quiescence_without_the_net() {
    // Remove the safety net: only the quiescent no-lost-resource
    // invariant is left to notice that a reaped process's grant is
    // still in the ledger when everything has run dry.
    let model = Lifecycle {
        bugs: Bugs {
            skip_release_on_reap: true,
            ..Bugs::default()
        },
        release_safety_net: false,
    };
    let trace = expect_violation(&model, "no-lost-resource");
    assert!(trace.contains("DeliverViolation"), "{trace}");
}

#[test]
fn seeded_missing_dedup_is_caught() {
    let trace = expect_violation(
        &Lifecycle::with_bugs(Bugs {
            no_violation_dedup: true,
            ..Bugs::default()
        }),
        "no-double-adaptation",
    );
    assert!(trace.contains("DupViolation"), "{trace}");
}

// ---------------------------------------------------------------------
// Conformance: the pure model tracks the real QosHostManager
// ---------------------------------------------------------------------

/// All op sequences over the lifecycle alphabet up to length 4,
/// replayed against pure model and real manager in lockstep.
#[test]
fn conformance_exhaustive_short_sequences() {
    if !qos_buggify::compiled_in() {
        return; // sweep_partial needs the buggify point
    }
    let mut checked = 0usize;
    let mut seq: Vec<LifecycleOp> = Vec::new();
    // Iterative odometer over sequences of length 1..=4 (6^1+..+6^4 =
    // 1554 sequences).
    for len in 1..=4usize {
        let mut digits = vec![0usize; len];
        loop {
            seq.clear();
            seq.extend(digits.iter().map(|&d| LIFECYCLE_OPS[d]));
            if let Some((step, pure, real)) = conformance_divergence(&seq) {
                panic!(
                    "model/code divergence after step {step} of {seq:?}:\n  \
                     pure: {pure:?}\n  real: {real:?}"
                );
            }
            checked += 1;
            // Increment the odometer.
            let mut i = 0;
            loop {
                if i == len {
                    break;
                }
                digits[i] += 1;
                if digits[i] < LIFECYCLE_OPS.len() {
                    break;
                }
                digits[i] = 0;
                i += 1;
            }
            if i == len {
                break;
            }
        }
    }
    println!("conformance: {checked} exhaustive short sequences agreed");
    assert_eq!(checked, 6 + 36 + 216 + 1296);
}

#[test]
fn conformance_seeded_random_walks() {
    if !qos_buggify::compiled_in() {
        return;
    }
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut step = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for walk in 0..200 {
        let ops: Vec<LifecycleOp> = (0..12)
            .map(|_| LIFECYCLE_OPS[(step() % LIFECYCLE_OPS.len() as u64) as usize])
            .collect();
        if let Some((at, pure, real)) = conformance_divergence(&ops) {
            panic!(
                "walk {walk} diverged after step {at} of {ops:?}:\n  \
                 pure: {pure:?}\n  real: {real:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// CI smoke entry point: a bounded run that stays fast no matter what
// ---------------------------------------------------------------------

#[test]
fn bounded_smoke_check_stays_fast() {
    let out = check(
        &Lifecycle::nominal(),
        CheckConfig {
            max_depth: 12,
            max_states: 100_000,
        },
    );
    assert!(out.passed(), "{}", out.trace_string().unwrap_or_default());
}

// =====================================================================
// Discovery plane: the federated binding protocol, model-checked
// =====================================================================
//
// The model under check here is the *production* [`DiscClient`] — the
// exact `Copy + Eq + Hash` state machine `host.rs` steps — embedded in
// an adversarial environment: an abstract discovery server whose shard
// decision may move between epochs, a lossy/duplicating channel with
// bounded budgets, and a lease that may be expired out from under the
// client. Two properties from the federation design are proved:
//
// - **No host unassigned** (quiescent): once budgets are spent and
//   every message drained, the host is bound and its binding agrees
//   with the server's — the host sits in exactly one shard.
// - **No double assignment** (safety): the client never *re*binds off
//   a stale-epoch assignment. Accepting one would put the host in two
//   registries at once: the stale manager it just bound to and the one
//   the server currently records.
//
// Channel fidelity, as above: timers are slow next to the control-path
// RTT (renewal fires at half a multi-second lease; an in-flight ack or
// assignment lands long before the next timer), so `RenewDue` is not
// interleaved ahead of a deliverable ack and `RetryDue` not ahead of a
// deliverable assignment. Loss and duplication remain fully
// adversarial within their budgets.

/// The modeled host and its manager endpoint.
fn disc_host() -> HostId {
    HostId(7)
}

fn disc_hm_ep() -> Endpoint {
    Endpoint::new(disc_host(), HOST_MANAGER_PORT)
}

/// The abstract server's shard decision: moves with the epoch, so a
/// stale assignment names a genuinely different domain manager.
fn shard_of(epoch: u64) -> u8 {
    (epoch % 2) as u8
}

fn dm_ep(shard: u8) -> Endpoint {
    Endpoint::new(HostId(100 + shard as u32), DOMAIN_MANAGER_PORT)
}

struct Discovery {
    bugs: DiscBugs,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct DS {
    client: DiscClient,
    /// The server's recorded binding: (epoch, shard).
    server: Option<(u64, u8)>,
    /// Latest announce in flight (epoch); retries overwrite.
    announce: Option<u64>,
    /// Assignment copies in flight: (epoch, shard).
    assigns: [Option<(u64, u8)>; 2],
    /// Renewal in flight (epoch).
    renew: Option<u64>,
    /// Ack in flight (epoch).
    ack: Option<u64>,
    /// Armed client timers.
    retry_armed: bool,
    renew_armed: bool,
    /// Ghost: the client bound off an assignment for an epoch other
    /// than its current one.
    stale_bind: bool,
    /// Nondeterminism budgets.
    losses_left: u8,
    dups_left: u8,
    expires_left: u8,
    /// Renewal-timer budget. The real timer fires forever; bounding it
    /// is what makes the bound steady state quiescent so the quiescent
    /// invariant gets checked at all. See the fairness gate on
    /// [`DA::LeaseExpire`].
    renews_left: u8,
}

impl std::fmt::Debug for DS {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match self.client.phase {
            DiscPhase::Unbound => "U".to_string(),
            DiscPhase::Announced => "A".to_string(),
            DiscPhase::Bound { domain, .. } => format!("B{}", domain.0),
        };
        write!(
            f,
            "client[{} e={} miss={}] srv={:?} ann>{:?} asg>{:?} rnw>{:?} ack>{:?} \
             timers[retry={} renew={}]{} budget[loss={} dup={} exp={} rnw={}]",
            phase,
            self.client.epoch,
            self.client.misses,
            self.server,
            self.announce,
            self.assigns,
            self.renew,
            self.ack,
            if self.retry_armed { "y" } else { "n" },
            if self.renew_armed { "y" } else { "n" },
            if self.stale_bind { " STALE-BIND" } else { "" },
            self.losses_left,
            self.dups_left,
            self.expires_left,
            self.renews_left,
        )
    }
}

#[derive(Clone, Copy, Debug)]
enum DA {
    /// The server processes the announce and replies with an
    /// assignment.
    DeliverAnnounce,
    /// The channel loses the in-flight announce.
    LoseAnnounce,
    /// The client receives assignment copy `i`.
    DeliverAssign(usize),
    /// The channel loses assignment copy `i`.
    LoseAssign(usize),
    /// The channel duplicates assignment copy `i`.
    DupAssign(usize),
    /// The announce-retry timer fires.
    RetryFires,
    /// The lease-renewal timer fires.
    RenewFires,
    /// The server processes the renewal (ack only if the epoch matches
    /// its recorded binding).
    DeliverRenew,
    /// The channel loses the in-flight renewal.
    LoseRenew,
    /// The client receives the ack.
    DeliverAck,
    /// The channel loses the in-flight ack.
    LoseAck,
    /// The server's lease sweep expires the binding.
    LeaseExpire,
}

impl DS {
    /// Execute the actions a client step returned, updating wires and
    /// timers. `Bind`/`Unbind` need no handling here: the binding
    /// itself lives inside the client state.
    fn run(&mut self, actions: Vec<DiscAction>) {
        for a in actions {
            match a {
                DiscAction::Announce(m) => self.announce = Some(m.epoch),
                DiscAction::Renew(m) => self.renew = Some(m.epoch),
                DiscAction::ScheduleRetry => self.retry_armed = true,
                DiscAction::ScheduleRenew(_) => self.renew_armed = true,
                DiscAction::Bind { .. } | DiscAction::Unbind => {}
            }
        }
    }

    fn bound(&self) -> bool {
        matches!(self.client.phase, DiscPhase::Bound { .. })
    }

    fn assign_slot_free(&self) -> Option<usize> {
        self.assigns.iter().position(Option::is_none)
    }
}

impl Model for Discovery {
    type State = DS;
    type Action = DA;

    fn init_states(&self) -> Vec<DS> {
        let mut client = DiscClient::new(disc_host(), disc_hm_ep());
        client.bugs = self.bugs;
        let mut s = DS {
            client,
            server: None,
            announce: None,
            assigns: [None; 2],
            renew: None,
            ack: None,
            retry_armed: false,
            renew_armed: false,
            stale_bind: false,
            losses_left: 2,
            dups_left: 1,
            expires_left: 1,
            // Enough for the worst case the LeaseExpire gate admits.
            renews_left: (MAX_RENEW_MISSES + 1) * (MAX_RENEW_MISSES + 2),
        };
        let kick = s.client.step(DiscEvent::Kick);
        s.run(kick);
        vec![s]
    }

    fn actions(&self, s: &DS, out: &mut Vec<DA>) {
        if s.announce.is_some() {
            if s.assign_slot_free().is_some() {
                out.push(DA::DeliverAnnounce);
            }
            if s.losses_left > 0 {
                out.push(DA::LoseAnnounce);
            }
        }
        for i in 0..s.assigns.len() {
            if s.assigns[i].is_some() {
                out.push(DA::DeliverAssign(i));
                if s.losses_left > 0 {
                    out.push(DA::LoseAssign(i));
                }
                if s.dups_left > 0 && s.assign_slot_free().is_some() {
                    out.push(DA::DupAssign(i));
                }
            }
        }
        // Timer fidelity: a retry fires only with nothing deliverable
        // in flight (both timers are long next to one RTT), and a
        // renewal only with no renewal or ack pending.
        if s.retry_armed
            && !s.bound()
            && s.announce.is_none()
            && s.assigns.iter().all(Option::is_none)
        {
            out.push(DA::RetryFires);
        }
        if s.renew_armed && s.bound() && s.renew.is_none() && s.ack.is_none() && s.renews_left > 0 {
            out.push(DA::RenewFires);
        }
        if s.renew.is_some() {
            out.push(DA::DeliverRenew);
            if s.losses_left > 0 {
                out.push(DA::LoseRenew);
            }
        }
        if s.ack.is_some() {
            out.push(DA::DeliverAck);
            if s.losses_left > 0 {
                out.push(DA::LoseAck);
            }
        }
        // Fairness gate: the real renewal timer fires forever, so a
        // client always *eventually* notices an expired lease (three
        // unacked renewals, then a rediscovery). The budgeted model may
        // only expire the lease while enough timer firings remain for
        // that observation — otherwise the expiry would wedge the model
        // in a state reality always escapes. Every same-epoch message
        // still deliverable afterwards (an assignment copy, a future
        // duplicate, an in-flight ack) can reset the miss counter once,
        // costing up to MAX_RENEW_MISSES extra firings each.
        if s.server.is_some() && s.expires_left > 0 {
            let resets =
                s.assigns.iter().flatten().count() as u8 + s.dups_left + u8::from(s.ack.is_some());
            let needed = (MAX_RENEW_MISSES + 1) + MAX_RENEW_MISSES * resets;
            if s.renews_left >= needed {
                out.push(DA::LeaseExpire);
            }
        }
    }

    fn next(&self, s: &DS, a: &DA) -> Option<DS> {
        let mut n = s.clone();
        match *a {
            DA::DeliverAnnounce => {
                let e = n.announce.take().expect("enabled");
                let shard = shard_of(e);
                n.server = Some((e, shard));
                let slot = n.assign_slot_free().expect("enabled");
                n.assigns[slot] = Some((e, shard));
            }
            DA::LoseAnnounce => {
                n.announce = None;
                n.losses_left -= 1;
            }
            DA::DeliverAssign(i) => {
                let (e, shard) = n.assigns[i].take().expect("enabled");
                let pre_epoch = n.client.epoch;
                let actions = n.client.step(DiscEvent::Assign(DiscAssignMsg {
                    host: disc_host(),
                    epoch: e,
                    domain: DomainId(shard as u32 + 1),
                    manager: dm_ep(shard),
                    lease: DISCOVERY_LEASE,
                }));
                let bound_it = actions.iter().any(|x| matches!(x, DiscAction::Bind { .. }));
                if bound_it && e != pre_epoch {
                    n.stale_bind = true;
                }
                n.run(actions);
            }
            DA::LoseAssign(i) => {
                n.assigns[i] = None;
                n.losses_left -= 1;
            }
            DA::DupAssign(i) => {
                let copy = n.assigns[i];
                let slot = n.assign_slot_free().expect("enabled");
                n.assigns[slot] = copy;
                n.dups_left -= 1;
            }
            DA::RetryFires => {
                n.retry_armed = false;
                let actions = n.client.step(DiscEvent::RetryDue);
                n.run(actions);
            }
            DA::RenewFires => {
                n.renew_armed = false;
                n.renews_left -= 1;
                let actions = n.client.step(DiscEvent::RenewDue);
                n.run(actions);
            }
            DA::DeliverRenew => {
                let e = n.renew.take().expect("enabled");
                if n.server.is_some_and(|(se, _)| se == e) {
                    n.ack = Some(e);
                }
            }
            DA::LoseRenew => {
                n.renew = None;
                n.losses_left -= 1;
            }
            DA::DeliverAck => {
                let e = n.ack.take().expect("enabled");
                let actions = n.client.step(DiscEvent::Ack(DiscLeaseAckMsg {
                    host: disc_host(),
                    epoch: e,
                    lease: DISCOVERY_LEASE,
                }));
                n.run(actions);
            }
            DA::LoseAck => {
                n.ack = None;
                n.losses_left -= 1;
            }
            DA::LeaseExpire => {
                n.server = None;
                n.expires_left -= 1;
            }
        }
        Some(n)
    }

    fn invariants(&self) -> Vec<Invariant<Self>> {
        vec![Invariant::new(
            "no-double-assignment",
            |_: &Discovery, s: &DS| !s.stale_bind,
        )]
    }

    fn quiescent_invariants(&self) -> Vec<Invariant<Self>> {
        vec![Invariant::new(
            "no-host-unassigned",
            |_: &Discovery, s: &DS| {
                // Budgets spent, wires drained: the host must be bound and
                // the server must agree — in exactly one shard.
                match s.client.phase {
                    DiscPhase::Bound { domain, .. } => s.server.is_some_and(|(e, shard)| {
                        e == s.client.epoch && DomainId(shard as u32 + 1) == domain
                    }),
                    _ => false,
                }
            },
        )]
    }
}

#[test]
fn discovery_protocol_proves_binding_invariants() {
    let out = check(
        &Discovery {
            bugs: DiscBugs::default(),
        },
        CheckConfig::default(),
    );
    let r = out.report();
    println!(
        "model check (discovery): {} states, {} transitions, depth {}, {} quiescent states",
        r.states, r.transitions, r.depth, r.quiescent
    );
    if let Some(trace) = out.trace_string() {
        panic!("discovery protocol violated an invariant:\n{trace}");
    }
    assert!(!r.truncated, "exploration must be exhaustive: {r:?}");
    assert!(
        r.states > 200,
        "suspiciously small state space ({} states)",
        r.states
    );
    assert!(
        r.quiescent > 0,
        "no quiescent states means no-host-unassigned was never checked"
    );
}

/// Expect a violation from a buggy discovery client.
fn expect_disc_violation(bugs: DiscBugs, invariant: &str) -> String {
    let out = check(&Discovery { bugs }, CheckConfig::default());
    match &out {
        Outcome::Pass(r) => panic!("seeded discovery bug went undetected: {r:?}"),
        Outcome::Violation { invariant: got, .. } => {
            let trace = out.trace_string().expect("violation has a trace");
            println!("{trace}");
            assert_eq!(
                *got, invariant,
                "wrong invariant tripped; counterexample:\n{trace}"
            );
            trace
        }
    }
}

#[test]
fn seeded_stale_assign_acceptance_is_caught() {
    let trace = expect_disc_violation(
        DiscBugs {
            accept_stale_assign: true,
            ..DiscBugs::default()
        },
        "no-double-assignment",
    );
    // The counterexample needs a duplicated assignment surviving into
    // a later epoch: rediscovery, then the echo delivered.
    assert!(trace.contains("DupAssign"), "{trace}");
    assert!(trace.contains("DeliverAssign"), "{trace}");
}

#[test]
fn seeded_forgotten_retry_is_caught_at_quiescence() {
    let trace = expect_disc_violation(
        DiscBugs {
            forget_retry: true,
            ..DiscBugs::default()
        },
        "no-host-unassigned",
    );
    // One lost announce plus the forgotten timer wedges the host
    // outside the federation.
    assert!(
        trace.contains("LoseAnnounce") || trace.contains("RetryFires"),
        "{trace}"
    );
}
