//! End-to-end telemetry: a chaos run (30% control-plane loss plus a
//! host-manager crash-restart) with tracing enabled must produce a
//! trace from which complete violation lifecycles — detect → report →
//! diagnose → adapt → back-in-spec, one correlation id each — can be
//! reconstructed after a JSONL round-trip, with monotonic per-stage
//! timestamps and a measured MTTR, while the fault layer's drops are
//! visible as registry counters.

use qos_core::prelude::*;

/// The chaos harness from `tests/chaos.rs`, telemetry-enabled.
fn chaos_run(telemetry: &Telemetry) -> FaultStats {
    let cfg = TestbedConfig {
        seed: 2102,
        managed: true,
        in_sim_distribution: true,
        stream_fps: 25.0,
        telemetry: telemetry.clone(),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.install_faults(FaultPlan::new().lose(
        Window::always(),
        MsgSelector::ports(vec![
            HOST_MANAGER_PORT,
            DOMAIN_MANAGER_PORT,
            POLICY_AGENT_PORT,
        ]),
        0.30,
    ));
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(3));
    tb.restart_host_manager(tb.client_host)
        .expect("managed testbed has a client host manager");
    tb.world.run_for(Dur::from_secs(60));
    tb.world.fault_stats()
}

#[test]
fn chaos_trace_reconstructs_complete_violation_lifecycles() {
    let t = Telemetry::enabled();
    if !t.is_enabled() {
        // telemetry-off build: nothing to reconstruct, by design.
        return;
    }
    let faults = chaos_run(&t);
    assert!(faults.msgs_dropped > 0, "the loss schedule must bite");

    // The trace survives a JSONL round-trip losslessly.
    let events = t.events();
    assert!(!events.is_empty(), "the run must have emitted trace events");
    let jsonl = to_jsonl(&events);
    let parsed = parse_jsonl(&jsonl).expect("exported JSONL must parse back");
    assert_eq!(parsed, events, "JSONL round-trip must be lossless");

    // At least one violation made it through the whole lifecycle even
    // under 30% control loss and a manager restart, and every complete
    // chain is causally ordered with a measured repair time.
    let lifecycles = reconstruct(&parsed);
    let complete: Vec<&Lifecycle> = lifecycles.iter().filter(|lc| lc.complete()).collect();
    assert!(
        !complete.is_empty(),
        "expected at least one complete detect→…→back-in-spec chain ({} lifecycles total)",
        lifecycles.len()
    );
    for lc in &complete {
        assert!(
            lc.monotonic(),
            "corr {}: stage timestamps must be monotonic in lifecycle order",
            lc.corr
        );
        let mttr = lc.mttr_us().expect("complete lifecycle has an MTTR");
        assert!(mttr > 0, "corr {}: repair cannot be instantaneous", lc.corr);
        assert_eq!(
            lc.policy, "NotifyQoSViolation",
            "Example 1's policy is the one enforced"
        );
    }

    // Aggregated per-stage latencies cover each completed lifecycle.
    let lat = stage_latencies(&lifecycles);
    assert_eq!(lat.completed, complete.len());
    assert_eq!(lat.mttr.count as usize, complete.len());

    // The fault layer's write-only drop count is mirrored 1:1 into the
    // registry, where the summary table picks it up.
    assert_eq!(
        t.counter_value("sim.fault.msgs_dropped", ""),
        faults.msgs_dropped
    );
    let summary = telemetry_summary(&t);
    assert!(summary.contains("detect→report"));
    assert!(summary.contains("sim.fault.msgs_dropped"));
    assert!(summary.contains("completed"));

    // The Chrome exporter renders the same trace for chrome://tracing.
    let chrome = to_chrome_trace(&events);
    assert!(chrome.contains("\"traceEvents\""));
}

#[test]
fn disabled_telemetry_records_nothing() {
    let t = Telemetry::disabled();
    let faults = chaos_run(&t);
    assert!(faults.msgs_dropped > 0);
    assert!(t.events().is_empty());
    assert!(t.snapshot().is_empty());
    assert!(telemetry_summary(&t).is_empty());
}
