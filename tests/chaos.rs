//! Chaos harness: seeded, deterministic fault schedules driven against
//! the complete managed testbed. The management plane must degrade
//! gracefully and recover — a lossy control plane plus a host-manager
//! crash-restart still converges the video stream back into
//! specification, and a client that dies mid-session cannot pin its
//! CPU boost or working-memory facts forever.

use qos_core::prelude::*;

/// The management control plane: host managers (10), the domain
/// manager (11) and the policy agent (12).
fn control_ports() -> Vec<Port> {
    vec![HOST_MANAGER_PORT, DOMAIN_MANAGER_PORT, POLICY_AGENT_PORT]
}

/// One full chaos run: build the managed testbed with in-sim policy
/// distribution and a 25 fps stream (Example 1's target), put the
/// client host under load, drop 30% of every control message for the
/// whole run, and crash-and-restart the client's host manager three
/// seconds in — before the adaptation has settled, so the replacement
/// must finish the job from empty state. Returns the converged tail
/// fps, the replacement manager's stats, and run fingerprints for
/// determinism checks.
fn lossy_restart_run(seed: u64, telemetry: &Telemetry) -> (f64, HostMgrStats, u64, FaultStats) {
    let cfg = TestbedConfig {
        seed,
        managed: true,
        // Policies arrive through the (lossy) agent handshake, so the
        // retry/backoff/fallback path is exercised too.
        in_sim_distribution: true,
        stream_fps: 25.0,
        telemetry: telemetry.clone(),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.install_faults(FaultPlan::new().lose(
        Window::always(),
        MsgSelector::ports(control_ports()),
        0.30,
    ));
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    // Let the disturbance bite and the first violations flow...
    tb.world.run_for(Dur::from_secs(3));
    // ...then the client-side manager crashes mid-adaptation and a fresh
    // one takes over the well-known port with empty state. Heartbeat
    // re-registration repairs the registry; re-reported violations
    // rebuild the allocation from scratch — all under 30% loss.
    tb.restart_host_manager(tb.client_host)
        .expect("managed testbed has a client host manager");
    tb.world.run_for(Dur::from_secs(40));
    // Measure a converged tail window.
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(20));
    let fps = (tb.displayed(0) - d0) as f64 / 20.0;
    let stats = tb
        .client_hm_stats()
        .expect("replacement host manager is alive");
    assert!(
        stats.registrations >= 1,
        "seed {seed}: heartbeats must repair the replacement's registry"
    );
    (
        fps,
        stats,
        tb.world.events_processed(),
        tb.world.fault_stats(),
    )
}

#[test]
fn fps_reconverges_despite_lossy_control_plane_and_hm_restart() {
    for seed in [2102u64, 2103, 2300] {
        // Telemetry rides along on the first seed: the same chaos run
        // must surface its fault drops and manager activity through the
        // metrics registry without perturbing the outcome.
        let t = if seed == 2102 {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let (fps, stats, _, faults) = lossy_restart_run(seed, &t);
        assert!(
            faults.msgs_dropped > 0,
            "seed {seed}: the loss schedule must actually bite"
        );
        assert!(
            stats.cpu_boosts >= 1,
            "seed {seed}: the replacement manager must have adapted"
        );
        assert!(
            (fps - 25.0).abs() <= 2.0,
            "seed {seed}: tail fps {fps} outside the 25±2 specification"
        );
        if t.is_enabled() {
            // The fault layer's write-only stats are mirrored 1:1 into
            // the registry...
            assert_eq!(
                t.counter_value("sim.fault.msgs_dropped", ""),
                faults.msgs_dropped,
                "seed {seed}: registry must mirror the fault layer's drop count"
            );
            // ...and the crashed manager's work plus its replacement's
            // accumulate under the same labeled series, so the registry
            // is at least the replacement's own count.
            // The client host is the testbed's first host (h0).
            let label = "h0";
            assert!(
                t.counter_value("hm.cpu_boosts", label) >= stats.cpu_boosts,
                "seed {seed}: hm.cpu_boosts must cover the replacement's boosts"
            );
            assert!(
                t.counter_value("hm.violations", label) >= stats.violations,
                "seed {seed}: hm.violations must cover the replacement's reports"
            );
        }
    }
}

#[test]
fn dead_client_is_reaped_and_its_boost_reclaimed() {
    let telemetry = Telemetry::enabled();
    let cfg = TestbedConfig {
        seed: 2200,
        managed: true,
        telemetry: telemetry.clone(),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(30));
    let client = tb.clients[0];
    let hm_pid = tb.client_hm.expect("managed testbed");
    {
        let hm: &QosHostManager = tb.world.logic(hm_pid).expect("host manager logic");
        assert!(
            hm.cpu_allocation(client).boost > 0,
            "load must have forced a boost before the crash"
        );
        assert!(hm.is_registered(client));
    }
    tb.world.kill(client);
    // Grace is 4 missed heartbeat periods (2 s each); add sweep slack.
    tb.world.run_for(Dur::from_secs(12));
    let stats = tb.client_hm_stats().expect("managed testbed");
    let hm: &QosHostManager = tb.world.logic(hm_pid).expect("host manager logic");
    assert!(
        stats.deaths >= 1,
        "the liveness sweep must declare the silent client dead"
    );
    assert!(!hm.is_registered(client), "registry entry reclaimed");
    assert_eq!(
        hm.cpu_allocation(client).boost,
        0,
        "the dead client's CPU boost must be reclaimed"
    );
    assert_eq!(
        hm.facts_of("violation"),
        0,
        "no violation facts may leak past the reap"
    );
    if telemetry.is_enabled() {
        assert_eq!(
            telemetry.counter_value("hm.liveness_reaps", "h0"),
            stats.deaths,
            "the write-only death count must be visible in the registry"
        );
    }
}

/// Outcome of one buggify-driven run; coverage is captured before
/// `disable()`, which drops all per-point state.
#[derive(Debug, PartialEq)]
struct BuggifyRun {
    events: u64,
    fired: u64,
    hit: Vec<(String, u64)>,
    seen: Vec<(String, u64)>,
    fps: f64,
}

/// One buggify-driven run: seeded fault points inside the management
/// plane itself (dropped violations, duplicated registrations, deferred
/// and interrupted reaps, lost agent replies, redelivered alarms). The
/// tail fps is measured after chaos is switched off.
fn buggify_run(seed: u64) -> BuggifyRun {
    qos_buggify::enable(seed);
    let cfg = TestbedConfig {
        seed,
        managed: true,
        in_sim_distribution: true,
        stream_fps: 25.0,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(30));
    let fired = qos_buggify::fired_total();
    let hit = qos_buggify::points_hit();
    let seen = qos_buggify::points_seen();
    let events_mid = tb.world.events_processed();
    // Chaos off: the plane must converge from whatever state the fault
    // points left behind.
    qos_buggify::disable();
    tb.world.run_for(Dur::from_secs(20));
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(20));
    let fps = (tb.displayed(0) - d0) as f64 / 20.0;
    BuggifyRun {
        events: events_mid,
        fired,
        hit,
        seen,
        fps,
    }
}

#[test]
fn buggify_chaos_recovers_on_three_seeds() {
    if !qos_buggify::compiled_in() {
        return; // release / buggify-off build: the points are no-ops
    }
    for seed in [11u64, 12, 13] {
        let run = buggify_run(seed);
        assert!(
            run.fired > 0,
            "seed {seed}: chaos points must actually fire in a managed run"
        );
        assert!(
            run.hit.len() >= 2,
            "seed {seed}: expected several distinct points to fire, got {:?}",
            run.hit
        );
        assert!(
            run.seen.iter().any(|(n, _)| n.starts_with("hm.")),
            "seed {seed}: host-manager points must be evaluated, saw {:?}",
            run.seen
        );
        assert!(
            (run.fps - 25.0).abs() <= 2.0,
            "seed {seed}: tail fps {} outside 25±2 after chaos ended",
            run.fps
        );
    }
}

#[test]
fn buggify_schedule_replays_deterministically() {
    if !qos_buggify::compiled_in() {
        return;
    }
    let a = buggify_run(11);
    let b = buggify_run(11);
    assert_eq!(a, b, "same buggify seed must replay the same run");
    let c = buggify_run(12);
    assert_ne!(
        (a.events, a.fired, &a.hit),
        (c.events, c.fired, &c.hit),
        "a different buggify seed must draw a different fault schedule"
    );
}

/// Satellite scenario: torn and corrupted frames on a real Unix-domain
/// socket, plus the reconnect storm they trigger. The server drops
/// unreframeable connections (counted in `live.decode_errors`), the
/// client's transport reconnects with capped, seeded backoff (counted
/// in `live.reconnects`), and once chaos stops the violation path
/// works end to end again.
#[test]
fn socket_chaos_torn_frames_reconnect_and_recover() {
    use qos_core::repository::prelude::Registration;
    use std::sync::atomic::Ordering;
    use std::time::{Duration as StdDur, Instant};

    if !qos_buggify::compiled_in() {
        return;
    }
    let t = Telemetry::enabled();
    let path = std::env::temp_dir().join(format!("qos-chaos-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .telemetry(&t)
        .spawn()
        .expect("spawn socket manager");
    let addr = mgr.local_addr().expect("bound");

    let (repo, mut agent) = standard_live_repo();
    let sock = SocketTransport::builder(addr)
        .reconnect(ReconnectPolicy::seeded(7))
        .connect_retry(StdDur::from_secs(5))
        .expect("manager reachable");
    let registration = Registration {
        process: "live:chaos".into(),
        executable: "VideoApplication".into(),
        application: "VideoPlayback".into(),
        role: "*".into(),
    };
    let mut p = LiveProcess::start(&registration, &repo, &mut agent, Box::new(sock))
        .expect("manager running");
    p.set_telemetry(&t);
    let base_reconnects = p.reconnects();

    let mk_report = |i: u64| ViolationReport {
        policy: "NotifyQoSViolation".into(),
        process: "live:chaos".into(),
        at_us: i * 1000,
        corr: i,
        readings: vec![("frame_rate".into(), 5.0 + i as f64)],
    };

    // Chaos phase: a high-probability tear/corrupt schedule. Torn frames
    // desynchronise the server's frame buffer; corrupt ones invalidate
    // the header outright. Both end with the server dropping the
    // connection and the client reconnecting through its backoff.
    qos_buggify::enable_with(42, 0.3);
    let deadline = Instant::now() + StdDur::from_secs(30);
    let mut i = 0u64;
    while (mgr.stats.decode_errors.load(Ordering::Relaxed) == 0
        || p.reconnects() == base_reconnects)
        && Instant::now() < deadline
    {
        p.report(mk_report(i));
        i += 1;
        std::thread::sleep(StdDur::from_millis(5));
    }
    qos_buggify::disable();

    let decode_errors = mgr.stats.decode_errors.load(Ordering::Relaxed);
    assert!(
        decode_errors > 0,
        "torn/corrupt frames must surface as decode errors"
    );
    assert!(
        p.reconnects() > base_reconnects,
        "the chaos schedule must force at least one reconnect"
    );

    // Recovery phase: with chaos off, the transport reconnects (backoff
    // is capped, so this is bounded) and the violation path works again.
    let deadline = Instant::now() + StdDur::from_secs(10);
    while !p.sync() {
        assert!(Instant::now() < deadline, "transport never recovered");
        std::thread::sleep(StdDur::from_millis(20));
    }
    let v0 = mgr.stats.violations.load(Ordering::Relaxed);
    p.report(mk_report(10_000));
    assert!(p.sync(), "post-chaos sync barrier");
    assert!(
        mgr.stats.violations.load(Ordering::Relaxed) > v0,
        "a clean violation must reach the manager after recovery"
    );
    if t.is_enabled() {
        // Let straggler connection-reader threads finish reporting
        // before comparing the registry mirror to the raw stat.
        std::thread::sleep(StdDur::from_millis(100));
        assert!(mgr.sync());
        assert_eq!(
            t.counter_value("live.decode_errors", "host-manager"),
            mgr.stats.decode_errors.load(Ordering::Relaxed),
            "registry mirrors the manager's decode-error count"
        );
        assert_eq!(
            t.counter_value("live.reconnects", "live:chaos"),
            p.reconnects(),
            "registry mirrors the transport's reconnect count"
        );
    }
    mgr.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chaos_schedule_is_deterministic() {
    let off = Telemetry::disabled();
    let (fps_a, _, events_a, faults_a) = lossy_restart_run(2300, &off);
    // Observability must not perturb the schedule: an instrumented run
    // is bit-identical to a dark one.
    let (fps_b, _, events_b, faults_b) = lossy_restart_run(2300, &Telemetry::enabled());
    assert_eq!(
        (fps_a, events_a, faults_a),
        (fps_b, events_b, faults_b),
        "same seed, same schedule, same run — telemetry on or off"
    );
    let (_, _, events_c, faults_c) = lossy_restart_run(2301, &off);
    assert_ne!(
        (events_a, faults_a),
        (events_c, faults_c),
        "a different seed must draw a different schedule"
    );
}
