//! The discovery plane across real OS process boundaries: a
//! [`DiscoveryDaemon`] in this process, two "domain manager" child
//! processes and two "host manager" child processes — each a
//! re-execution of this test binary — all speaking the framed wire
//! protocol over a Unix-domain socket.
//!
//! The smoke asserts the same invariants the simulated federation
//! tests prove in-process: every domain gets a route push, every host
//! is assigned to exactly one registered leaf, renewals are acked, and
//! the shards the domain managers observe partition the host set.

use std::os::unix::net::UnixStream;
use std::process::{Command, Stdio};
use std::time::Duration;

use qos_core::discovery::daemon::{read_frame, write_frame};
use qos_core::discovery::DiscoveryDaemon;
use qos_core::prelude::*;
use qos_core::wire::messages::{DiscAnnounceMsg, DiscDomainRegisterMsg, DiscLeaseRenewMsg};
use qos_core::wire::FrameBuffer;

fn temp_sock(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qos-fed-{}-{name}.sock", std::process::id()))
}

fn child_command(mode: &str, id: u32, addr: &std::path::Path) -> Command {
    let mut cmd = Command::new(std::env::current_exe().expect("test binary path"));
    cmd.args(["fed_child_entry", "--exact", "--nocapture"])
        .env("FEDQOS_CHILD", mode)
        .env("FEDQOS_ID", id.to_string())
        .env("FEDQOS_ADDR", addr)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

fn child_values(stdout: &[u8]) -> std::collections::HashMap<String, u64> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter_map(|l| {
            let rest = &l[l.find("CHILD ")? + "CHILD ".len()..];
            let (k, v) = rest.split_once(' ')?;
            Some((k.to_string(), v.trim().parse().ok()?))
        })
        .collect()
}

/// Child-process entry point; a no-op under the normal test run.
#[test]
fn fed_child_entry() {
    let Ok(mode) = std::env::var("FEDQOS_CHILD") else {
        return;
    };
    let id: u32 = std::env::var("FEDQOS_ID")
        .expect("child id")
        .parse()
        .expect("numeric child id");
    let path = std::env::var("FEDQOS_ADDR").expect("child needs an address");
    let mut stream = UnixStream::connect(&path).expect("daemon listening");
    let mut buf = FrameBuffer::new();
    match mode.as_str() {
        // A leaf domain manager: register (child of the root d0), then
        // collect route pushes for a while and report the final shard.
        "dm" => {
            let domain = DomainId(id);
            write_frame(
                &mut stream,
                &WireMsg::DiscDomainRegister(DiscDomainRegisterMsg {
                    domain,
                    manager: Endpoint::new(HostId(100 + id), DOMAIN_MANAGER_PORT),
                    parent: Some(DomainId(0)),
                }),
            )
            .expect("register");
            // Report the *peak* shard observed: the host children exit
            // after one renewal, so their leases lapse while we are
            // still reading and the final push legitimately shows an
            // empty shard again. (Shards are stable-hashed, so a host
            // never migrates between leaves mid-test and peaks cannot
            // double-count.)
            let mut pushes = 0u64;
            let mut shard = 0u64;
            let mut version = 0u64;
            let deadline = std::time::Instant::now() + Duration::from_secs(6);
            while std::time::Instant::now() < deadline {
                match read_frame(&mut stream, &mut buf, Duration::from_millis(300)) {
                    Ok(Some(WireMsg::DiscRoutes(rt))) => {
                        if rt.domain != domain || rt.version < version {
                            continue;
                        }
                        version = rt.version;
                        pushes += 1;
                        let own = rt.hosts.iter().filter(|h| h.domain == domain).count() as u64;
                        shard = shard.max(own);
                        // Both hosts landed here: the shard cannot grow.
                        if shard >= 2 {
                            break;
                        }
                    }
                    Ok(_) => {}
                    Err(e) => panic!("dm {id}: stream error: {e}"),
                }
            }
            println!("CHILD pushes {pushes}");
            println!("CHILD shard {shard}");
            println!("CHILD version {version}");
        }
        // A host manager: announce (retrying until a leaf exists),
        // then renew once and expect the ack.
        "host" => {
            let host = HostId(id);
            let manager = Endpoint::new(host, HOST_MANAGER_PORT);
            let mut assigned = None;
            for epoch in 1..=50u64 {
                write_frame(
                    &mut stream,
                    &WireMsg::DiscAnnounce(DiscAnnounceMsg {
                        host,
                        manager,
                        epoch,
                    }),
                )
                .expect("announce");
                match read_frame(&mut stream, &mut buf, Duration::from_millis(400)) {
                    Ok(Some(WireMsg::DiscAssign(a))) if a.host == host => {
                        assigned = Some(a);
                        break;
                    }
                    Ok(_) => {}
                    Err(e) => panic!("host {id}: stream error: {e}"),
                }
            }
            let a = assigned.expect("assignment before retry budget");
            write_frame(
                &mut stream,
                &WireMsg::DiscLeaseRenew(DiscLeaseRenewMsg {
                    host,
                    domain: a.domain,
                    epoch: a.epoch,
                }),
            )
            .expect("renew");
            let mut acked = 0u64;
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                match read_frame(&mut stream, &mut buf, Duration::from_millis(300)) {
                    Ok(Some(WireMsg::DiscLeaseAck(k))) if k.host == host && k.epoch == a.epoch => {
                        acked = 1;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) => panic!("host {id}: stream error: {e}"),
                }
            }
            println!("CHILD domain {}", a.domain.0);
            println!("CHILD acked {acked}");
        }
        other => panic!("unknown child mode {other:?}"),
    }
}

/// The multi-domain smoke: daemon + 2 DM children + 2 host children.
#[test]
fn discovery_daemon_federates_across_os_processes() {
    let path = temp_sock("smoke");
    let _ = std::fs::remove_file(&path);
    let daemon = DiscoveryDaemon::bind(&path, Dur::from_secs(4)).expect("bind discovery daemon");

    // Domain managers first (they collect route pushes in the
    // background while hosts come up), then the hosts.
    let dm1 = child_command("dm", 1, &path).spawn().expect("spawn dm1");
    let dm2 = child_command("dm", 2, &path).spawn().expect("spawn dm2");
    // Give the registrations a beat so both leaves exist before the
    // hosts announce (the hosts retry regardless).
    std::thread::sleep(Duration::from_millis(300));
    let h7 = child_command("host", 7, &path).spawn().expect("spawn h7");
    let h8 = child_command("host", 8, &path).spawn().expect("spawn h8");

    let mut domains_seen = Vec::new();
    for child in [h7, h8] {
        let out = child.wait_with_output().expect("host child exit");
        assert!(
            out.status.success(),
            "host child failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let vals = child_values(&out.stdout);
        assert_eq!(vals["acked"], 1, "renewal must be acked over the socket");
        let d = vals["domain"];
        assert!((1..=2).contains(&d), "assigned to a registered leaf: {d}");
        domains_seen.push(d);
    }

    let mut shard_total = 0;
    for child in [dm1, dm2] {
        let out = child.wait_with_output().expect("dm child exit");
        assert!(
            out.status.success(),
            "dm child failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let vals = child_values(&out.stdout);
        assert!(vals["pushes"] >= 1, "every dm gets at least one route push");
        shard_total += vals["shard"];
    }
    // The two hosts partition across the leaves exactly once each.
    assert_eq!(
        shard_total, 2,
        "shards seen by the dm children must partition the host set"
    );

    drop(daemon);
    assert!(!path.exists(), "daemon removes its socket on shutdown");
}
