//! Differential equivalence for the wire-protocol refactor: running the
//! management plane over encoded frames (`WireMode::EncodedFixed`) must
//! reproduce the legacy typed-payload path (`WireMode::Typed`) *exactly*
//! — same experiment outputs, same rule-firing sequences — because both
//! charge the network the same nominal size and the codec must be
//! lossless. The default `Measured` mode then changes only the byte
//! accounting, which is documented in EXPERIMENTS.md, not asserted here.

use qos_core::experiment::{fig3_point, localization, overload, Fault};
use qos_core::prelude::*;
use qos_core::system::{Testbed, TestbedConfig};

/// Run `f` under `mode`, restoring the default afterwards. Wire modes are
/// thread-local and every experiment here builds and runs its world on
/// the calling thread, so tests stay independent under the parallel test
/// runner.
fn with_mode<R>(mode: WireMode, f: impl FnOnce() -> R) -> R {
    set_wire_mode(mode);
    let r = f();
    set_wire_mode(WireMode::Measured);
    r
}

#[test]
fn fig3_point_is_identical_typed_vs_encoded() {
    for managed in [false, true] {
        let typed = with_mode(WireMode::Typed, || fig3_point(60, 5.0, managed));
        let encoded = with_mode(WireMode::EncodedFixed, || fig3_point(60, 5.0, managed));
        assert_eq!(
            typed, encoded,
            "fig3 (managed={managed}) must not change under the codec"
        );
    }
}

#[test]
fn localization_is_identical_typed_vs_encoded() {
    for fault in [Fault::ClientCpu, Fault::Network] {
        let typed = with_mode(WireMode::Typed, || localization(61, fault, true));
        let encoded = with_mode(WireMode::EncodedFixed, || localization(61, fault, true));
        assert_eq!(
            format!("{typed:?}"),
            format!("{encoded:?}"),
            "localization ({fault:?}) must not change under the codec"
        );
    }
}

#[test]
fn overload_is_identical_typed_vs_encoded() {
    for adaptive in [false, true] {
        let typed = with_mode(WireMode::Typed, || overload(62, adaptive));
        let encoded = with_mode(WireMode::EncodedFixed, || overload(62, adaptive));
        assert_eq!(
            format!("{typed:?}"),
            format!("{encoded:?}"),
            "overload (adaptive={adaptive}) must not change under the codec"
        );
    }
}

/// The strongest check: the host manager's inference engine must fire
/// the exact same rule sequence — violation by violation — whether the
/// control plane moves typed structs or encoded frames.
#[test]
fn engine_firing_traces_are_identical_typed_vs_encoded() {
    fn trace(mode: WireMode) -> Vec<String> {
        with_mode(mode, || {
            let cfg = TestbedConfig {
                seed: 63,
                managed: true,
                ..TestbedConfig::default()
            };
            let mut tb = Testbed::build(&cfg);
            let hm = tb.client_hm.expect("managed testbed");
            tb.world
                .logic_mut::<QosHostManager>(hm)
                .expect("host manager logic")
                .set_engine_trace_capacity(1 << 16);
            spawn_mix(
                &mut tb.world,
                tb.client_host,
                LoadMix {
                    hogs: 5,
                    fraction: 0.0,
                },
            );
            tb.world.run_for(Dur::from_secs(90));
            tb.world
                .logic_mut::<QosHostManager>(hm)
                .expect("host manager logic")
                .take_engine_trace()
        })
    }
    let typed = trace(WireMode::Typed);
    let encoded = trace(WireMode::EncodedFixed);
    assert!(
        !typed.is_empty(),
        "the loaded run must exercise the inference engine"
    );
    assert_eq!(
        typed, encoded,
        "rule firings must be identical under the codec"
    );
}
