//! Integration tests for the policy pipeline: notation → AST → compiled
//! form → repository storage → role-scoped resolution → coordinator →
//! sensor thresholds, across the `qos-policy`, `qos-repository` and
//! `qos-instrument` crates.

use qos_core::instrument::prelude::*;
use qos_core::policy::model::video_example_model;
use qos_core::policy::prelude::*;
use qos_core::repository::prelude::*;

const EXAMPLE_1: &str = qos_core::system::EXAMPLE1_SOURCE;

#[test]
fn paper_example_flows_from_text_to_sensor_thresholds() {
    // Parse + compile the paper's Example 1.
    let ast = parse_policy(EXAMPLE_1).expect("Example 1 parses verbatim");
    let compiled = compile(&ast).expect("compiles");

    // Load into a coordinator; configure the standard video sensors.
    let mut coordinator = Coordinator::new("it:client");
    coordinator.load_policy(compiled);
    let sensors = SensorSet::video_standard();
    let missing = sensors.configure(coordinator.global_conditions());
    assert!(missing.is_empty());

    // Drive the fps probe through a healthy second, then a collapse.
    let fps = sensors.fps().expect("standard set has an fps sensor");
    let mut now = 0u64;
    for _ in 0..120 {
        now += 40_000; // 25 fps
        for a in fps.frame_displayed(now) {
            coordinator.on_alarm(&a);
        }
    }
    assert!(
        !coordinator.is_violated(0),
        "healthy stream in specification"
    );

    // Stall: ticks drive the windowed rate to zero.
    let mut triggered = Vec::new();
    for _ in 0..20 {
        now += 500_000;
        for a in fps.tick(now) {
            triggered.extend(coordinator.on_alarm(&a));
        }
    }
    assert_eq!(triggered, vec![0], "stall violates the policy exactly once");

    // The actions of Example 1 produce the Example 4 report.
    let report = coordinator
        .execute_actions(0, &sensors, now)
        .expect("policy notifies the host manager");
    assert_eq!(report.policy, "NotifyQoSViolation");
    assert_eq!(
        report.readings.len(),
        3,
        "frame_rate, jitter_rate, buffer_size"
    );
}

#[test]
fn repository_roundtrip_preserves_enforcement_semantics() {
    let (model, _, _) = video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).unwrap();
    let app = ManagementApp;
    app.add_policy(
        &mut repo,
        &StoredPolicy {
            name: "NotifyQoSViolation".into(),
            application: "VideoPlayback".into(),
            executable: "VideoApplication".into(),
            role: "*".into(),
            source: EXAMPLE_1.into(),
            enabled: true,
        },
    )
    .unwrap();

    // Export to LDIF, import into a fresh repository, resolve through the
    // agent — the compiled policy must be semantically identical.
    let ldif = app.export_ldif(&repo);
    let mut repo2 = Repository::new();
    app.import_ldif(&mut repo2, &ldif).unwrap();

    let mut agent = PolicyAgent::new();
    let reg = Registration {
        process: "p".into(),
        executable: "VideoApplication".into(),
        application: "VideoPlayback".into(),
        role: "student".into(),
    };
    let a = agent.register(&repo, &reg);
    let b = agent.register(&repo2, &reg);
    assert_eq!(a.policies.len(), 1);
    assert_eq!(a.policies[0].conditions, b.policies[0].conditions);
    assert_eq!(a.policies[0].name, b.policies[0].name);
}

#[test]
fn disabled_policy_never_reaches_a_coordinator() {
    let (model, _, _) = video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).unwrap();
    let app = ManagementApp;
    app.add_policy(
        &mut repo,
        &StoredPolicy {
            name: "NotifyQoSViolation".into(),
            application: "VideoPlayback".into(),
            executable: "VideoApplication".into(),
            role: "*".into(),
            source: EXAMPLE_1.into(),
            enabled: true,
        },
    )
    .unwrap();
    app.set_enabled(&mut repo, "NotifyQoSViolation", false)
        .unwrap();
    let mut agent = PolicyAgent::new();
    let res = agent.register(
        &repo,
        &Registration {
            process: "p".into(),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        },
    );
    assert!(res.policies.is_empty());
}

#[test]
fn integrity_checks_guard_the_repository() {
    let (model, _, _) = video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).unwrap();
    let app = ManagementApp;
    // Every class of invalid policy the Section 7 checks cover.
    let cases = [
        (
            "unmonitored attribute",
            "oblig X { subject s on not (colour > 1) do fps_sensor->read(out frame_rate); }",
        ),
        (
            "unknown target",
            "oblig X { subject s on not (frame_rate > 1) do warp_drive->engage(); }",
        ),
        (
            "bad sensor method",
            "oblig X { subject s on not (frame_rate > 1) do fps_sensor->explode(); }",
        ),
        (
            "empty notify",
            "oblig X { subject s on not (frame_rate > 1) do (...)QoSHostManager->notify(); }",
        ),
        ("unparseable", "oblig X {{{"),
    ];
    for (what, source) in cases {
        let res = app.add_policy(
            &mut repo,
            &StoredPolicy {
                name: "X".into(),
                application: "VideoPlayback".into(),
                executable: "VideoApplication".into(),
                role: "*".into(),
                source: source.into(),
                enabled: true,
            },
        );
        assert!(res.is_err(), "{what} must be rejected");
    }
    assert!(app.list_policies(&repo).is_empty());
}

#[test]
fn threshold_change_at_runtime_follows_section_9() {
    // "We are able to change QoS requirements while an application is
    // executing": tighten the lower fps bound and watch a stream that
    // used to satisfy the policy start violating.
    let ast = parse_policy(EXAMPLE_1).unwrap();
    let compiled = compile(&ast).unwrap();
    let mut coordinator = Coordinator::new("p");
    coordinator.load_policy(compiled);
    let sensors = SensorSet::video_standard();
    sensors.configure(coordinator.global_conditions());
    let fps = sensors.fps().unwrap();

    let mut now = 0u64;
    let mut violations = Vec::new();
    for _ in 0..150 {
        now += 40_000; // a steady 25 fps
        for a in fps.frame_displayed(now) {
            violations.extend(coordinator.on_alarm(&a));
        }
    }
    assert!(violations.is_empty(), "25 fps satisfies 25 +/- 2");

    // Condition 0 is `frame_rate > 23`; raise it to 29 at run time.
    assert!(fps.sensor.set_threshold(0, 29.0));
    for _ in 0..50 {
        now += 40_000;
        for a in fps.frame_displayed(now) {
            violations.extend(coordinator.on_alarm(&a));
        }
    }
    assert_eq!(violations, vec![0], "the tightened bound is violated");
}
