//! End-to-end integration tests: the full stack — policy text in the
//! repository → agent resolution → coordinator → sensors → violation →
//! host manager inference → resource manager → scheduler — exercised
//! through whole-system scenarios.

use qos_core::prelude::*;

fn fps_over(tb: &mut Testbed, secs: u64) -> f64 {
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(secs));
    (tb.displayed(0) - d0) as f64 / secs as f64
}

#[test]
fn managed_system_holds_qos_under_load() {
    let cfg = TestbedConfig {
        seed: 1001,
        managed: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(40)); // detect + adapt
    let fps = fps_over(&mut tb, 40);
    assert!(fps > 23.0, "managed fps {fps}");
    let hm = tb.client_hm_stats().expect("managed");
    assert!(hm.violations > 0, "violations must have been reported");
    assert!(
        hm.cpu_boosts > 0,
        "the CPU resource manager must have acted"
    );
}

#[test]
fn unmanaged_system_collapses_under_load() {
    let cfg = TestbedConfig {
        seed: 1001,
        managed: false,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(40));
    let fps = fps_over(&mut tb, 40);
    assert!(fps < 15.0, "unmanaged fps {fps} should collapse");
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = |seed| {
        let cfg = TestbedConfig {
            seed,
            managed: true,
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::build(&cfg);
        spawn_mix(
            &mut tb.world,
            tb.client_host,
            LoadMix {
                hogs: 3,
                fraction: 0.5,
            },
        );
        tb.world.run_for(Dur::from_secs(60));
        (
            tb.displayed(0),
            tb.world.events_processed(),
            tb.client_hm_stats().map(|s| s.violations),
        )
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78), "different seeds should diverge");
}

#[test]
fn feedback_loop_converges_and_outperforms() {
    let managed = convergence(55, 5, true);
    let unmanaged = convergence(55, 5, false);
    assert!(managed.settled_at.is_some(), "managed run must settle");
    let tail =
        |t: &ConvergenceTrace| t.fps.iter().rev().take(15).map(|&(_, v)| v).sum::<f64>() / 15.0;
    assert!(
        tail(&managed) > tail(&unmanaged) + 5.0,
        "managed {} vs unmanaged {}",
        tail(&managed),
        tail(&unmanaged)
    );
    // The boost trace is the Section 2 strategy made visible: it must
    // have moved off zero.
    assert!(managed.boost.iter().any(|&(_, b)| b > 0));
}

#[test]
fn figure3_shape_holds_at_the_extremes() {
    let rows = figure3(2000, &[0.70, 10.00]);
    let light = &rows[0];
    let heavy = &rows[1];
    // Both schedulers fine at baseline load.
    assert!(
        light.fps_normal > 25.0,
        "baseline normal {}",
        light.fps_normal
    );
    assert!(
        light.fps_managed > 25.0,
        "baseline managed {}",
        light.fps_managed
    );
    // At load 10 the unmanaged player collapses; the managed one holds.
    assert!(heavy.fps_normal < 10.0, "heavy normal {}", heavy.fps_normal);
    assert!(
        heavy.fps_managed > 23.0,
        "heavy managed {}",
        heavy.fps_managed
    );
    // Load calibration: measured within ~15% of target.
    assert!(
        (heavy.measured_load - 10.0).abs() < 1.5,
        "load {}",
        heavy.measured_load
    );
}

#[test]
fn domain_manager_localizes_network_fault_and_reroutes() {
    let r = localization(3000, Fault::Network, true);
    assert!(r.fps_before > 25.0);
    assert!(r
        .domain_actions
        .iter()
        .any(|a| matches!(a, DomainAction::Reroute { .. })));
    assert!(
        r.fps_after > 25.0,
        "service restored after reroute: {}",
        r.fps_after
    );
}

#[test]
fn domain_manager_localizes_server_fault() {
    let r = localization(3000, Fault::ServerCpu, true);
    assert!(r
        .domain_actions
        .iter()
        .any(|a| matches!(a, DomainAction::BoostServer { .. })));
    assert!(
        r.fps_after > 25.0,
        "service restored after boost: {}",
        r.fps_after
    );
}

#[test]
fn client_cpu_fault_is_handled_locally() {
    let r = localization(3000, Fault::ClientCpu, true);
    assert!(r.client_boosts > 0, "local adaptation expected");
    assert!(r.fps_after > 23.0, "service restored: {}", r.fps_after);
}

#[test]
fn buffer_sensor_ablation_breaks_local_diagnosis() {
    let ok = localization(3000, Fault::ClientCpu, true);
    let ablated = localization(3000, Fault::ClientCpu, false);
    assert!(ok.fps_after > 23.0);
    assert!(
        ablated.fps_after < ok.fps_after - 10.0,
        "without the Example 5 heuristic the fault is misdiagnosed: {} vs {}",
        ablated.fps_after,
        ok.fps_after
    );
    // The misdiagnosis shows up as futile escalations.
    assert!(ablated.domain_alerts > ok.domain_alerts);
}

#[test]
fn rt_units_strategy_also_enforces_qos() {
    let cfg = TestbedConfig {
        seed: 4004,
        managed: true,
        cpu_policy: CpuPolicy::RtUnits,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(40));
    let fps = fps_over(&mut tb, 40);
    assert!(fps > 20.0, "RT-units managed fps {fps}");
}

#[test]
fn contention_fair_vs_differentiated() {
    let fair = contention(5005, AdminRules::FairShare);
    let diff = contention(5005, AdminRules::Differentiated);
    // Fair: nobody dominates.
    let spread = fair.iter().map(|r| r.fps).fold(f64::MIN, f64::max)
        - fair.iter().map(|r| r.fps).fold(f64::MAX, f64::min);
    assert!(spread < 5.0, "fair spread {spread}");
    // Differentiated: service ordered by role.
    assert!(
        diff[2].fps > diff[1].fps && diff[1].fps > diff[0].fps,
        "{diff:?}"
    );
}

#[test]
fn proactive_management_prevents_the_dip() {
    let reactive = proactive(9009, false);
    let proactive_run = proactive(9009, true);
    assert!(proactive_run.nudges > 0, "proactive policy must fire");
    assert!(
        proactive_run.secs_below_spec <= reactive.secs_below_spec,
        "proactive {} vs reactive {}",
        proactive_run.secs_below_spec,
        reactive.secs_below_spec
    );
    assert!(proactive_run.worst_fps >= reactive.worst_fps);
}

#[test]
fn overload_is_unwinnable_without_adaptation_and_winnable_with_it() {
    let rigid = overload(9010, false);
    assert_eq!(rigid.boost, 60, "allocation must max out");
    assert!(rigid.fps < 23.0, "and still fail: {}", rigid.fps);
    assert_eq!(rigid.quality, 0, "no adaptation without the overload rules");

    let adaptive = overload(9010, true);
    assert!(adaptive.quality > 0, "quality actuator driven");
    assert!(adaptive.adaptations >= 1);
    assert!(
        adaptive.fps > 23.0,
        "degraded stream in spec: {}",
        adaptive.fps
    );
}

#[test]
fn in_sim_policy_distribution_full_path() {
    // The complete Figure 2 path inside the simulation: the client
    // starts uninstrumented, registers with the Policy Agent process
    // over the network, receives its compiled policies, and enforcement
    // works from then on.
    let cfg = TestbedConfig {
        seed: 9011,
        managed: true,
        in_sim_distribution: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.run_for(Dur::from_secs(2));
    let loaded_at = tb.client(0).stats.policies_loaded_at_us;
    assert!(loaded_at > 0, "policies must arrive via the agent");
    assert!(
        loaded_at < 1_000_000,
        "registration should complete within a second: {loaded_at} us"
    );
    assert_eq!(tb.client(0).coordinator().policy_count(), 1);
    // Enforcement works end to end afterwards.
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(60));
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(30));
    let fps = (tb.displayed(0) - d0) as f64 / 30.0;
    assert!(fps > 23.0, "agent-distributed policy enforced: {fps}");
}

#[test]
fn bursty_stream_violates_via_jitter_not_frame_rate() {
    use qos_core::apps::video::{
        example1_policy, VideoClient, VideoClientConfig, VideoServer, VideoServerConfig, VIDEO_PORT,
    };
    // A server that delivers 30 fps in bursts of 6 frames every 200 ms:
    // the mean rate satisfies the policy's frame_rate leg, but the
    // inter-display gaps alternate between ~0 and 200 ms — the
    // jitter_rate < 1.25 condition is what must catch it.
    let mut w = qos_core::sim::World::new(91);
    let ch = w.add_host("client", 1 << 16);
    let sh = w.add_host("server", 1 << 16);
    let hop = w
        .net_mut()
        .add_hop("lan", 10_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
    w.net_mut().set_route_symmetric(ch, sh, vec![hop]);
    let client = w.spawn(
        ch,
        ProcConfig::new("VideoApplication").port(VIDEO_PORT, 1 << 20),
        VideoClient::new(
            VideoClientConfig {
                decode_cost: Dur::from_micros(2_000),
                ..VideoClientConfig::default()
            },
            vec![example1_policy()],
        ),
    );
    w.spawn(
        sh,
        ProcConfig::new("VideoServer"),
        VideoServer::new(VideoServerConfig {
            client: Endpoint::new(ch, VIDEO_PORT),
            burst: 6,
            ..VideoServerConfig::default()
        }),
    );
    w.run_for(Dur::from_secs(30));
    let c: &VideoClient = w.logic(client).unwrap();
    // Mean rate in spec...
    let fps = c.sensors().read_attr("frame_rate").unwrap();
    assert!(fps > 23.0, "mean rate fine: {fps}");
    // ...but jitter far out of spec, and the policy is violated.
    let jitter = c.sensors().read_attr("jitter_rate").unwrap();
    assert!(jitter > 1.25, "jitter {jitter}");
    assert!(
        c.coordinator().is_violated(0),
        "violated through the jitter leg"
    );
    assert!(c.coordinator().violation_count(0) >= 1);
}

#[test]
fn multimedia_coexists_with_transaction_processing() {
    // The paper's opening premise: multimedia applications "will co-exist
    // with more traditional applications for transaction processing" —
    // one managed host running a video session AND a web/transaction
    // server, both under their own policies, both held in specification
    // simultaneously despite background CPU contention.
    use qos_core::apps::webserver::{
        response_time_policy, RequestGen, WebServer, WebServerConfig, WEB_PORT,
    };
    let cfg = TestbedConfig {
        seed: 9100,
        managed: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    let ws = tb.world.spawn(
        tb.client_host,
        ProcConfig::new("WebServer").port(WEB_PORT, 1 << 15),
        WebServer::new(
            WebServerConfig {
                cpu_per_request: Dur::from_micros(3_000),
                host_manager: Some(Endpoint::new(tb.client_host, HOST_MANAGER_PORT)),
            },
            vec![response_time_policy(50.0)],
        ),
    );
    tb.world.spawn(
        tb.client_host,
        ProcConfig::new("RequestGen"),
        RequestGen::new(Endpoint::new(tb.client_host, WEB_PORT), 60.0),
    );
    // Background contention on top of both services.
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 3,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(90)); // detect + adapt + settle
                                          // Measure both services over a steady window.
    let d0 = tb.displayed(0);
    let s0 = {
        let s: &WebServer = tb.world.logic(ws).unwrap();
        (s.stats.served, s.stats.total_response_us)
    };
    tb.world.run_for(Dur::from_secs(30));
    let fps = (tb.displayed(0) - d0) as f64 / 30.0;
    let s: &WebServer = tb.world.logic(ws).unwrap();
    let served = s.stats.served - s0.0;
    let mean_ms = (s.stats.total_response_us - s0.1) as f64 / served.max(1) as f64 / 1_000.0;
    assert!(fps > 23.0, "video in spec: {fps}");
    assert!(served > 1_500, "transactions flowing: {served}");
    assert!(mean_ms < 50.0, "transactions in spec: {mean_ms} ms");
}
