//! Property-based tests (proptest) over the core data structures and
//! invariants: parser/printer round-trips, scheduler-queue invariants,
//! sensor edge-triggering, boolean-expression consistency, directory and
//! LDIF round-trips, and engine refraction.

use proptest::prelude::*;
use qos_core::inference::prelude::*;
use qos_core::instrument::prelude::*;
use qos_core::policy::prelude::*;
use qos_core::repository::prelude::*;
use qos_core::sim::rng::Rng;
use qos_core::sim::sched::{ReadyQueues, GLOBAL_LEVELS};
use qos_core::sim::stats::{LoadAvg, Summary};
use qos_core::sim::{Dur, HostId, Pid, SimTime};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,9}"
}

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1.0e9..1.0e9f64).prop_map(|x| (x * 100.0).round() / 100.0)
}

proptest! {
    // ------------------------------------------------------------------
    // qos-sim
    // ------------------------------------------------------------------

    #[test]
    fn rng_below_is_always_in_range(seed: u64, bound in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    #[test]
    fn rng_f64_in_unit_interval(seed: u64) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            let x = r.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn dur_arithmetic_never_wraps(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let da = Dur::from_micros(a);
        let db = Dur::from_micros(b);
        prop_assert_eq!((da + db).as_micros(), a.saturating_add(b));
        prop_assert_eq!(da.saturating_sub(db).as_micros(), a.saturating_sub(b));
        let t = SimTime::from_micros(a) + db;
        prop_assert!(t >= SimTime::from_micros(a));
    }

    #[test]
    fn load_avg_stays_within_input_hull(samples in proptest::collection::vec(0usize..64, 1..200)) {
        let mut la = LoadAvg::one_minute();
        let max = *samples.iter().max().expect("nonempty") as f64;
        for &s in &samples {
            la.sample(s);
            prop_assert!(la.value() <= max + 1e-9);
            prop_assert!(la.value() >= 0.0);
        }
    }

    #[test]
    fn summary_matches_naive_mean(xs in proptest::collection::vec(-1.0e6..1.0e6f64, 1..100)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.max() >= s.mean() - 1e-9);
    }

    #[test]
    fn ready_queue_pop_is_monotone_in_level(
        entries in proptest::collection::vec((0u16..GLOBAL_LEVELS, 0u32..64), 0..80)
    ) {
        let mut q = ReadyQueues::new();
        for (i, &(level, n)) in entries.iter().enumerate() {
            q.push_back(level, Pid { host: HostId(0), local: (i as u32) << 8 | n }, SimTime::ZERO);
        }
        prop_assert_eq!(q.len(), entries.len());
        let mut last = u16::MAX;
        let mut popped = 0;
        while let Some((level, _)) = q.pop_best() {
            prop_assert!(level <= last, "levels must be non-increasing");
            last = level;
            popped += 1;
        }
        prop_assert_eq!(popped, entries.len());
        prop_assert_eq!(q.len(), 0);
    }

    // ------------------------------------------------------------------
    // qos-policy
    // ------------------------------------------------------------------

    #[test]
    fn generated_policies_roundtrip_through_the_parser(
        name in "[A-Z][A-Za-z0-9]{0,10}",
        attr in ident(),
        target in 1.0..1000.0f64,
        tol in 0.5..50.0f64,
        jitter_attr in ident(),
        bound in 0.1..100.0f64,
    ) {
        let target = (target * 10.0).round() / 10.0;
        let tol = (tol * 10.0).round() / 10.0;
        let bound = (bound * 100.0).round() / 100.0;
        let src = format!(
            "oblig {name} {{ subject (...)/App/qosl_coordinator \
             target s1, (...)QoSHostManager \
             on not ({attr} = {target}(+{tol})(-{tol}) AND {jitter_attr} < {bound}) \
             do s1->read(out {attr}); (...)QoSHostManager->notify({attr}); }}"
        );
        let ast = parse_policy(&src).expect("generated policy parses");
        prop_assert_eq!(&ast.name, &name);
        // The event round-trips through Display.
        let printed = ast.event.to_string();
        let src2 = format!(
            "oblig {name} {{ subject (...)/App/qosl_coordinator on {printed} do s1->read(out x); }}"
        );
        let ast2 = parse_policy(&src2).expect("printed condition reparses");
        prop_assert_eq!(&ast.event, &ast2.event);
        // Compilation yields the expected interval conditions.
        let compiled = compile(&ast).expect("compiles");
        prop_assert!(compiled.conditions.len() >= 2);
        prop_assert!(compiled.violated(&vec![false; compiled.conditions.len()]));
        prop_assert!(!compiled.violated(&vec![true; compiled.conditions.len()]));
    }

    #[test]
    fn compiled_conditions_agree_with_interval_semantics(
        target in 10.0..100.0f64,
        tol in 1.0..9.0f64,
        sample in 0.0..200.0f64,
    ) {
        let target = target.round();
        let tol = tol.round();
        let src = format!(
            "oblig P {{ subject s on not (m = {target}(+{tol})(-{tol})) do s->read(out m); }}"
        );
        let compiled = compile(&parse_policy(&src).expect("parses")).expect("compiles");
        let vars: Vec<bool> = compiled.conditions.iter().map(|c| c.holds(sample)).collect();
        let in_band = sample > target - tol && sample < target + tol;
        prop_assert_eq!(!compiled.violated(&vars), in_band);
    }

    // ------------------------------------------------------------------
    // qos-repository
    // ------------------------------------------------------------------

    #[test]
    fn dn_roundtrips(parts in proptest::collection::vec((ident(), ident()), 1..6)) {
        let text = parts
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        let dn = Dn::parse(&text).expect("valid DN");
        prop_assert_eq!(dn.to_string(), text);
        let again = Dn::parse(&dn.to_string()).expect("reparses");
        prop_assert_eq!(dn, again);
    }

    #[test]
    fn ldif_roundtrips(
        entries in proptest::collection::vec(
            (ident(), proptest::collection::vec((ident(), "[ -~]{1,30}"), 1..5)),
            1..6
        )
    ) {
        let mut es = Vec::new();
        for (i, (cn, attrs)) in entries.iter().enumerate() {
            let mut e = Entry::new(Dn::parse(&format!("cn={cn}{i}")).expect("valid"));
            for (a, v) in attrs {
                // LDIF values must not begin/end with whitespace, and
                // `dn` is the entry name, not an attribute.
                let v = v.trim();
                if v.is_empty() || a == "dn" {
                    continue;
                }
                e.add(a, v);
            }
            es.push(e);
        }
        let text = to_ldif(&es);
        let parsed = parse_ldif(&text).expect("own output parses");
        prop_assert_eq!(es, parsed);
    }

    #[test]
    fn filter_eq_matches_exactly(attr in ident(), val in "[a-zA-Z0-9]{1,12}", other in "[a-zA-Z0-9]{1,12}") {
        let e = Entry::new(Dn::parse("cn=x").expect("valid")).with(&attr, val.clone());
        let f = Filter::parse(&format!("({attr}={val})")).expect("valid filter");
        prop_assert!(f.matches(&e));
        let g = Filter::parse(&format!("({attr}={other})")).expect("valid filter");
        prop_assert_eq!(g.matches(&e), other == val);
        let notf = Filter::parse(&format!("(!({attr}={val}))")).expect("valid filter");
        prop_assert!(!notf.matches(&e));
    }

    // ------------------------------------------------------------------
    // qos-inference
    // ------------------------------------------------------------------

    #[test]
    fn engine_refraction_is_idempotent(values in proptest::collection::vec(0i64..50, 1..20)) {
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("r")
                .when(Pattern::new("ev").slot_var("x", "x"))
                .then_call("hit", vec![Term::var("x")]),
        );
        let distinct = {
            let mut v = values.clone();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        for &v in &values {
            e.assert_fact(Fact::new("ev").with("x", v));
        }
        let first = e.run(10_000);
        prop_assert_eq!(first.fired, distinct, "one firing per distinct fact");
        // Re-running with no new facts fires nothing.
        let second = e.run(10_000);
        prop_assert_eq!(second.fired, 0);
    }

    #[test]
    fn facts_display_roundtrips_through_sexpr(template in ident(), slots in proptest::collection::vec((ident(), -1000i64..1000), 0..5)) {
        let mut f = Fact::new(&template);
        for (k, v) in &slots {
            // Duplicate keys follow map semantics: last write wins.
            f.slots.insert(k.clone(), Value::Int(*v));
        }
        let text = format!("(deffacts x {f})");
        let prog = parse_program(&text).expect("fact display reparses");
        prop_assert_eq!(&prog.facts[0].template, &template);
        prop_assert_eq!(&prog.facts[0], &f);
    }

    // ------------------------------------------------------------------
    // qos-instrument
    // ------------------------------------------------------------------

    #[test]
    fn sensor_alarms_strictly_alternate(samples in proptest::collection::vec(finite_f64(), 1..300)) {
        let s = Sensor::new("s", "a");
        s.add_threshold(0, qos_core::policy::ast::CmpOp::Lt, 0.0);
        let mut expected_next = false; // first transition must be a violation-edge or nothing
        let mut now = 0;
        for &x in &samples {
            now += 1;
            for alarm in s.observe(x, now) {
                prop_assert_eq!(alarm.satisfied, expected_next);
                expected_next = !expected_next;
            }
        }
    }

    #[test]
    fn disabled_sensor_never_alarms(samples in proptest::collection::vec(finite_f64(), 1..100)) {
        let s = Sensor::new("s", "a");
        s.add_threshold(0, qos_core::policy::ast::CmpOp::Lt, 0.0);
        s.set_enabled(false);
        let mut now = 0;
        for &x in &samples {
            now += 1;
            prop_assert!(s.observe(x, now).is_empty());
        }
    }

    #[test]
    fn coordinator_violation_state_is_consistent(
        flips in proptest::collection::vec(proptest::bool::ANY, 1..100)
    ) {
        // A single-condition policy: the coordinator's violated flag must
        // always equal the negation of the last alarm state delivered.
        let src = "oblig P { subject s on not (m > 10) do s->read(out m); }";
        let compiled = compile(&parse_policy(src).expect("parses")).expect("compiles");
        let mut c = Coordinator::new("p");
        c.load_policy(compiled);
        for (i, &sat) in flips.iter().enumerate() {
            c.on_alarm(&AlarmEvent {
                condition: 0,
                satisfied: sat,
                value: 0.0,
                at_us: i as u64,
            });
            prop_assert_eq!(c.is_violated(0), !sat);
        }
    }
}

proptest! {
    #[test]
    fn spike_filter_suppresses_short_excursions(
        filter in 2u32..6,
        excursion in 1u32..6,
    ) {
        let s = Sensor::new("s", "a");
        s.add_threshold(0, qos_core::policy::ast::CmpOp::Lt, 10.0);
        s.set_spike_filter(filter);
        let mut now = 0;
        // Establish the satisfied state.
        for _ in 0..10 {
            now += 1;
            prop_assert!(s.observe(5.0, now).is_empty());
        }
        // An excursion shorter than the filter must never alarm.
        let mut alarms = Vec::new();
        for _ in 0..excursion.min(filter - 1) {
            now += 1;
            alarms.extend(s.observe(50.0, now));
        }
        prop_assert!(alarms.is_empty(), "short excursion alarmed");
        // Returning to normal keeps silence.
        for _ in 0..10 {
            now += 1;
            prop_assert!(s.observe(5.0, now).is_empty());
        }
        // A sustained excursion of exactly `filter` samples alarms once.
        let mut alarms = Vec::new();
        for _ in 0..filter {
            now += 1;
            alarms.extend(s.observe(50.0, now));
        }
        prop_assert_eq!(alarms.len(), 1);
    }

    #[test]
    fn coordinator_interns_shared_conditions(n_policies in 1usize..8) {
        // Distinct policies over the same conditions must not duplicate
        // them: the global table stays at one policy's own size. And
        // re-delivering a policy (same name) must not load a second copy.
        let src = "oblig P { subject s on not (m = 20(+2)(-2) AND j < 1.0) do s->read(out m); }";
        let compiled = compile(&parse_policy(src).expect("parses")).expect("compiles");
        let mut c = Coordinator::new("p");
        for i in 0..n_policies {
            let mut p = compiled.clone();
            p.name = format!("P{i}");
            let ix = c.load_policy(p.clone());
            prop_assert_eq!(c.load_policy(p), ix, "duplicate delivery is a no-op");
        }
        prop_assert_eq!(c.global_conditions().len(), 3);
        prop_assert_eq!(c.policy_count(), n_policies);
        // One alarm violates all of them at once.
        let triggered = c.on_alarm(&AlarmEvent {
            condition: 0,
            satisfied: false,
            value: 0.0,
            at_us: 1,
        });
        prop_assert_eq!(triggered.len(), n_policies);
    }

    #[test]
    fn filter_substring_matches_std(hay in "[a-z]{0,16}", needle in "[a-z]{1,4}") {
        let e = Entry::new(Dn::parse("cn=x").expect("valid")).with("a", hay.clone());
        let f = Filter::parse(&format!("(a=*{needle}*)")).expect("valid");
        prop_assert_eq!(f.matches(&e), hay.contains(&needle));
        let pre = Filter::parse(&format!("(a={needle}*)")).expect("valid");
        prop_assert_eq!(pre.matches(&e), hay.starts_with(&needle));
        let suf = Filter::parse(&format!("(a=*{needle})")).expect("valid");
        prop_assert_eq!(suf.matches(&e), hay.ends_with(&needle));
    }

    #[test]
    fn engine_negation_partitions_facts(ids in proptest::collection::vec(0i64..30, 1..15)) {
        // Rules `covered` and `uncovered` split facts exactly by the
        // presence of a matching marker fact.
        let mut distinct = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut e = Engine::new();
        e.add_rule(
            Rule::new("covered")
                .when(Pattern::new("item").slot_var("id", "i"))
                .when(Pattern::new("marker").slot_var("id", "i"))
                .then_call("covered", vec![Term::var("i")]),
        );
        e.add_rule(
            Rule::new("uncovered")
                .when(Pattern::new("item").slot_var("id", "i"))
                .when_not(Pattern::new("marker").slot_var("id", "i"))
                .then_call("uncovered", vec![Term::var("i")]),
        );
        for &i in &distinct {
            e.assert_fact(Fact::new("item").with("id", i));
            if i % 2 == 0 {
                e.assert_fact(Fact::new("marker").with("id", i));
            }
        }
        e.run(10_000);
        let mut covered = 0usize;
        let mut uncovered = 0usize;
        for inv in e.take_invocations() {
            match inv.command.as_str() {
                "covered" => covered += 1,
                "uncovered" => uncovered += 1,
                _ => {}
            }
        }
        let evens = distinct.iter().filter(|i| *i % 2 == 0).count();
        prop_assert_eq!(covered, evens);
        prop_assert_eq!(uncovered, distinct.len() - evens);
    }
}

// ----------------------------------------------------------------------
// Chaos: seeded fault schedules against the full managed testbed
// ----------------------------------------------------------------------

use qos_core::apps::prelude::{spawn_mix, LoadMix};
use qos_core::manager::prelude::{
    QosHostManager, DOMAIN_MANAGER_PORT, HOST_MANAGER_PORT, POLICY_AGENT_PORT,
};
use qos_core::sim::prelude::{FaultPlan, MsgSelector, Window};
use qos_core::system::{Testbed, TestbedConfig};

proptest! {
    // Each case is a ~20-second simulated run of the whole testbed;
    // keep the count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded fault schedule on the control plane — up to 50%
    /// message loss, up to 50% duplication, and at most two process
    /// crashes (the client and/or the client's host manager) — leaves
    /// the management plane's invariants intact: registration stays
    /// idempotent under duplicate delivery, the CPU allocation never
    /// leaves the strategy's bounds (and is reclaimed on death), and no
    /// violation fact outlives its handling.
    #[test]
    fn fault_schedules_preserve_management_invariants(
        seed: u64,
        loss in 0.0..0.5f64,
        dup in 0.0..0.5f64,
        restart_hm: bool,
        kill_client: bool,
    ) {
        let cfg = TestbedConfig {
            seed,
            managed: true,
            stream_fps: 25.0,
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::build(&cfg);
        let control = MsgSelector::ports(vec![
            HOST_MANAGER_PORT,
            DOMAIN_MANAGER_PORT,
            POLICY_AGENT_PORT,
        ]);
        tb.world.install_faults(
            FaultPlan::new()
                .lose(Window::always(), control.clone(), loss)
                .duplicate(Window::always(), control, dup),
        );
        spawn_mix(
            &mut tb.world,
            tb.client_host,
            LoadMix { hogs: 4, fraction: 0.0 },
        );
        tb.world.run_for(Dur::from_secs(3));
        if restart_hm {
            tb.restart_host_manager(tb.client_host).expect("managed testbed");
        }
        tb.world.run_for(Dur::from_secs(3));
        let client = tb.clients[0];
        if kill_client {
            tb.world.kill(client);
        }
        // Long enough for the liveness reap (4 missed 2-second heartbeat
        // periods plus a sweep) after the last crash.
        tb.world.run_for(Dur::from_secs(14));

        let hm_pid = tb.client_hm.expect("managed testbed");
        let hm: &QosHostManager = tb.world.logic(hm_pid).expect("host manager logic");
        let stats = tb.client_hm_stats().expect("managed testbed");
        // Duplicated registrations / heartbeats must not double-count.
        prop_assert!(
            stats.registrations <= 1,
            "registration side effects duplicated: {}",
            stats.registrations
        );
        // The allocation never leaves the TS strategy's bounds, and a
        // dead client's boost is reclaimed by the liveness sweep.
        let boost = hm.cpu_allocation(client).boost;
        prop_assert!((0..=60).contains(&boost), "boost {} out of bounds", boost);
        if kill_client {
            prop_assert_eq!(boost, 0, "dead client keeps no allocation");
            prop_assert!(!hm.is_registered(client), "dead client still registered");
        }
        // Every violation fact was consumed by the rule that handled it
        // (or retracted by the reaper).
        prop_assert_eq!(hm.facts_of("violation"), 0);
    }
}
