//! Flight-recorder fidelity under chaos, and adversarial robustness of
//! the recording codec.
//!
//! The first half runs the `tests/chaos.rs` scenario (30% control-plane
//! loss plus a host-manager crash-restart) with a ring recorder hooked
//! into the telemetry handle, dumps the ring to disk, replays it, and
//! demands the replayed recording reproduce the live trace *exactly*:
//! bit-identical event stream, bit-identical lifecycle chains, and the
//! same rendered MTTR / per-stage latency table. The second half feeds
//! the decoder truncations and single-byte mutations of valid
//! recordings and demands typed errors — never a panic, never a wrong
//! prefix.

use proptest::prelude::*;
use qos_core::prelude::*;
use qos_core::telemetry::record::{
    decode_record, decode_records, encode_event, encode_snapshot, scan_records, RecError,
    DEFAULT_RING_BYTES, REC_HEADER_LEN,
};
use qos_core::telemetry::MetricSnapshot;

/// The chaos harness from `tests/chaos.rs`, telemetry-enabled.
fn chaos_run(telemetry: &Telemetry) -> FaultStats {
    let cfg = TestbedConfig {
        seed: 2102,
        managed: true,
        in_sim_distribution: true,
        stream_fps: 25.0,
        telemetry: telemetry.clone(),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.install_faults(FaultPlan::new().lose(
        Window::always(),
        MsgSelector::ports(vec![
            HOST_MANAGER_PORT,
            DOMAIN_MANAGER_PORT,
            POLICY_AGENT_PORT,
        ]),
        0.30,
    ));
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs: 6,
            fraction: 0.0,
        },
    );
    tb.world.run_for(Dur::from_secs(3));
    tb.restart_host_manager(tb.client_host)
        .expect("managed testbed has a client host manager");
    tb.world.run_for(Dur::from_secs(60));
    tb.world.fault_stats()
}

#[test]
fn chaos_recording_replays_bit_identical_lifecycles_and_mttr() {
    let t = Telemetry::enabled();
    if !t.is_enabled() {
        // telemetry-off build: the recorder hook is compiled out.
        return;
    }
    let rec = FlightRecorder::new(DEFAULT_RING_BYTES);
    t.set_recorder(Some(rec.clone()));
    let faults = chaos_run(&t);
    assert!(faults.msgs_dropped > 0, "the loss schedule must bite");
    // Close the recording with a final registry snapshot.
    t.record_metrics(63_000_000);

    // Neither the event buffer nor the ring evicted anything, so the
    // two views must agree exactly.
    assert_eq!(t.events_dropped(), 0, "run outgrew the event buffer");
    assert_eq!(rec.ring_dropped(), 0, "run outgrew the recorder ring");

    let dir = std::env::temp_dir().join(format!("qos-recorder-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("chaos.qrec");
    rec.dump(&path).expect("dump ring to disk");
    let recording = read_recording(&path).expect("read recording back");
    assert!(!recording.truncated, "clean dump has no torn tail");
    assert!(recording.corrupt.is_none(), "clean dump decodes fully");

    // Bit-identical event stream...
    let live_events = t.events();
    assert!(!live_events.is_empty());
    assert_eq!(
        recording.events(),
        live_events,
        "replayed events must be byte-for-byte the live trace"
    );
    // ...therefore bit-identical lifecycle chains...
    let live_lifecycles = t.lifecycles();
    assert_eq!(recording.lifecycles(), live_lifecycles);
    assert!(
        live_lifecycles.iter().any(|lc| lc.complete()),
        "chaos run must complete at least one lifecycle"
    );
    // ...and the same rendered MTTR / per-stage table.
    assert_eq!(
        lifecycle_table(&recording.lifecycles()),
        lifecycle_table(&live_lifecycles)
    );

    // The closing snapshot replays with the counters the run kept.
    let snap = recording.last_snapshot().expect("closing snapshot");
    assert_eq!(snap.at_us, 63_000_000);
    assert_eq!(snap.metrics, t.snapshot());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segment_rotation_survives_torn_writes_under_chaos() {
    if !qos_buggify::compiled_in() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("qos-recorder-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // Tiny segments force rotation; the buggify point tears a quarter
    // of the appends mid-record (a tear at probability 1.0 would tear
    // *every* record and nothing would survive, by design).
    let writer = SegmentWriter::create(&dir, "torn", 1 << 10, 64).expect("segment writer");
    let rec = FlightRecorder::with_writer(DEFAULT_RING_BYTES, writer);
    qos_buggify::enable_with(11, 0.25);
    let mk = |i: u64| TraceEvent {
        at_us: i * 100,
        corr: i / 5 + 1,
        stage: Stage::Detect,
        component: "h0:p1".into(),
        name: "example1".into(),
        fields: vec![("frame_rate".into(), 15.0)],
    };
    for i in 0..200 {
        rec.record_event(&mk(i));
    }
    rec.flush().expect("flush");
    qos_buggify::disable();

    // Every torn segment costs at most its torn tail; everything else
    // replays, and nothing panics.
    let recording = read_recording_dir(&dir, "torn").expect("read torn recording");
    let replayed = recording.events().len();
    assert!(
        (50..200).contains(&replayed),
        "each tear must cost exactly its own record ({replayed} of 200 replayed)"
    );
    assert!(recording.truncated, "torn tails must be visible as such");
    assert!(recording.corrupt.is_none(), "tearing is not corruption");
    assert!(recording.segments >= 2, "tiny segments must have rotated");
    // The ring kept everything regardless of disk tearing.
    assert_eq!(rec.ring_records().len(), 200);

    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- adversarial decoding

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u8..7,
        "[a-z:0-9]{0,12}",
        "[a-z-]{0,12}",
        proptest::collection::vec(("[a-z_]{1,8}", -1.0e9..1.0e9f64), 0..4),
    )
        .prop_map(|(at_us, corr, tag, component, name, fields)| TraceEvent {
            at_us,
            corr,
            stage: Stage::from_tag(tag).expect("tag in range"),
            component,
            name,
            fields,
        })
}

fn arb_snapshot_bytes() -> impl Strategy<Value = Vec<u8>> {
    (
        0u64..u64::MAX,
        proptest::collection::vec(("[a-z.]{1,12}", "[a-z:0-9]{0,8}", 0u64..u64::MAX), 0..4),
    )
        .prop_map(|(at_us, series)| {
            let metrics: Vec<MetricSnapshot> = series
                .into_iter()
                .map(|(family, label, v)| MetricSnapshot {
                    family,
                    label,
                    value: MetricValue::Counter(v),
                })
                .collect();
            encode_snapshot(at_us, &metrics)
        })
}

/// A valid byte stream of 1..8 records, mixing events and snapshots.
fn arb_stream() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        (0u8..4, arb_event(), arb_snapshot_bytes()).prop_map(|(sel, ev, snap)| {
            if sel == 0 {
                snap
            } else {
                encode_event(&ev)
            }
        }),
        1..8,
    )
    .prop_map(|chunks| chunks.concat())
}

proptest! {
    /// Any prefix of a valid stream decodes to a prefix of its records:
    /// whole records survive, the cut record reads as a torn tail, and
    /// nothing panics.
    #[test]
    fn truncated_stream_recovers_exact_prefix(stream in arb_stream(), cut_sel in 0usize..1 << 20) {
        let full = scan_records(&stream);
        prop_assert!(!full.truncated);
        prop_assert!(full.corrupt.is_none());
        prop_assert_eq!(full.consumed, stream.len());

        let cut = cut_sel % (stream.len() + 1);
        let scan = scan_records(&stream[..cut]);
        prop_assert!(scan.corrupt.is_none(), "truncation is not corruption");
        prop_assert_eq!(scan.truncated, cut > scan.consumed, "torn tail iff the cut fell mid-record");
        prop_assert!(scan.records.len() <= full.records.len());
        prop_assert_eq!(
            &full.records[..scan.records.len()],
            &scan.records[..],
            "recovered records must be an exact prefix"
        );
        // The strict decoder agrees, through its typed error.
        match decode_records(&stream[..cut]) {
            Ok(records) => {
                prop_assert_eq!(cut, scan.consumed, "strict Ok only on a record boundary");
                prop_assert_eq!(&records[..], &full.records[..records.len()]);
            }
            Err(e) => prop_assert!(matches!(e, RecError::Truncated { .. })),
        }
    }

    /// Flipping any single bit of a valid stream yields either a clean
    /// decode, a typed error, or a shorter recovered prefix — never a
    /// panic.
    #[test]
    fn mutated_stream_never_panics(stream in arb_stream(), at_sel in 0usize..1 << 20, bit in 0u8..8) {
        let mut bad = stream;
        let at = at_sel % bad.len();
        bad[at] ^= 1 << bit;
        let scan = scan_records(&bad);
        prop_assert!(scan.consumed <= bad.len());
        // Strict decoding either succeeds or returns a typed error.
        let _ = decode_records(&bad);
        let _ = decode_record(&bad);
    }

    /// Garbage from byte zero: the decoder classifies it with a typed
    /// error without consuming anything it shouldn't.
    #[test]
    fn arbitrary_bytes_yield_typed_errors(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        match decode_record(&bytes) {
            Ok((_, n)) => {
                prop_assert!(n >= REC_HEADER_LEN);
                prop_assert!(n <= bytes.len());
            }
            Err(RecError::Truncated { needed, have }) => prop_assert!(needed > have),
            Err(_) => {}
        }
        let scan = scan_records(&bytes);
        prop_assert!(scan.consumed <= bytes.len());
    }
}
