//! C10k soak of the live plane's epoll reactor driver: a four-digit
//! peer count the thread-per-peer driver cannot hold, served on a
//! ≤ 4-thread worker pool, with an *exact* message ledger (everything a
//! peer sent or knowingly dropped is accounted for — nothing vanishes
//! untracked), fps-violation recovery under a buggify chaos schedule,
//! and a threads-vs-reactor rule-firing trace-equality gate at a
//! smaller peer count.
//!
//! Linux-only: the reactor is raw epoll. The same protocol machines run
//! under the thread driver on other platforms (`tests/socket_live.rs`).
#![cfg(target_os = "linux")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use qos_core::prelude::*;
use qos_core::repository::agent::Registration;
use qos_telemetry::{Stage, Telemetry};
use qos_wire::messages::{LiveRegisterMsg, LiveViolationMsg};
use qos_wire::WireMsg;

/// Concurrent reactor peers in the soak (the acceptance floor is 1000).
const PEERS: usize = 1024;
/// Client threads carrying those peers (each drives PEERS/THREADS
/// connections — the *client* side may multiplex over threads; the
/// point is that the server side must not).
const CLIENT_THREADS: usize = 8;
/// Violation reports per peer. Modest on purpose: the ledger is about
/// exactness under fan-in, not raw throughput (BENCH_c10k covers that).
const VIOLATIONS_PER_PEER: u64 = 4;

fn temp_sock(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qos-c10k-{}-{name}.sock", std::process::id()))
}

fn register_frame(process: &str) -> Vec<u8> {
    WireMsg::LiveRegister(LiveRegisterMsg {
        process: process.into(),
    })
    .encode_frame()
}

fn violation_frame(process: &str, corr: u64) -> Vec<u8> {
    WireMsg::LiveViolation(LiveViolationMsg {
        policy: "NotifyQoSViolation".into(),
        process: process.into(),
        at_us: corr,
        corr,
        readings: vec![
            ("frame_rate".into(), 15.0),
            ("buffer_size".into(), 50_000.0),
        ],
    })
    .encode_frame()
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// The tentpole gate: 1024 simultaneously-connected UDS peers against
/// one reactor-driven manager on a 4-thread worker pool, every peer
/// registering and reporting, and the ledger closing exactly —
/// `Σ sent == violations counted`, `Σ sent + Σ dropped == generated`,
/// zero decode errors.
#[test]
fn reactor_holds_1024_uds_peers_with_an_exact_ledger() {
    let path = temp_sock("soak");
    let _ = std::fs::remove_file(&path);
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .driver(Driver::Reactor)
        .workers(4)
        .spawn()
        .expect("spawn reactor manager");
    let addr = mgr.local_addr().expect("bound");
    let net = mgr.net_stats().expect("reactor manager exposes net stats");

    let sent = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let synced = Arc::new(AtomicU64::new(0));
    // All client threads hold at this barrier with every connection
    // open, so the main thread can observe the full peer count live.
    let connected = Arc::new(Barrier::new(CLIENT_THREADS + 1));
    let verified = Arc::new(Barrier::new(CLIENT_THREADS + 1));

    let per_thread = PEERS / CLIENT_THREADS;
    std::thread::scope(|s| {
        for tid in 0..CLIENT_THREADS {
            let addr = addr.clone();
            let (sent, dropped, synced) =
                (Arc::clone(&sent), Arc::clone(&dropped), Arc::clone(&synced));
            let (connected, verified) = (Arc::clone(&connected), Arc::clone(&verified));
            s.spawn(move || {
                let mut conns = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let name = format!("c10k:{tid}:{i}");
                    let mut tr =
                        SocketTransport::connect_retry(addr.clone(), Duration::from_secs(30))
                            .expect("reactor accepts the peer");
                    if tr.try_send(&register_frame(&name)) {
                        conns.push((name, tr));
                    } else {
                        panic!("registration write refused for {name}");
                    }
                }
                connected.wait();
                verified.wait();
                for (name, tr) in conns.iter_mut() {
                    for k in 0..VIOLATIONS_PER_PEER {
                        if tr.try_send(&violation_frame(name, 0)) {
                            sent.fetch_add(1, Ordering::Relaxed);
                        } else {
                            dropped.fetch_add(1, Ordering::Relaxed);
                            let _ = k;
                        }
                    }
                }
                // Per-peer barrier: the ack proves every frame this peer
                // sent has been *processed* (not merely buffered
                // somewhere between the socket and the rule engine).
                for (_, tr) in conns.iter_mut() {
                    if tr.sync(Duration::from_secs(60)) {
                        synced.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        connected.wait();
        // Every peer is connected right now — the reactor must report
        // all of them live on its ≤ 4 workers.
        assert!(
            wait_until(Duration::from_secs(30), || {
                net.peers.load(Ordering::Relaxed) >= PEERS as u64
            }),
            "reactor never reached {PEERS} concurrent peers (at {})",
            net.peers.load(Ordering::Relaxed)
        );
        verified.wait();
    });

    let sent = sent.load(Ordering::Relaxed);
    let dropped = dropped.load(Ordering::Relaxed);
    assert_eq!(
        sent + dropped,
        (PEERS as u64) * VIOLATIONS_PER_PEER,
        "every generated report must be either sent or knowingly dropped"
    );
    assert_eq!(
        synced.load(Ordering::Relaxed),
        PEERS as u64,
        "every peer's sync barrier must ack through the reactor"
    );
    assert_eq!(
        mgr.stats.violations.load(Ordering::Relaxed),
        sent,
        "the manager must count exactly what the peers delivered"
    );
    assert_eq!(
        mgr.stats.registrations.load(Ordering::Relaxed),
        PEERS as u64,
        "every distinct peer registered exactly once"
    );
    assert_eq!(mgr.stats.decode_errors.load(Ordering::Relaxed), 0);
    assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= sent);
    assert!(net.accepted.load(Ordering::Relaxed) >= PEERS as u64);
    assert!(net.frames_in.load(Ordering::Relaxed) >= sent + PEERS as u64);
    mgr.shutdown();
    assert!(!path.exists(), "socket file cleaned up on shutdown");
}

/// Chaos gate: with the reactor's own fault points armed (spurious
/// wakeups, accept bursts, `WouldBlock` tears on the write path) plus
/// the client-side write chaos, real fps-instrumented processes must
/// keep reporting — reconnecting as needed — and once client chaos
/// quiets, a full round must land and sync.
#[test]
fn fps_reporting_recovers_under_a_reactor_chaos_schedule() {
    if !qos_buggify::compiled_in() {
        return; // release / buggify-off build: nothing to arm
    }
    // Armed before spawn so the manager thread and the reactor's poller
    // and worker threads all adopt the schedule. The reactor points are
    // lossless perf-chaos, so leaving them armed for the whole test
    // must not cost a single frame.
    qos_buggify::enable_with(0xC10C, 0.2);
    let t = Telemetry::enabled();
    let path = temp_sock("chaos");
    let _ = std::fs::remove_file(&path);
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .driver(Driver::Reactor)
        .workers(2)
        .telemetry(&t)
        .spawn()
        .expect("spawn reactor manager");
    let addr = mgr.local_addr().expect("bound");

    const CHAOS_PEERS: usize = 8;
    let (repo, mut agent) = standard_live_repo();
    let mut procs = Vec::new();
    for i in 0..CHAOS_PEERS {
        let reg = Registration {
            process: format!("chaos:{i}"),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        };
        let tr = SocketTransport::builder(addr.clone())
            .reconnect(ReconnectPolicy::seeded(i as u64 + 1))
            .connect_retry(Duration::from_secs(10))
            .expect("reactor accepts the peer");
        procs.push(
            LiveProcess::start(&reg, &repo, &mut agent, Box::new(tr))
                .expect("manager reachable through the chaotic reactor"),
        );
    }

    // Chaos phase: drive the fps sensors below spec repeatedly. The
    // client-side tear/corrupt points will wreck some streams; the
    // reactor must drop those connections cleanly (counted) and accept
    // the reconnects, greeting replay included.
    let mut now_us = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut chaos_rounds = 0u32;
    while chaos_rounds < 20 && Instant::now() < deadline {
        now_us += 60_000_000;
        for p in procs.iter_mut() {
            if chaos_rounds == 0 {
                // First round: a real fps collapse through the sensor.
                let fps = p.sensors.fps().unwrap();
                let mut ts = now_us;
                let mut alarms = Vec::new();
                for _ in 0..20 {
                    ts += 200_000;
                    alarms.extend(fps.frame_displayed(ts));
                }
                for a in &alarms {
                    for pix in p.coordinator.on_alarm(a) {
                        if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, ts) {
                            p.report(r);
                        }
                    }
                }
            } else {
                // Later rounds: re-notification of the standing violation.
                for pix in p.coordinator.poll(now_us) {
                    if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now_us) {
                        p.report(r);
                    }
                }
            }
        }
        chaos_rounds += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    // Quiet the *client-side* chaos (thread-local). The reactor threads
    // stay armed — their points are lossless by contract.
    qos_buggify::disable();

    // Recovery: keep re-notifying until a full round lands and syncs on
    // every peer.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        now_us += 60_000_000;
        let before = mgr.stats.violations.load(Ordering::Relaxed);
        let mut round = 0u64;
        for p in procs.iter_mut() {
            for pix in p.coordinator.poll(now_us) {
                if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now_us) {
                    p.report(r);
                    round += 1;
                }
            }
        }
        assert!(round >= 1, "the fps policies must still be in violation");
        if procs.iter_mut().all(|p| p.sync()) {
            // dup-frame chaos in the manager can only inflate the count,
            // never shrink it: a full round is >= what was sent.
            if mgr.stats.violations.load(Ordering::Relaxed) >= before + round {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "fps reporting never recovered after the chaos schedule"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Greeting replay keeps registration idempotent across every
    // chaos-induced reconnect.
    assert_eq!(
        mgr.stats.registrations.load(Ordering::Relaxed),
        CHAOS_PEERS as u64
    );
    let sent: u64 = procs.iter().map(|p| p.reports_sent()).sum();
    assert!(sent >= 1, "chaos must not have silenced every report");
    mgr.shutdown();
}

/// Run `peers` raw reactor/thread peers through an identical serialized
/// workload and capture the rule-firing trace: (violations, rules
/// fired, sorted per-correlation lifecycle stage chains).
fn run_trace(driver: Driver, peers: usize) -> (u64, u64, Vec<(String, Vec<Stage>)>) {
    let t = Telemetry::enabled();
    let path = temp_sock(match driver {
        Driver::Threads => "trace-threads",
        Driver::Reactor => "trace-reactor",
    });
    let _ = std::fs::remove_file(&path);
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .driver(driver)
        .workers(2)
        .telemetry(&t)
        .spawn()
        .expect("spawn manager");
    let addr = mgr.local_addr().expect("bound");

    let mut conns: Vec<(String, SocketTransport)> = (0..peers)
        .map(|i| {
            let name = format!("trace:{i}");
            let mut tr = SocketTransport::connect_retry(addr.clone(), Duration::from_secs(10))
                .expect("manager accepts the peer");
            assert!(tr.try_send(&register_frame(&name)));
            (name, tr)
        })
        .collect();
    // Serialize the workload peer-by-peer (sync between peers), so both
    // drivers present the manager the exact same total order — the
    // equality gate is about the *drivers*, not about scheduling luck.
    for (i, (name, tr)) in conns.iter_mut().enumerate() {
        for k in 0..3u64 {
            let corr = (i as u64) * 8 + k + 1;
            assert!(tr.try_send(&violation_frame(name, corr)));
        }
        assert!(tr.sync(Duration::from_secs(30)), "per-peer barrier");
    }

    let violations = mgr.stats.violations.load(Ordering::Relaxed);
    let fired = mgr.stats.rules_fired.load(Ordering::Relaxed);
    let mut chains: Vec<(String, Vec<Stage>)> = t
        .lifecycles()
        .iter()
        .map(|lc| {
            (
                lc.policy.clone(),
                lc.stages.iter().map(|&(s, _)| s).collect(),
            )
        })
        .collect();
    chains.sort();
    mgr.shutdown();
    (violations, fired, chains)
}

/// The drivers are interchangeable by construction — same sans-io
/// machines, same manager core — so at equal workloads they must
/// produce identical traces, stage for stage.
#[test]
fn threads_and_reactor_drivers_produce_identical_traces() {
    let threads = run_trace(Driver::Threads, 16);
    let reactor = run_trace(Driver::Reactor, 16);
    assert_eq!(threads.0, reactor.0, "violation counts diverged");
    assert_eq!(threads.1, reactor.1, "rule firings diverged");
    assert_eq!(threads.2, reactor.2, "lifecycle chains diverged");
    if Telemetry::enabled().is_enabled() {
        assert!(!reactor.2.is_empty(), "lifecycles must be observed");
    }
}
