//! Federation integration: host managers discover their domain manager
//! through the discovery plane, the registry shards per domain, alerts
//! cross federation boundaries along discovery-learned routes (no
//! hand-wired peers anywhere in these tests), and the whole arrangement
//! survives a lossy control plane, discovery outages and buggify chaos
//! inside the discovery server itself.

use qos_core::prelude::*;

/// Every management-plane port, discovery included.
fn control_ports() -> Vec<Port> {
    vec![
        HOST_MANAGER_PORT,
        DOMAIN_MANAGER_PORT,
        POLICY_AGENT_PORT,
        DISCOVERY_PORT,
    ]
}

/// A network fault between two hosts in *sibling* domains is diagnosed
/// by the domain manager covering the upstream host — reached via the
/// root along discovery-learned routes — and rerouted onto the backup
/// path it (alone) knows about. The entire control plane drops 30% of
/// its messages throughout.
#[test]
fn cross_domain_network_fault_localized_under_lossy_control() {
    let cfg = FederationConfig {
        seed: 4201,
        domains: 2,
        hosts: 4,
        reporters_per_host: 0, // we spawn the one reporter ourselves
        ..FederationConfig::default()
    };
    let mut fed = Federation::build(&cfg);
    // Dedicated data path between host 0 (domain d1) and host 1
    // (domain d2); the backup is registered on d2's manager — the one
    // that will diagnose, since it covers the upstream.
    let (primary, _backup) = fed.add_data_path(0, 1);
    fed.world.install_faults(FaultPlan::new().lose(
        Window::always(),
        MsgSelector::ports(control_ports()),
        0.30,
    ));
    let client_host = fed.managed_hosts[0];
    let server_host = fed.managed_hosts[1];
    fed.world.spawn(
        client_host,
        ProcConfig::new("FedReporter").port(FED_REPORTER_PORT_BASE, 1 << 16),
        FedReporter {
            hm: Endpoint::new(client_host, HOST_MANAGER_PORT),
            telemetry: Telemetry::disabled(),
            rounds: 60,
            interval: Dur::from_millis(250),
            upstream: Some(Upstream {
                host: server_host,
                pid: Pid {
                    host: server_host,
                    local: 1,
                },
            }),
            port: FED_REPORTER_PORT_BASE,
        },
    );
    // The fault: the primary inter-domain link congests.
    fed.world.net_mut().set_bg_util(primary, 0.95);
    fed.world.run_for(Dur::from_secs(25));

    // Host 1's covering manager is leaf d2 — check the pin arithmetic
    // the data path relied on.
    assert_eq!(fed.domain_of(1), DomainId(2));
    let d2 = fed.dm_stats(fed.leaf_dms[1]);
    assert!(
        d2.actions
            .iter()
            .any(|a| matches!(a, DomainAction::Reroute { a, b }
                if (*a == client_host && *b == server_host)
                    || (*a == server_host && *b == client_host))),
        "d2 must localize the network fault and reroute, got {:?}",
        d2.actions
    );
    // The alert crossed the federation: the reporting side's leaf (d1)
    // and the root both forwarded rather than acting.
    let d1 = fed.dm_stats(fed.leaf_dms[0]);
    let root = fed.dm_stats(fed.root_dm);
    assert!(d1.forwarded >= 1, "d1 forwards alerts it cannot localize");
    assert!(
        root.forwarded >= 1,
        "the root relays toward the covering leaf"
    );
    assert_eq!(d1.unroutable_alerts, 0);
    assert_eq!(root.unroutable_alerts, 0);
    assert!(
        fed.world.fault_stats().msgs_dropped > 0,
        "the loss plan must actually bite"
    );
}

/// An alert whose upstream no domain covers must not vanish silently:
/// it climbs to the root and surfaces there as a typed
/// [`RouteError::NoRoute`], counted in `unroutable_alerts`.
#[test]
fn unroutable_alert_surfaces_typed_error_at_root() {
    let cfg = FederationConfig {
        seed: 4202,
        domains: 2,
        hosts: 2,
        reporters_per_host: 0,
        ..FederationConfig::default()
    };
    let mut fed = Federation::build(&cfg);
    let reporter_host = fed.managed_hosts[0];
    // The claimed upstream is the management host — never announced,
    // so no shard and no route covers it.
    let bogus = fed.mgmt_host;
    fed.world.spawn(
        reporter_host,
        ProcConfig::new("FedReporter").port(FED_REPORTER_PORT_BASE, 1 << 16),
        FedReporter {
            hm: Endpoint::new(reporter_host, HOST_MANAGER_PORT),
            telemetry: Telemetry::disabled(),
            rounds: 3,
            interval: Dur::from_millis(300),
            upstream: Some(Upstream {
                host: bogus,
                pid: Pid {
                    host: bogus,
                    local: 7,
                },
            }),
            port: FED_REPORTER_PORT_BASE,
        },
    );
    fed.world.run_for(Dur::from_secs(8));
    let root = fed.dm_stats(fed.root_dm);
    assert!(
        root.unroutable_alerts >= 1,
        "the root must count alerts nobody can route"
    );
    assert!(
        root.route_errors
            .contains(&RouteError::NoRoute { host: bogus }),
        "the typed error names the uncovered host, got {:?}",
        root.route_errors
    );
    // The leaf did its part: forwarded upward, not dropped.
    let d1 = fed.dm_stats(fed.leaf_dms[0]);
    assert!(d1.forwarded >= 1);
    assert_eq!(d1.unroutable_alerts, 0);
}

/// A discovery outage (every discovery-bound message lost for a window
/// longer than the full miss budget) forces every host manager through
/// re-discovery; when the outage lifts they re-announce with a fresh
/// epoch and the federation heals completely.
#[test]
fn discovery_outage_forces_rediscovery_and_heals() {
    let cfg = FederationConfig {
        seed: 4203,
        domains: 3,
        hosts: 6,
        reporters_per_host: 1,
        ..FederationConfig::default()
    };
    let mut fed = Federation::build(&cfg);
    // Let everyone bind first.
    fed.world.run_for(Dur::from_secs(3));
    assert_eq!(fed.bound_hosts(), 6);
    // Outage: announcements and renewals all die at the send for 20 s —
    // long enough that every lease lapses server-side and every client
    // burns its full miss budget.
    let t0 = fed.world.now();
    fed.world.install_faults(FaultPlan::new().lose(
        Window::new(t0, t0 + Dur::from_secs(20)),
        MsgSelector::ports(vec![DISCOVERY_PORT]),
        1.0,
    ));
    fed.world.run_for(Dur::from_secs(20));
    let st = fed.disc_stats();
    assert!(
        st.expirations >= 6,
        "server-side leases must lapse during the outage, got {}",
        st.expirations
    );
    // Outage over: everyone re-discovers.
    fed.world.run_for(Dur::from_secs(10));
    assert_eq!(fed.bound_hosts(), 6, "federation heals after the outage");
    let rediscoveries: u64 = fed
        .hms
        .iter()
        .map(|&pid| {
            fed.world
                .logic::<QosHostManager>(pid)
                .expect("host manager logic")
                .stats
                .rediscoveries
        })
        .sum();
    assert!(
        rediscoveries >= 6,
        "every host manager re-enters discovery, got {rediscoveries}"
    );
    assert_eq!(
        fed.shard_sizes().iter().sum::<usize>(),
        6,
        "every host is back in exactly one shard"
    );
}

/// Satellite: buggify chaos *inside the discovery plane*
/// (`disc.announce.drop`, `disc.assign.delay`, `disc.lease.expire_early`)
/// rides along with the usual management-plane points on the standard
/// video testbed with discovery enabled. Hosts re-discover as leases
/// are yanked out from under them, and once chaos ends the stream
/// converges back to the Example 1 target of 25±2 fps.
#[test]
fn discovery_chaos_rediscovers_and_recovers_fps() {
    if !qos_buggify::compiled_in() {
        return; // buggify-off build: the points are no-ops
    }
    let mut any_disc_fired = false;
    for seed in [21u64, 22, 23] {
        qos_buggify::enable(seed);
        let cfg = TestbedConfig {
            seed,
            managed: true,
            domain: true,
            discovery: true,
            in_sim_distribution: true,
            stream_fps: 25.0,
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::build(&cfg);
        spawn_mix(
            &mut tb.world,
            tb.client_host,
            LoadMix {
                hogs: 6,
                fraction: 0.0,
            },
        );
        tb.world.run_for(Dur::from_secs(30));
        let seen = qos_buggify::points_seen();
        let hit = qos_buggify::points_hit();
        assert!(
            seen.iter().any(|(n, _)| n.starts_with("disc.")),
            "seed {seed}: discovery chaos points must be evaluated, saw {seen:?}"
        );
        any_disc_fired |= hit.iter().any(|(n, _)| n.starts_with("disc."));
        qos_buggify::disable();
        // Chaos off: re-discovery must settle and the stream converge.
        tb.world.run_for(Dur::from_secs(20));
        let hm = tb.client_hm_stats().expect("client host manager");
        assert!(
            tb.world
                .logic::<QosHostManager>(tb.client_hm.unwrap())
                .unwrap()
                .discovered_domain()
                .is_some(),
            "seed {seed}: client host manager ends bound to its domain"
        );
        let _ = hm;
        let d0 = tb.displayed(0);
        tb.world.run_for(Dur::from_secs(20));
        let fps = (tb.displayed(0) - d0) as f64 / 20.0;
        assert!(
            (fps - 25.0).abs() <= 2.0,
            "seed {seed}: tail fps {fps} outside 25±2 after discovery chaos"
        );
    }
    assert!(
        any_disc_fired,
        "across seeds, at least one discovery fault point must fire"
    );
}

/// The sharded registry replaces the flat one: with discovery on, the
/// standard testbed's domain manager learns its registry from route
/// pushes (instead of a constructor map) and host managers bind without
/// being told an endpoint — and the domain-level reroute still works
/// end to end on a congested data path.
#[test]
fn discovered_testbed_matches_handwired_reroute_behavior() {
    let cfg = TestbedConfig {
        seed: 4204,
        managed: true,
        domain: true,
        discovery: true,
        stream_fps: 25.0,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    // Give discovery a beat, then congest the primary data switch.
    tb.world.run_for(Dur::from_secs(5));
    assert!(
        tb.world
            .logic::<QosHostManager>(tb.client_hm.unwrap())
            .unwrap()
            .discovered_domain()
            .is_some(),
        "client host manager discovered its domain manager"
    );
    tb.world.net_mut().set_bg_util(tb.primary_hop, 0.97);
    tb.world.run_for(Dur::from_secs(40));
    let actions = tb.domain_actions();
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, DomainAction::Reroute { .. })),
        "discovered domain manager still localizes and reroutes, got {actions:?}"
    );
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(20));
    let fps = (tb.displayed(0) - d0) as f64 / 20.0;
    assert!(
        (fps - 25.0).abs() <= 2.0,
        "tail fps {fps} outside 25±2 after reroute"
    );
}
